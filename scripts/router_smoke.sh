#!/usr/bin/env bash
# CI smoke test for the scatter-gather router: build the shard daemon
# and the router, boot two shards plus a router in front of them, probe
# /healthz, /search and /stats over the wire (200 + well-formed JSON,
# validated by the dependency-free `jsonv` binary), then hard-kill one
# shard and require graceful degradation: /search keeps answering 200
# with `"partial": true`, exactly one shard answering, and the dead
# shard's circuit breaker opens. Finishes with a graceful router
# shutdown and a clean exit.
#
# Usage: scripts/router_smoke.sh
#
# All commands run with --offline: every dependency is a path-local
# vendored shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE=target/release/serve
ROUTER=target/release/router
JSONV=target/release/jsonv

echo "==> router_smoke: building the daemon, the router and the JSON validator"
cargo build --release --offline --bin serve --bin jsonv
cargo build --release --offline -p extract-router --bin router

if ! command -v curl >/dev/null; then
    # The in-process equivalents of every probe below run in the test
    # suites (crates/router/tests/scatter.rs, tests/router.rs); this
    # script's value is the real-multi-process wire check, which needs
    # an external client.
    echo "router_smoke: curl not available — skipping wire probes"
    exit 0
fi

SHARD_A_OUT=$(mktemp)
SHARD_B_OUT=$(mktemp)
ROUTER_OUT=$(mktemp)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]+"${PIDS[@]}"}"; do kill "$pid" 2>/dev/null || true; done
    rm -f "$SHARD_A_OUT" "$SHARD_B_OUT" "$ROUTER_OUT"
}
trap cleanup EXIT

# await_ready OUTFILE READY_PREFIX NAME — waits for the single ready
# line and prints the bound http URL.
await_ready() {
    local out=$1 prefix=$2 name=$3 url=""
    for _ in $(seq 1 100); do
        url=$(sed -n "s/^${prefix} listening on \(http:[^ ]*\).*/\1/p" "$out")
        [[ -n "$url" ]] && break
        sleep 0.2
    done
    if [[ -z "$url" ]]; then
        echo "router_smoke: $name never printed its ready line" >&2
        cat "$out" >&2
        exit 1
    fi
    echo "$url"
}

echo "==> router_smoke: booting two shard daemons"
"$SERVE" --port 0 --gen-docs 4 --gen-nodes 400 --seed 1 --workers 2 --queue-depth 8 >"$SHARD_A_OUT" &
SHARD_A_PID=$!; PIDS+=("$SHARD_A_PID")
"$SERVE" --port 0 --gen-docs 3 --gen-nodes 400 --seed 2 --workers 2 --queue-depth 8 >"$SHARD_B_OUT" &
SHARD_B_PID=$!; PIDS+=("$SHARD_B_PID")
SHARD_A_URL=$(await_ready "$SHARD_A_OUT" "extract-serve" "shard A")
SHARD_B_URL=$(await_ready "$SHARD_B_OUT" "extract-serve" "shard B")
echo "router_smoke: shards ready at $SHARD_A_URL and $SHARD_B_URL"

echo "==> router_smoke: booting the router in front of them"
"$ROUTER" --port 0 --shards "${SHARD_A_URL#http://},${SHARD_B_URL#http://}" \
    --workers 2 --queue-depth 8 --deadline-ms 2000 --breaker-cooldown-ms 500 >"$ROUTER_OUT" &
ROUTER_PID=$!; PIDS+=("$ROUTER_PID")
URL=$(await_ready "$ROUTER_OUT" "extract-router" "router")
echo "router_smoke: router ready at $URL"

probe() { # probe METHOD PATH EXPECTED_STATUS
    local method=$1 path=$2 want=$3 body status
    body=$(mktemp)
    status=$(curl -s -X "$method" -o "$body" -w '%{http_code}' "$URL$path")
    if [[ "$status" != "$want" ]]; then
        echo "router_smoke: $method $path returned $status (want $want)" >&2
        cat "$body" >&2
        rm -f "$body"
        exit 1
    fi
    "$JSONV" "$body" || { echo "router_smoke: $method $path body is not valid JSON" >&2; exit 1; }
    rm -f "$body"
    echo "router_smoke: $method $path → $status, valid JSON"
}

probe GET  "/healthz" 200
probe GET  "/search?q=texas&k=3" 200
probe GET  "/search?q=store+name&k=2&offset=1" 200
probe GET  "/stats" 200
probe GET  "/search" 400
probe GET  "/no-such-route" 404

echo "==> router_smoke: both shards answering, response must not be partial"
BODY=$(curl -s "$URL/search?q=texas&k=5")
case "$BODY" in
    *'"partial":false'*) echo "router_smoke: full result from 2 shards" ;;
    *) echo "router_smoke: expected \"partial\":false, got: $BODY" >&2; exit 1 ;;
esac

echo "==> router_smoke: hard-killing shard B"
kill -9 "$SHARD_B_PID"
wait "$SHARD_B_PID" 2>/dev/null || true

# The very next search must still be 200 — degraded, not down: the dead
# shard is dropped from the response after its retries fail.
BODY=$(curl -s -w '\n%{http_code}' "$URL/search?q=texas&k=5")
STATUS=${BODY##*$'\n'}
BODY=${BODY%$'\n'*}
if [[ "$STATUS" != "200" ]]; then
    echo "router_smoke: search after shard death returned $STATUS (want 200)" >&2
    echo "$BODY" >&2
    exit 1
fi
case "$BODY" in
    *'"partial":true'*'"answered":1'*) echo "router_smoke: degraded to partial, 1 of 2 shards answering" ;;
    *) echo "router_smoke: expected partial result with answered:1, got: $BODY" >&2; exit 1 ;;
esac

echo "==> router_smoke: the dead shard's breaker must open"
OPENS=""
for _ in $(seq 1 50); do
    curl -s "$URL/search?q=texas&k=2" > /dev/null
    OPENS=$(curl -s "$URL/stats" | sed -n 's/.*"breaker_opens":\([0-9]*\).*/\1/p')
    [[ -n "$OPENS" && "$OPENS" -ge 1 ]] && break
    sleep 0.1
done
if [[ -z "$OPENS" || "$OPENS" -lt 1 ]]; then
    echo "router_smoke: breaker never opened for the dead shard (breaker_opens=$OPENS)" >&2
    curl -s "$URL/stats" >&2
    exit 1
fi
echo "router_smoke: breaker opened (breaker_opens=$OPENS)"

echo "==> router_smoke: router /healthz stays 200 with one live shard"
probe GET "/healthz" 200

echo "==> router_smoke: graceful shutdown"
probe POST "/shutdown" 200
for _ in $(seq 1 100); do
    kill -0 "$ROUTER_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "router_smoke: router did not exit after /shutdown" >&2
    exit 1
fi
wait "$ROUTER_PID" || { echo "router_smoke: router exited non-zero" >&2; exit 1; }

curl -s -X POST "$SHARD_A_URL/shutdown" > /dev/null || true
echo "router_smoke: green"
