#!/usr/bin/env bash
# Fail if the README's lint-catalog table has drifted from the analyzer's
# own catalog (`xlint --list`). The table rows, stripped of markdown
# backticks and cell padding, must byte-match the tab-separated --list
# output — so adding a lint without documenting it (or documenting one
# that does not exist) breaks CI.
set -euo pipefail
cd "$(dirname "$0")/.."

actual=$(cargo run --offline -q -p extract-xlint -- --list)

# Catalog rows are the README table lines whose first cell is a lint id
# (`L…`/`X…` in backticks). Strip backticks, split on `|`, trim cells,
# re-join with tabs.
documented=$(awk -F'|' '
    /^\| `[LX][0-9]+` \|/ {
        gsub(/`/, "")
        out = ""
        for (i = 2; i < NF; i++) {
            cell = $i
            gsub(/^[ \t]+|[ \t]+$/, "", cell)
            out = out (i > 2 ? "\t" : "") cell
        }
        print out
    }
' README.md)

if ! diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >/dev/null; then
    echo "xlint_list_check: README catalog table drifted from \`xlint --list\`:" >&2
    diff <(printf '%s\n' "$actual") <(printf '%s\n' "$documented") >&2 || true
    echo "xlint_list_check: update the table in README.md (## Static analysis)" >&2
    exit 1
fi
echo "xlint_list_check: ok ($(printf '%s\n' "$actual" | wc -l) lints documented)"
