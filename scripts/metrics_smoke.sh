#!/usr/bin/env bash
# CI smoke test for the observability tier: boot one shard daemon and a
# router in front of it, drive some /search load with a known
# X-Trace-Id, then verify over the real wire that
#
#   1. both daemons serve /metrics as Prometheus text exposition 0.0.4
#      (every line matches the exposition grammar) with *populated*
#      request-stage histograms (search and snippet counts > 0 where the
#      work happened),
#   2. both daemons serve /debug/traces as valid JSON (checked with the
#      dependency-free `jsonv` binary), and the *same* trace ID appears
#      in the router's and the shard's flight recorders — one request,
#      followable end to end,
#   3. the router echoes the client's X-Trace-Id response header.
#
# Usage: scripts/metrics_smoke.sh
#
# All commands run with --offline: every dependency is a path-local
# vendored shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE=target/release/serve
ROUTER=target/release/router
JSONV=target/release/jsonv

echo "==> metrics_smoke: building the daemon, the router and the JSON validator"
cargo build --release --offline --bin serve --bin jsonv
cargo build --release --offline -p extract-router --bin router

if ! command -v curl >/dev/null; then
    # The in-process equivalents run in tests/router.rs
    # (a_trace_id_follows_one_request_across_both_tiers); this script's
    # value is the real-multi-process wire check, which needs an
    # external client.
    echo "metrics_smoke: curl not available — skipping wire probes"
    exit 0
fi

SHARD_OUT=$(mktemp)
ROUTER_OUT=$(mktemp)
SCRATCH=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]+"${PIDS[@]}"}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$SHARD_OUT" "$ROUTER_OUT" "$SCRATCH"
}
trap cleanup EXIT

await_ready() { # await_ready OUTFILE READY_PREFIX NAME
    local out=$1 prefix=$2 name=$3 url=""
    for _ in $(seq 1 100); do
        url=$(sed -n "s/^${prefix} listening on \(http:[^ ]*\).*/\1/p" "$out")
        [[ -n "$url" ]] && break
        sleep 0.2
    done
    if [[ -z "$url" ]]; then
        echo "metrics_smoke: $name never printed its ready line" >&2
        cat "$out" >&2
        exit 1
    fi
    echo "$url"
}

echo "==> metrics_smoke: booting one shard and the router"
"$SERVE" --port 0 --gen-docs 4 --gen-nodes 400 --seed 1 --workers 2 --queue-depth 8 >"$SHARD_OUT" &
PIDS+=($!)
SHARD_URL=$(await_ready "$SHARD_OUT" "extract-serve" "shard")
"$ROUTER" --port 0 --shards "${SHARD_URL#http://}" \
    --workers 2 --queue-depth 8 --deadline-ms 2000 >"$ROUTER_OUT" &
ROUTER_PID=$!; PIDS+=("$ROUTER_PID")
ROUTER_URL=$(await_ready "$ROUTER_OUT" "extract-router" "router")
echo "metrics_smoke: shard at $SHARD_URL, router at $ROUTER_URL"

TRACE="feedc0de12345678"
echo "==> metrics_smoke: driving load (one request pinned to trace $TRACE)"
for q in texas "store+name" city; do
    curl -s "$ROUTER_URL/search?q=$q&k=3" > /dev/null
done
HEADERS=$(curl -s -D - -o /dev/null -H "X-Trace-Id: $TRACE" "$ROUTER_URL/search?q=texas&k=2")
case "$HEADERS" in
    *"X-Trace-Id: $TRACE"*) echo "metrics_smoke: router echoed the client trace ID" ;;
    *) echo "metrics_smoke: X-Trace-Id not echoed; headers were:" >&2
       echo "$HEADERS" >&2
       exit 1 ;;
esac

# check_metrics URL NAME — scrape and validate one daemon's /metrics.
check_metrics() {
    local url=$1 name=$2 body="$SCRATCH/$2.metrics" status
    status=$(curl -s -o "$body" -w '%{http_code}' "$url/metrics")
    if [[ "$status" != "200" ]]; then
        echo "metrics_smoke: $name /metrics returned $status" >&2
        cat "$body" >&2
        exit 1
    fi
    # Every line must match the text exposition 0.0.4 grammar: a # HELP
    # or # TYPE directive, or `name{labels} value`.
    if LC_ALL=C grep -Ev \
        '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+|\+?Inf|)$' \
        "$body" | grep -q .; then
        echo "metrics_smoke: $name /metrics has lines outside the exposition grammar:" >&2
        LC_ALL=C grep -Ev \
            '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+|\+?Inf|)$' \
            "$body" >&2
        exit 1
    fi
    # The stage histograms must be populated where the work happened.
    local count
    count=$(sed -n 's/^extract_request_stage_duration_seconds_count{stage="search"} \([0-9]*\)$/\1/p' "$body")
    if [[ -z "$count" || "$count" -lt 1 ]]; then
        echo "metrics_smoke: $name search stage histogram is empty (count=$count)" >&2
        cat "$body" >&2
        exit 1
    fi
    echo "metrics_smoke: $name /metrics valid, search stage count=$count"
}

echo "==> metrics_smoke: scraping /metrics on both tiers"
check_metrics "$ROUTER_URL" router
check_metrics "$SHARD_URL" shard
grep -q 'extract_router_shard_latency_seconds_bucket{shard="0"' "$SCRATCH/router.metrics" \
    || { echo "metrics_smoke: router missing per-shard latency histogram" >&2; exit 1; }
grep -q '^extract_request_stage_duration_seconds_count{stage="snippet"} [1-9]' "$SCRATCH/shard.metrics" \
    || { echo "metrics_smoke: shard snippet stage histogram is empty" >&2; exit 1; }

echo "==> metrics_smoke: the pinned trace must appear in both flight recorders"
check_traces() { # check_traces URL NAME
    local url=$1 name=$2 body="$SCRATCH/$2.traces" status
    status=$(curl -s -o "$body" -w '%{http_code}' "$url/debug/traces")
    if [[ "$status" != "200" ]]; then
        echo "metrics_smoke: $name /debug/traces returned $status" >&2
        exit 1
    fi
    "$JSONV" "$body" || { echo "metrics_smoke: $name /debug/traces is not valid JSON" >&2; exit 1; }
    if ! grep -q "\"$TRACE\"" "$body"; then
        echo "metrics_smoke: trace $TRACE missing from $name /debug/traces:" >&2
        cat "$body" >&2
        exit 1
    fi
    echo "metrics_smoke: $name /debug/traces valid, trace $TRACE present"
}
check_traces "$ROUTER_URL" router
check_traces "$SHARD_URL" shard

echo "==> metrics_smoke: graceful shutdown"
curl -s -X POST "$ROUTER_URL/shutdown" > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$ROUTER_PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$ROUTER_PID" 2>/dev/null; then
    echo "metrics_smoke: router did not exit after /shutdown" >&2
    exit 1
fi
wait "$ROUTER_PID" || { echo "metrics_smoke: router exited non-zero" >&2; exit 1; }
curl -s -X POST "$SHARD_URL/shutdown" > /dev/null || true
echo "metrics_smoke: green"
