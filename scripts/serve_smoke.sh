#!/usr/bin/env bash
# CI smoke test for the `serve` daemon: build it, boot it against a small
# generated corpus, hit /healthz, /search and /stats, assert 200 + well-
# formed JSON (validated by the dependency-free `jsonv` binary), then
# exercise graceful shutdown and require a clean exit.
#
# Usage: scripts/serve_smoke.sh
#
# Two layers:
#   1. `serve --self-check` — the daemon's built-in loopback round
#      (including two requests over one kept-alive socket), which needs
#      no external tools at all;
#   2. when `curl` is available, the same probes again from a real
#      external client over the wire, plus a keep-alive probe: two
#      requests on one reused connection, verified against the server's
#      own `reused_requests` counter on /stats.
#
# All commands run with --offline: every dependency is a path-local
# vendored shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE=target/release/serve
JSONV=target/release/jsonv

echo "==> serve_smoke: building the daemon and the JSON validator"
cargo build --release --offline --bin serve --bin jsonv

echo "==> serve_smoke: built-in self-check (ephemeral port, loopback round)"
"$SERVE" --self-check --gen-docs 6 --gen-nodes 500 --workers 2 --queue-depth 8

if ! command -v curl >/dev/null; then
    echo "serve_smoke: curl not available — self-check covered the wire probes"
    echo "serve_smoke: green"
    exit 0
fi

echo "==> serve_smoke: external probes over the wire (curl)"
OUT=$(mktemp)
"$SERVE" --port 0 --gen-docs 6 --gen-nodes 500 --workers 2 --queue-depth 8 >"$OUT" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

# Wait for the single ready line and extract the bound address.
URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/^extract-serve listening on \(http:[^ ]*\).*/\1/p' "$OUT")
    [[ -n "$URL" ]] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve_smoke: daemon died before becoming ready" >&2
        cat "$OUT" >&2
        exit 1
    fi
    sleep 0.2
done
if [[ -z "$URL" ]]; then
    echo "serve_smoke: daemon never printed its ready line" >&2
    exit 1
fi
echo "serve_smoke: daemon ready at $URL"

probe() { # probe METHOD PATH EXPECTED_STATUS
    local method=$1 path=$2 want=$3 body status
    body=$(mktemp)
    status=$(curl -s -X "$method" -o "$body" -w '%{http_code}' "$URL$path")
    if [[ "$status" != "$want" ]]; then
        echo "serve_smoke: $method $path returned $status (want $want)" >&2
        cat "$body" >&2
        rm -f "$body"
        exit 1
    fi
    "$JSONV" "$body" || { echo "serve_smoke: $method $path body is not valid JSON" >&2; exit 1; }
    rm -f "$body"
    echo "serve_smoke: $method $path → $status, valid JSON"
}

probe GET  "/healthz" 200
probe GET  "/search?q=texas&k=3" 200
probe GET  "/search?q=store+name&k=2&offset=1" 200
probe GET  "/stats" 200
probe GET  "/search" 400
probe GET  "/no-such-route" 404

echo "==> serve_smoke: keep-alive probe (two requests, one socket)"
# One curl invocation with two URLs reuses the connection; the server's
# own counter proves it (the self-check already covered this without
# curl, but this exercises a real external client).
BEFORE=$(curl -s "$URL/stats" | sed -n 's/.*"reused_requests":\([0-9]*\).*/\1/p')
curl -s "$URL/search?q=texas&k=1" "$URL/healthz" > /dev/null
AFTER=$(curl -s "$URL/stats" | sed -n 's/.*"reused_requests":\([0-9]*\).*/\1/p')
if [[ -z "$BEFORE" || -z "$AFTER" ]]; then
    echo "serve_smoke: /stats is missing the reused_requests counter" >&2
    exit 1
fi
if (( AFTER <= BEFORE )); then
    echo "serve_smoke: connection was not reused (reused_requests $BEFORE -> $AFTER)" >&2
    exit 1
fi
echo "serve_smoke: connection reused (reused_requests $BEFORE -> $AFTER)"

echo "==> serve_smoke: graceful shutdown"
probe POST "/shutdown" 200
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$PID" 2>/dev/null; then
    echo "serve_smoke: daemon did not exit after /shutdown" >&2
    exit 1
fi
wait "$PID" || { echo "serve_smoke: daemon exited non-zero" >&2; exit 1; }
trap 'rm -f "$OUT"' EXIT

echo "serve_smoke: green"
