#!/usr/bin/env bash
# Benchmark runner: the PR-2 query-path workload, the PR-3 corpus-scale
# workload, the serve-throughput workload (PR-4 fresh-connection and
# PR-5 keep-alive client modes side by side) and the PR-7 router
# scatter-gather workload.
#
# Usage:
#   scripts/bench.sh [--check|--quick] [pr2|pr3|pr5|serve|pr7|router|all]
#
#   scripts/bench.sh            — run every workload, writing
#                                 BENCH_PR2.json, BENCH_PR3.json,
#                                 BENCH_PR5.json and BENCH_PR7.json
#   scripts/bench.sh pr3        — run only the corpus-scale workload
#   scripts/bench.sh serve      — run only the daemon load generator
#                                 (aliases: pr4, pr5; writes
#                                 BENCH_PR5.json, which supersedes
#                                 BENCH_PR4.json with keep-alive
#                                 scenarios added)
#   scripts/bench.sh router     — run only the router workload (alias:
#                                 pr7; 2 shards vs a single daemon over
#                                 the union corpus, plus a degraded-shard
#                                 run; writes BENCH_PR7.json)
#   scripts/bench.sh --check    — CI gate: build the bench binaries and
#                                 the Criterion benches without running
#                                 the workloads, then run the
#                                 deterministic serve keep-alive probe
#                                 and the router scatter probe
#   scripts/bench.sh --quick    — fast smoke run (fewer samples, smaller
#                                 corpus), still writes the JSON files
#
# All commands run with --offline: every dependency is a path-local vendored
# shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="run"
TARGET="all"
for arg in "$@"; do
    case "$arg" in
        --check) MODE="check" ;;
        --quick) MODE="quick" ;;
        pr2|pr3|all) TARGET="$arg" ;;
        pr4|pr5|serve) TARGET="pr5" ;;
        pr7|router) TARGET="pr7" ;;
        *)
            echo "usage: scripts/bench.sh [--check|--quick] [pr2|pr3|pr5|serve|pr7|router|all]" >&2
            exit 2
            ;;
    esac
done

if [[ "$MODE" == "check" ]]; then
    echo "==> bench.sh --check: compile the bench binaries and Criterion benches"
    cargo build --release --offline -p extract-bench \
        --bin query_throughput --bin corpus_scale --bin serve_throughput --bin router_throughput
    cargo bench --no-run --offline -p extract-bench
    echo "==> bench.sh --check: serve keep-alive probe (connection reuse must work)"
    cargo run --release --offline -p extract-bench --bin serve_throughput -- --check-keepalive
    echo "==> bench.sh --check: instrumentation overhead probe (cache-hot A/B, <5% budget)"
    cargo run --release --offline -p extract-bench --bin serve_throughput -- --check-obs-overhead
    echo "==> bench.sh --check: router scatter probe (2 shards, all 200, no degradation)"
    cargo run --release --offline -p extract-bench --bin router_throughput -- --check-router
    echo "bench.sh: compile check green"
    exit 0
fi

ARGS=()
if [[ "$MODE" == "quick" ]]; then
    ARGS+=(--quick)
fi

if [[ "$TARGET" == "pr2" || "$TARGET" == "all" ]]; then
    echo "==> bench.sh: running query_throughput (results → BENCH_PR2.json)"
    cargo run --release --offline -p extract-bench --bin query_throughput -- \
        --json BENCH_PR2.json "${ARGS[@]+"${ARGS[@]}"}"
fi

if [[ "$TARGET" == "pr3" || "$TARGET" == "all" ]]; then
    echo "==> bench.sh: running corpus_scale (results → BENCH_PR3.json)"
    cargo run --release --offline -p extract-bench --bin corpus_scale -- \
        --json BENCH_PR3.json "${ARGS[@]+"${ARGS[@]}"}"
fi

if [[ "$TARGET" == "pr5" || "$TARGET" == "all" ]]; then
    echo "==> bench.sh: running serve_throughput (results → BENCH_PR5.json)"
    cargo run --release --offline -p extract-bench --bin serve_throughput -- \
        --json BENCH_PR5.json "${ARGS[@]+"${ARGS[@]}"}"
fi

if [[ "$TARGET" == "pr7" || "$TARGET" == "all" ]]; then
    echo "==> bench.sh: running router_throughput (results → BENCH_PR7.json)"
    cargo run --release --offline -p extract-bench --bin router_throughput -- \
        --json BENCH_PR7.json "${ARGS[@]+"${ARGS[@]}"}"
fi
