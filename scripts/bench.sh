#!/usr/bin/env bash
# Query-path throughput benchmark runner (PR 2).
#
# Usage:
#   scripts/bench.sh            — run the full workload and write BENCH_PR2.json
#   scripts/bench.sh --check    — compile-only (CI gate): build the binary and
#                                 the Criterion bench without running them
#   scripts/bench.sh --quick    — fast smoke run (fewer samples), still writes
#                                 BENCH_PR2.json
#
# All commands run with --offline: every dependency is a path-local vendored
# shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--check" ]]; then
    echo "==> bench.sh --check: compile the throughput bench"
    cargo build --release --offline -p extract-bench --bin query_throughput
    cargo bench --no-run --offline -p extract-bench
    echo "bench.sh: compile check green"
    exit 0
fi

ARGS=()
if [[ "${1:-}" == "--quick" ]]; then
    ARGS+=(--quick)
fi

echo "==> bench.sh: running query_throughput (results → BENCH_PR2.json)"
cargo run --release --offline -p extract-bench --bin query_throughput -- \
    --json BENCH_PR2.json "${ARGS[@]+"${ARGS[@]}"}"
