#!/usr/bin/env bash
# CI smoke test for the live-corpus mutation path: build the daemon, boot
# it, ingest a document over HTTP, find it via /search, delete it, assert
# the search result set is empty again and that the corpus epoch advanced.
# JSON bodies are validated by the dependency-free `jsonv` binary.
#
# Usage: scripts/ingest_smoke.sh
#
# Two layers, mirroring serve_smoke.sh:
#   1. `serve --self-check` — the daemon's built-in loopback round now
#      includes an ingest/search/delete mutation round with epoch
#      assertions, so the live path is covered without external tools;
#   2. when `curl` is available, the same round again from a real
#      external client: POST /ingest with an XML body, search for the
#      new token, POST /delete, search returns zero results, and the
#      corpus epoch on /stats has moved exactly two steps.
#
# All commands run with --offline: every dependency is a path-local
# vendored shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE=target/release/serve
JSONV=target/release/jsonv

echo "==> ingest_smoke: building the daemon and the JSON validator"
cargo build --release --offline --bin serve --bin jsonv

echo "==> ingest_smoke: built-in self-check (includes the mutation round)"
"$SERVE" --self-check --gen-docs 6 --gen-nodes 500 --workers 2 --queue-depth 8

if ! command -v curl >/dev/null; then
    echo "ingest_smoke: curl not available — self-check covered the wire probes"
    echo "ingest_smoke: green"
    exit 0
fi

echo "==> ingest_smoke: mutation round over the wire (curl)"
OUT=$(mktemp)
"$SERVE" --port 0 --gen-docs 6 --gen-nodes 500 --workers 2 --queue-depth 8 >"$OUT" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

# Wait for the single ready line and extract the bound address.
URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/^extract-serve listening on \(http:[^ ]*\).*/\1/p' "$OUT")
    [[ -n "$URL" ]] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "ingest_smoke: daemon died before becoming ready" >&2
        cat "$OUT" >&2
        exit 1
    fi
    sleep 0.2
done
if [[ -z "$URL" ]]; then
    echo "ingest_smoke: daemon never printed its ready line" >&2
    exit 1
fi
echo "ingest_smoke: daemon ready at $URL"

BODY=$(mktemp)
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT" "$BODY"' EXIT

probe() { # probe METHOD PATH EXPECTED_STATUS [DATA]
    local method=$1 path=$2 want=$3 data=${4-} status
    if [[ -n "$data" ]]; then
        status=$(curl -s -X "$method" --data-binary "$data" -o "$BODY" -w '%{http_code}' "$URL$path")
    else
        status=$(curl -s -X "$method" -o "$BODY" -w '%{http_code}' "$URL$path")
    fi
    if [[ "$status" != "$want" ]]; then
        echo "ingest_smoke: $method $path returned $status (want $want)" >&2
        cat "$BODY" >&2
        exit 1
    fi
    "$JSONV" "$BODY" || { echo "ingest_smoke: $method $path body is not valid JSON" >&2; exit 1; }
    echo "ingest_smoke: $method $path → $status, valid JSON"
}

epoch() { # corpus epoch as reported by /stats
    curl -s "$URL/stats" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'
}

count() { # result count for a query
    curl -s "$URL/search?q=$1&k=5" | sed -n 's/.*"count":\([0-9]*\).*/\1/p'
}

EPOCH0=$(epoch)
if [[ -z "$EPOCH0" ]]; then
    echo "ingest_smoke: /stats is missing the corpus epoch" >&2
    exit 1
fi

# A token the generated corpus cannot contain, so hits are unambiguous.
if [[ "$(count zzsmokezz)" != "0" ]]; then
    echo "ingest_smoke: marker token present before ingest" >&2
    exit 1
fi

probe POST "/ingest?name=smoke-doc" 200 \
    "<stores><store><name>zzsmokezz</name><state>Texas</state></store></stores>"
if [[ "$(count zzsmokezz)" != "1" ]]; then
    echo "ingest_smoke: ingested document not served by /search" >&2
    exit 1
fi
echo "ingest_smoke: ingested document answers queries without a restart"

probe POST "/delete?doc=smoke-doc" 200
if [[ "$(count zzsmokezz)" != "0" ]]; then
    echo "ingest_smoke: deleted document still served by /search" >&2
    exit 1
fi
echo "ingest_smoke: deleted document no longer answers queries"

EPOCH1=$(epoch)
if [[ "$EPOCH1" != "$((EPOCH0 + 2))" ]]; then
    echo "ingest_smoke: corpus epoch moved $EPOCH0 -> $EPOCH1 (want +2 for ingest+delete)" >&2
    exit 1
fi
echo "ingest_smoke: corpus epoch advanced $EPOCH0 -> $EPOCH1"

# Malformed XML is a soft reject: 400, no epoch bump, daemon keeps serving.
probe POST "/ingest?name=bad-doc" 400 "<unclosed><tag>"
if [[ "$(epoch)" != "$EPOCH1" ]]; then
    echo "ingest_smoke: rejected ingest bumped the corpus epoch" >&2
    exit 1
fi
probe GET "/healthz" 200
echo "ingest_smoke: malformed ingest soft-rejected, daemon still serving"

echo "==> ingest_smoke: graceful shutdown"
probe POST "/shutdown" 200
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$PID" 2>/dev/null; then
    echo "ingest_smoke: daemon did not exit after /shutdown" >&2
    exit 1
fi
wait "$PID" || { echo "ingest_smoke: daemon exited non-zero" >&2; exit 1; }
trap 'rm -f "$OUT" "$BODY"' EXIT

echo "ingest_smoke: green"
