#!/usr/bin/env bash
# Tier-1 verification gate for the eXtract workspace.
#
# Usage: scripts/verify.sh
#
# Runs, in order:
#   1. cargo build --release          — every crate, bin, and example
#   2. cargo test -q                  — unit, integration, property, doc tests
#   3. cargo clippy ... -D warnings   — lint-clean across all targets
#   4. xlint --deny-warnings          — workspace invariants (lock order,
#                                       condvar loops, panic-free serving
#                                       path, unsafe hygiene, casts, and
#                                       the GuardFlow lints L6-L9)
#   5. xlint_list_check.sh            — README lint catalog matches --list
#   6. cargo bench --no-run           — every Criterion bench compiles
#   7. scripts/bench.sh --check       — the bench binaries compile
#
# The serving daemon additionally has scripts/serve_smoke.sh (boot, probe,
# drain), run as its own CI job.
#
# All commands run with --offline: every dependency is a path-local
# vendored shim (vendor/), so no registry access is needed or wanted.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo run --offline -q -p extract-xlint -- --deny-warnings
run scripts/xlint_list_check.sh
run cargo bench --no-run --offline
run scripts/bench.sh --check

echo "verify: all gates green"
