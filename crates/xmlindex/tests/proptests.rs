//! Property tests: the indexes must be *exactly* consistent with the
//! document — complete (every true match is indexed) and sound (every
//! posting is a true match).

use extract_index::{tokenize, DeweyStore, InvertedIndex, LabelIndex, XmlIndex};
use extract_xml::{DocBuilder, Document, NodeId};
use proptest::prelude::*;

const LABELS: [&str; 5] = ["store", "item", "name", "city", "tag"];
const VALUES: [&str; 6] = ["texas", "houston", "gold watch", "red Fox", "a-1", ""];

#[derive(Debug, Clone)]
struct SpecNode {
    label: usize,
    value: Option<usize>,
    children: Vec<SpecNode>,
}

fn spec_strategy() -> impl Strategy<Value = SpecNode> {
    let leaf = (0usize..LABELS.len(), proptest::option::of(0usize..VALUES.len()))
        .prop_map(|(label, value)| SpecNode { label, value, children: Vec::new() });
    leaf.prop_recursive(4, 48, 6, |inner| {
        (0usize..LABELS.len(), proptest::collection::vec(inner, 0..6)).prop_map(
            |(label, children)| SpecNode { label, value: None, children },
        )
    })
}

fn build(spec: &SpecNode) -> Document {
    let mut b = DocBuilder::new("db");
    push(&mut b, spec);
    b.build()
}

fn push(b: &mut DocBuilder, s: &SpecNode) {
    b.begin(LABELS[s.label]);
    if let Some(v) = s.value {
        if !VALUES[v].is_empty() {
            b.text(VALUES[v]);
        }
    }
    for c in &s.children {
        push(b, c);
    }
    b.end();
}

/// Reference: does element `n` match `token` by label or direct text?
fn matches(doc: &Document, n: NodeId, token: &str) -> bool {
    if !doc.node(n).is_element() {
        return false;
    }
    if tokenize::contains_token(doc.label_str(n).unwrap_or(""), token) {
        return true;
    }
    doc.children(n).any(|c| {
        doc.node(c)
            .text()
            .map(|t| tokenize::contains_token(t, token))
            .unwrap_or(false)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn inverted_index_is_sound_and_complete(spec in spec_strategy()) {
        let doc = build(&spec);
        let index = InvertedIndex::build(&doc);
        // Tokens worth checking: all label tokens + all value tokens.
        let mut tokens: Vec<String> = Vec::new();
        for l in LABELS {
            tokens.extend(tokenize::tokenize(l));
        }
        for v in VALUES {
            tokens.extend(tokenize::tokenize(v));
        }
        tokens.push("zzz-not-there".into());
        tokens.sort();
        tokens.dedup();
        for token in &tokens {
            let postings = index.postings(token);
            // Sound: every posting matches.
            for &n in postings {
                prop_assert!(matches(&doc, n, token), "posting {n} does not match {token}");
            }
            // Complete: every matching element is in the postings.
            for n in doc.all_nodes() {
                if matches(&doc, n, token) {
                    prop_assert!(
                        postings.contains(&n),
                        "element {n} matching `{token}` missing from postings"
                    );
                }
            }
            // Sorted, unique.
            prop_assert!(postings.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn arena_index_matches_hashmap_reference_model(spec in spec_strategy()) {
        // Reference model: the pre-arena design — a HashMap from token to
        // per-token Vec, built by the same per-element dedup semantics.
        let doc = build(&spec);
        let mut reference: std::collections::HashMap<String, Vec<NodeId>> =
            std::collections::HashMap::new();
        for node in doc.all_nodes() {
            if !doc.node(node).is_element() {
                continue;
            }
            let mut toks: Vec<String> =
                tokenize::tokenize(doc.label_str(node).unwrap_or(""));
            for c in doc.children(node) {
                if let Some(t) = doc.node(c).text() {
                    toks.extend(tokenize::tokenize(t));
                }
            }
            toks.sort();
            toks.dedup();
            for t in toks {
                reference.entry(t).or_default().push(node);
            }
        }
        let index = InvertedIndex::build(&doc);
        prop_assert_eq!(index.vocabulary_size(), reference.len());
        prop_assert_eq!(
            index.total_postings(),
            reference.values().map(Vec::len).sum::<usize>()
        );
        // Every reference list is reachable by string AND by interned id.
        for (token, expected) in &reference {
            prop_assert_eq!(index.postings(token), expected.as_slice(), "token {}", token);
            let id = index.token_id(token).expect("token interned");
            prop_assert_eq!(index.postings_by_id(id), expected.as_slice());
            prop_assert_eq!(index.token_str(id), Some(token.as_str()));
        }
        // And iter() exposes exactly the reference's entries.
        for (token, list) in index.iter() {
            prop_assert_eq!(Some(list), reference.get(token).map(Vec::as_slice), "token {}", token);
        }
    }

    #[test]
    fn dewey_store_matches_document(spec in spec_strategy()) {
        let doc = build(&spec);
        let store = DeweyStore::build(&doc);
        prop_assert_eq!(store.len(), doc.len());
        for n in doc.all_nodes() {
            let expected = doc.dewey(n);
            prop_assert_eq!(store.components(n), expected.components());
        }
    }

    #[test]
    fn label_index_matches_document(spec in spec_strategy()) {
        let doc = build(&spec);
        let index = LabelIndex::build(&doc);
        for label in LABELS.iter().chain(["db", "absent"].iter()) {
            let via_index: Vec<NodeId> = index.nodes_by_str(&doc, label).to_vec();
            let via_scan = doc.elements_with_label(label);
            prop_assert_eq!(via_index, via_scan, "label {}", label);
        }
    }

    #[test]
    fn facade_footprint_and_consistency(spec in spec_strategy()) {
        let doc = build(&spec);
        let index = XmlIndex::build(&doc);
        prop_assert!(index.memory_footprint() > 0);
        // The facade's postings agree with a fresh inverted index.
        let fresh = InvertedIndex::build(&doc);
        for token in ["store", "texas", "gold"] {
            prop_assert_eq!(index.postings(token), fresh.postings(token));
        }
    }
}
