//! The inverted keyword index.
//!
//! Maps each normalized token to the **element** nodes that match it, in
//! document order. An element matches a token if
//!
//! * its label yields the token (`<open_auction>` matches `open` and
//!   `auction`), or
//! * a text node directly under it yields the token (`<city>Houston</city>`
//!   matches `houston` — the *element* `city` is the posting, so matches
//!   always address elements and the snippet selector never has to reason
//!   about text nodes).
//!
//! Postings are deduplicated per element and sorted by [`NodeId`], which is
//! document order thanks to the preorder-ID invariant of `extract-xml`.

use std::collections::HashMap;

use extract_xml::{Document, NodeId};

use crate::tokenize::tokens_of;

/// Inverted index from token to matching elements.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<NodeId>>,
    /// Total number of (token, element) pairs.
    total_postings: usize,
}

impl InvertedIndex {
    /// Build the index over all elements of `doc`.
    pub fn build(doc: &Document) -> InvertedIndex {
        let mut postings: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut total = 0usize;
        let mut seen: Vec<String> = Vec::with_capacity(8);
        for node in doc.all_nodes() {
            let n = doc.node(node);
            if !n.is_element() {
                continue;
            }
            seen.clear();
            for tok in tokens_of(doc.resolve(n.label())) {
                if !seen.contains(&tok) {
                    seen.push(tok);
                }
            }
            for &child in n.children() {
                if let Some(text) = doc.node(child).text() {
                    for tok in tokens_of(text) {
                        if !seen.contains(&tok) {
                            seen.push(tok);
                        }
                    }
                }
            }
            for tok in seen.drain(..) {
                postings.entry(tok).or_default().push(node);
                total += 1;
            }
        }
        // Elements are visited in ID (document) order, so each list is
        // already sorted; assert in debug builds.
        #[cfg(debug_assertions)]
        for list in postings.values() {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
        InvertedIndex { postings, total_postings: total }
    }

    /// The posting list for `token` (empty slice if absent). `token` must
    /// already be normalized (see [`crate::tokenize`]).
    pub fn postings(&self, token: &str) -> &[NodeId] {
        self.postings.get(token).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of elements matching `token`.
    pub fn frequency(&self, token: &str) -> usize {
        self.postings(token).len()
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Total number of (token, element) pairs.
    pub fn total_postings(&self) -> usize {
        self.total_postings
    }

    /// Iterate over `(token, postings)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.postings.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_footprint(&self) -> usize {
        self.postings
            .iter()
            .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<NodeId>() + 48)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<retailer><name>Brook Brothers</name>\
             <store><name>Galleria</name><city>Houston</city></store>\
             <store><name>West Village</name><city>Houston</city></store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn label_and_text_matches() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // Label matches: one retailer, two stores, three names, two cities.
        assert_eq!(idx.frequency("retailer"), 1);
        assert_eq!(idx.frequency("store"), 2);
        assert_eq!(idx.frequency("name"), 3);
        // Text matches point at the containing element.
        let houston = idx.postings("houston");
        assert_eq!(houston.len(), 2);
        for &n in houston {
            assert_eq!(d.label_str(n), Some("city"));
        }
    }

    #[test]
    fn postings_are_sorted_and_unique() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for (_, list) in idx.iter() {
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn multiword_text_tokenizes() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.frequency("brook"), 1);
        assert_eq!(idx.frequency("brothers"), 1);
        assert_eq!(idx.frequency("west"), 1);
        assert_eq!(idx.frequency("village"), 1);
    }

    #[test]
    fn unknown_tokens_are_empty() {
        let idx = InvertedIndex::build(&doc());
        assert!(idx.postings("dallas").is_empty());
        assert_eq!(idx.frequency("dallas"), 0);
    }

    #[test]
    fn element_with_same_token_in_label_and_text_posts_once() {
        let d = Document::parse_str("<city>city</city>").unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.frequency("city"), 1);
    }

    #[test]
    fn vocabulary_and_totals() {
        let d = Document::parse_str("<a>x y</a>").unwrap();
        let idx = InvertedIndex::build(&d);
        // tokens: a (label), x, y
        assert_eq!(idx.vocabulary_size(), 3);
        assert_eq!(idx.total_postings(), 3);
    }

    #[test]
    fn nested_text_is_indexed_on_direct_parent_only() {
        let d = Document::parse_str("<a><b>deep</b></a>").unwrap();
        let idx = InvertedIndex::build(&d);
        let deep = idx.postings("deep");
        assert_eq!(deep.len(), 1);
        assert_eq!(d.label_str(deep[0]), Some("b"), "not the grandparent <a>");
    }
}
