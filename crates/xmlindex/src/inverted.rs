//! The inverted keyword index.
//!
//! Maps each normalized token to the **element** nodes that match it, in
//! document order. An element matches a token if
//!
//! * its label yields the token (`<open_auction>` matches `open` and
//!   `auction`), or
//! * a text node directly under it yields the token (`<city>Houston</city>`
//!   matches `houston` — the *element* `city` is the posting, so matches
//!   always address elements and the snippet selector never has to reason
//!   about text nodes).
//!
//! Postings are deduplicated per element and sorted by [`NodeId`], which is
//! document order thanks to the preorder-ID invariant of `extract-xml`.
//!
//! # Layout
//!
//! Tokens are interned into a [`TokenId`] table (the `symbol.rs` pattern
//! from `extract-xml`), and all posting lists live in **one flat arena**:
//! a single `Vec<NodeId>` plus a `starts` offset table indexed by token id.
//! Compared to the obvious `HashMap<String, Vec<NodeId>>` this removes one
//! heap allocation per distinct token, keeps hot lists cache-adjacent, and
//! makes repeated lookups by [`TokenId`] free of string hashing entirely —
//! resolve the query's tokens once, then hit `postings_by_id` per query.

use extract_xml::{Document, NodeId, SymbolTable};

use crate::tokenize::tokens_of;

/// An interned query token. Ids are dense (`0..vocabulary_size`) and stable
/// for the lifetime of the index they came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(u32);

impl TokenId {
    /// The dense index of this token in its index's vocabulary.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index. The caller must ensure it came from
    /// [`TokenId::index`] on the same index.
    ///
    /// # Panics
    ///
    /// On an index past `u32::MAX` — a silent `as u32` here would alias
    /// index 2³² back onto id 0 and quietly answer queries from the
    /// wrong posting list.
    pub fn from_index(index: usize) -> TokenId {
        TokenId(id32(index))
    }
}

/// Dense-index → `u32` id, loud on overflow: the posting arena's offset
/// table is `u32`, so a vocabulary (or corpus) past 4 billion entries
/// cannot be represented — truncating instead of panicking would corrupt
/// the index silently.
fn id32(index: usize) -> u32 {
    u32::try_from(index).expect("dense id exceeds u32::MAX")
}

/// Inverted index from token to matching elements.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// Token interner; `TokenId(t)` corresponds to symbol index `t`.
    tokens: SymbolTable,
    /// `starts[t]..starts[t + 1]` indexes `arena` for token `t`.
    starts: Vec<u32>,
    /// Every posting list, concatenated in token-id order.
    arena: Vec<NodeId>,
}

impl InvertedIndex {
    /// Build the index over all elements of `doc`.
    pub fn build(doc: &Document) -> InvertedIndex {
        let mut tokens = SymbolTable::new();
        // (token, element) pairs in document order; counting-sorted into the
        // arena afterwards so each per-token range stays in document order.
        let mut pairs: Vec<(u32, NodeId)> = Vec::new();
        let mut seen: Vec<u32> = Vec::with_capacity(8);
        for node in doc.all_nodes() {
            let n = doc.node(node);
            if !n.is_element() {
                continue;
            }
            seen.clear();
            for tok in tokens_of(doc.resolve(n.label())) {
                seen.push(id32(tokens.intern(&tok).index()));
            }
            for &child in n.children() {
                if let Some(text) = doc.node(child).text() {
                    for tok in tokens_of(text) {
                        seen.push(id32(tokens.intern(&tok).index()));
                    }
                }
            }
            // Per-element dedup: sort + dedup is O(t log t) in the element's
            // token count (a linear `contains` scan per token is O(t²) and
            // hurts on text-heavy elements).
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                pairs.push((t, node));
            }
        }

        let vocab = tokens.len();
        let mut starts = vec![0u32; vocab + 1];
        for &(t, _) in &pairs {
            starts[t as usize + 1] += 1;
        }
        for i in 1..=vocab {
            starts[i] += starts[i - 1];
        }
        let mut cursor: Vec<u32> = starts.clone();
        let mut arena = vec![NodeId::from_index(0); pairs.len()];
        for &(t, node) in &pairs {
            arena[cursor[t as usize] as usize] = node;
            cursor[t as usize] += 1;
        }

        let index = InvertedIndex { tokens, starts, arena };
        // Elements are visited in ID (document) order, so each list is
        // already sorted; assert in debug builds.
        #[cfg(debug_assertions)]
        for (_, list) in index.iter() {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
        index
    }

    /// The id of `token` if it occurs anywhere in the document. `token`
    /// must already be normalized (see [`crate::tokenize`]). Resolving ids
    /// once per query keyword makes every later lookup hash-free.
    pub fn token_id(&self, token: &str) -> Option<TokenId> {
        self.tokens.get(token).map(|s| TokenId(id32(s.index())))
    }

    /// The token string of an id from this index.
    pub fn token_str(&self, id: TokenId) -> Option<&str> {
        self.tokens.try_resolve(extract_xml::Symbol::from_index(id.index()))
    }

    /// The posting list for `token` (empty slice if absent). `token` must
    /// already be normalized (see [`crate::tokenize`]).
    pub fn postings(&self, token: &str) -> &[NodeId] {
        match self.token_id(token) {
            Some(id) => self.postings_by_id(id),
            None => &[],
        }
    }

    /// The posting list for an interned token id (empty slice for foreign
    /// ids). No hashing: two array reads plus a slice.
    pub fn postings_by_id(&self, id: TokenId) -> &[NodeId] {
        let t = id.index();
        if t + 1 >= self.starts.len() {
            return &[];
        }
        &self.arena[self.starts[t] as usize..self.starts[t + 1] as usize]
    }

    /// Number of elements matching `token`.
    pub fn frequency(&self, token: &str) -> usize {
        self.postings(token).len()
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.tokens.len()
    }

    /// Total number of (token, element) pairs.
    pub fn total_postings(&self) -> usize {
        self.arena.len()
    }

    /// Iterate over `(token, postings)` pairs in token-id order (first
    /// occurrence order of the build pass).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.tokens.iter().map(move |(sym, s)| {
            (s, self.postings_by_id(TokenId(id32(sym.index()))))
        })
    }

    /// Estimated heap footprint in bytes, counting **allocated capacity**
    /// (not just live length) of the arena and offset table, plus the token
    /// table: each distinct token string is stored twice (interner vector +
    /// lookup map key) alongside two boxed-slice headers and a hash-map
    /// entry, estimated at [`TOKEN_TABLE_OVERHEAD`] bytes per token.
    pub fn memory_footprint(&self) -> usize {
        let arena = self.arena.capacity() * std::mem::size_of::<NodeId>();
        let starts = self.starts.capacity() * std::mem::size_of::<u32>();
        let tokens: usize =
            self.tokens.iter().map(|(_, s)| 2 * s.len() + TOKEN_TABLE_OVERHEAD).sum();
        arena + starts + tokens
    }
}

/// Per-token bookkeeping estimate used by
/// [`InvertedIndex::memory_footprint`]: the workspace-wide
/// [`extract_xml::SYMBOL_ENTRY_OVERHEAD`] (two `Box<str>` headers plus
/// hash-map entry overhead), aliased here for the index-facing name.
pub const TOKEN_TABLE_OVERHEAD: usize = extract_xml::SYMBOL_ENTRY_OVERHEAD;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_id_roundtrips_at_the_u32_boundary() {
        assert_eq!(TokenId::from_index(u32::MAX as usize).index(), u32::MAX as usize);
    }

    // Regression: `from_index` used a bare `as u32`, so index 2^32
    // silently aliased back onto TokenId(0) — a wrong-posting-list
    // lookup, not an error. It must panic instead.
    #[test]
    #[should_panic(expected = "dense id exceeds u32::MAX")]
    fn token_id_from_index_rejects_truncating_indices() {
        let _ = TokenId::from_index(u32::MAX as usize + 1);
    }

    fn doc() -> Document {
        Document::parse_str(
            "<retailer><name>Brook Brothers</name>\
             <store><name>Galleria</name><city>Houston</city></store>\
             <store><name>West Village</name><city>Houston</city></store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn label_and_text_matches() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // Label matches: one retailer, two stores, three names, two cities.
        assert_eq!(idx.frequency("retailer"), 1);
        assert_eq!(idx.frequency("store"), 2);
        assert_eq!(idx.frequency("name"), 3);
        // Text matches point at the containing element.
        let houston = idx.postings("houston");
        assert_eq!(houston.len(), 2);
        for &n in houston {
            assert_eq!(d.label_str(n), Some("city"));
        }
    }

    #[test]
    fn postings_are_sorted_and_unique() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for (_, list) in idx.iter() {
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn multiword_text_tokenizes() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.frequency("brook"), 1);
        assert_eq!(idx.frequency("brothers"), 1);
        assert_eq!(idx.frequency("west"), 1);
        assert_eq!(idx.frequency("village"), 1);
    }

    #[test]
    fn unknown_tokens_are_empty() {
        let idx = InvertedIndex::build(&doc());
        assert!(idx.postings("dallas").is_empty());
        assert_eq!(idx.frequency("dallas"), 0);
        assert!(idx.token_id("dallas").is_none());
    }

    #[test]
    fn token_id_round_trips() {
        let idx = InvertedIndex::build(&doc());
        let id = idx.token_id("houston").expect("indexed token");
        assert_eq!(idx.token_str(id), Some("houston"));
        assert_eq!(idx.postings_by_id(id), idx.postings("houston"));
        // Foreign / out-of-range ids resolve to nothing.
        let foreign = TokenId::from_index(usize::from(u16::MAX));
        assert!(idx.postings_by_id(foreign).is_empty());
        assert!(idx.token_str(foreign).is_none());
    }

    #[test]
    fn element_with_same_token_in_label_and_text_posts_once() {
        let d = Document::parse_str("<city>city</city>").unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.frequency("city"), 1);
    }

    #[test]
    fn vocabulary_and_totals() {
        let d = Document::parse_str("<a>x y</a>").unwrap();
        let idx = InvertedIndex::build(&d);
        // tokens: a (label), x, y
        assert_eq!(idx.vocabulary_size(), 3);
        assert_eq!(idx.total_postings(), 3);
    }

    #[test]
    fn nested_text_is_indexed_on_direct_parent_only() {
        let d = Document::parse_str("<a><b>deep</b></a>").unwrap();
        let idx = InvertedIndex::build(&d);
        let deep = idx.postings("deep");
        assert_eq!(deep.len(), 1);
        assert_eq!(d.label_str(deep[0]), Some("b"), "not the grandparent <a>");
    }

    #[test]
    fn many_distinct_tokens_in_one_element() {
        // Regression for the O(t²) per-element dedup: one element whose text
        // yields thousands of distinct tokens must index each exactly once.
        let n = 2_000usize;
        let text: String =
            (0..n).map(|i| format!("tok{i} ")).collect();
        let xml = format!("<bag>{text}tok0 tok1</bag>");
        let d = Document::parse_str(&xml).unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(idx.vocabulary_size(), n + 1, "n text tokens + the label");
        assert_eq!(idx.total_postings(), n + 1, "each posted once despite repeats");
        for i in [0usize, 1, n / 2, n - 1] {
            assert_eq!(idx.frequency(&format!("tok{i}")), 1);
        }
    }

    #[test]
    fn memory_footprint_arithmetic_is_pinned() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // The build produces exact-size allocations (`vec![..; n]`), so the
        // capacity terms equal the lengths and the whole sum is computable
        // from public accessors.
        let arena = idx.total_postings() * std::mem::size_of::<NodeId>();
        let starts = (idx.vocabulary_size() + 1) * std::mem::size_of::<u32>();
        let tokens: usize = idx
            .iter()
            .map(|(tok, _)| 2 * tok.len() + TOKEN_TABLE_OVERHEAD)
            .sum();
        assert_eq!(idx.memory_footprint(), arena + starts + tokens);
    }

    #[test]
    fn iter_covers_every_token_exactly_once() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let mut seen: Vec<&str> = idx.iter().map(|(t, _)| t).collect();
        assert_eq!(seen.len(), idx.vocabulary_size());
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), idx.vocabulary_size());
        let total: usize = idx.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, idx.total_postings());
    }
}
