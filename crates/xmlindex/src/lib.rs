//! Index Builder for the eXtract reproduction (paper §3, Figure 4).
//!
//! "The Index Builder builds indexes for efficiently retrieving matches to
//! user input keywords, as well as the information about node category, and
//! parent-children relationship." This crate provides:
//!
//! * [`tokenize`] — the keyword normalization shared by indexing and query
//!   parsing (lowercased alphanumeric runs);
//! * [`DeweyStore`] — a dense, flattened `NodeId → Dewey` store (one big
//!   component vector plus offsets, struct-of-arrays style) with slice-based
//!   comparison/ancestor primitives for the search algorithms;
//! * [`InvertedIndex`] — keyword → postings of matching **element** nodes in
//!   document order (an element matches a token if its label or the text it
//!   directly contains produces that token);
//! * [`LabelIndex`] — label → element nodes in document order;
//! * [`XmlIndex`] — the facade bundling all of the above for one document;
//! * [`sharded`] — label-sharded multi-document postings with a streaming
//!   builder and per-token document directory, the corpus-scale layer
//!   consumed by `extract-corpus`.
//!
//! ```
//! use extract_xml::Document;
//! use extract_index::XmlIndex;
//!
//! let doc = Document::parse_str(
//!     "<store><name>Levis</name><city>Houston</city></store>").unwrap();
//! let index = XmlIndex::build(&doc);
//! assert_eq!(index.postings("levis").len(), 1);   // the <name> element
//! assert_eq!(index.postings("store").len(), 1);   // label match
//! assert!(index.postings("dallas").is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dewey_store;
pub mod inverted;
pub mod labels;
pub mod sharded;
pub mod tokenize;

pub use dewey_store::DeweyStore;
pub use inverted::{InvertedIndex, TokenId};
pub use labels::LabelIndex;
pub use sharded::{DocId, FanIn, Posting, ShardedPostings, ShardedPostingsBuilder};
pub use tokenize::{tokenize, tokens_of};

use extract_xml::{Document, NodeId};

/// All per-document indexes bundled together.
#[derive(Debug)]
pub struct XmlIndex {
    dewey: DeweyStore,
    inverted: InvertedIndex,
    labels: LabelIndex,
}

impl XmlIndex {
    /// Build every index for `doc` in one pass each.
    pub fn build(doc: &Document) -> XmlIndex {
        XmlIndex {
            dewey: DeweyStore::build(doc),
            inverted: InvertedIndex::build(doc),
            labels: LabelIndex::build(doc),
        }
    }

    /// The Dewey store.
    pub fn dewey_store(&self) -> &DeweyStore {
        &self.dewey
    }

    /// The inverted keyword index.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// The label index.
    pub fn label_index(&self) -> &LabelIndex {
        &self.labels
    }

    /// Postings (matching element nodes, document order) for a normalized
    /// token. Returns an empty slice for unknown tokens.
    pub fn postings(&self, token: &str) -> &[NodeId] {
        self.inverted.postings(token)
    }

    /// Resolve a normalized token to its interned id (see
    /// [`InvertedIndex::token_id`]); later lookups through
    /// [`XmlIndex::postings_by_id`] skip string hashing entirely.
    pub fn token_id(&self, token: &str) -> Option<TokenId> {
        self.inverted.token_id(token)
    }

    /// Postings for an interned token id.
    pub fn postings_by_id(&self, id: TokenId) -> &[NodeId] {
        self.inverted.postings_by_id(id)
    }

    /// Dewey components of a node.
    pub fn dewey(&self, node: NodeId) -> &[u32] {
        self.dewey.components(node)
    }

    /// Estimated heap footprint in bytes (reported by the indexing
    /// experiment, E10).
    pub fn memory_footprint(&self) -> usize {
        self.dewey.memory_footprint()
            + self.inverted.memory_footprint()
            + self.labels.memory_footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_builds_all_indexes() {
        let doc = Document::parse_str(
            "<retailer><name>Brook Brothers</name><store><city>Houston</city></store></retailer>",
        )
        .unwrap();
        let idx = XmlIndex::build(&doc);
        assert_eq!(idx.postings("houston").len(), 1);
        assert_eq!(idx.postings("brook").len(), 1);
        assert_eq!(idx.postings("retailer").len(), 1);
        assert!(idx.memory_footprint() > 0);
        let store = doc.first_element_with_label("store").unwrap();
        assert_eq!(idx.dewey(store), &[1]);
    }
}
