//! Keyword normalization shared by the index builder and the query parser.
//!
//! A *token* is a maximal run of alphanumeric characters, lowercased. This
//! is the usual bag-of-words model for XML keyword search: "Brook Brothers"
//! yields `brook` and `brothers`; the label `open_auction` yields `open`
//! and `auction`.

/// Iterate over the normalized tokens of `text` without allocating a vector.
pub fn tokens_of(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
}

/// Collect the normalized tokens of `text`.
pub fn tokenize(text: &str) -> Vec<String> {
    tokens_of(text).collect()
}

/// True if any token of `text` equals the (already normalized) `token`.
pub fn contains_token(text: &str, token: &str) -> bool {
    tokens_of(text).any(|t| t == token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics() {
        assert_eq!(tokenize("Brook Brothers"), vec!["brook", "brothers"]);
        assert_eq!(tokenize("open_auction-1"), vec!["open", "auction", "1"]);
        assert_eq!(tokenize("  Texas,apparel;retailer "), vec!["texas", "apparel", "retailer"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("HOUSTON"), vec!["houston"]);
        assert_eq!(tokenize("ESprit"), vec!["esprit"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ///").is_empty());
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(tokenize("IIS-0740129"), vec!["iis", "0740129"]);
    }

    #[test]
    fn contains_token_is_exact_on_tokens() {
        assert!(contains_token("Brook Brothers", "brook"));
        assert!(!contains_token("Brookline", "brook"), "no substring matching");
        assert!(contains_token("category: outwear", "outwear"));
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }
}
