//! Label-sharded, multi-document postings — the corpus-scale index layer.
//!
//! A single [`crate::InvertedIndex`] serves one document. At collection
//! scale (the paper's DBLP-sized evaluation, 10^7+ nodes across many
//! documents) a query must first decide *which documents* to run SLCA and
//! snippet generation on; doing that by scanning one flat corpus-wide
//! posting list per keyword touches every posting of every keyword. This
//! module provides [`ShardedPostings`], the structure the `extract-corpus`
//! crate builds and queries:
//!
//! * **Documents** are identified by dense [`DocId`]s in insertion order;
//!   each posting is a `(DocId, NodeId)` pair ([`Posting`]).
//! * **Streaming build**: [`ShardedPostingsBuilder::add_document`] folds
//!   one document at a time into per-shard buffers — there is no
//!   "collect all documents, then index" phase, so corpus ingestion is
//!   one pass and peak memory is the postings themselves.
//! * **Label sharding**: postings are partitioned by the *label of the
//!   posting element* (the first [`MAX_LABEL_SHARDS`] distinct labels get
//!   their own shard; the long tail shares a catch-all shard). Every token
//!   carries a bitmap of the shards it occurs in, so per-document posting
//!   extraction probes only the shards a keyword actually hits.
//! * **Doc directory**: per token, the sorted list of documents containing
//!   it. Candidate generation ([`ShardedPostings::candidate_docs`])
//!   intersects directories rarest-keyword-first instead of scanning
//!   postings, and [`FanIn`] counts exactly how many index entries each
//!   strategy touched — the number the corpus benchmark reports.
//!
//! The per-token, per-document posting slices reproduced by
//! [`ShardedPostings::postings_in_doc`] are **identical** to what a
//! standalone per-document [`crate::InvertedIndex`] build produces (pinned
//! by the equivalence proptests in `extract-corpus`).

use std::collections::HashMap;

use extract_xml::{Document, NodeId, SymbolTable};

use crate::inverted::TokenId;
use crate::tokenize::tokens_of;

/// A document's identity within one corpus: a dense *slot* (assigned in
/// insertion order) plus a *generation* that advances each time the slot
/// is reused by a live corpus.
///
/// The generation is the classic generational-arena ABA fix: deleting a
/// document frees its slot for reuse, and the replacement document gets
/// the same slot with `generation + 1`. A stale `DocId` retained by a
/// cache or an in-flight query therefore never aliases the new occupant —
/// lookups compare the full `(slot, generation)` pair. Static corpora
/// built once via [`ShardedPostingsBuilder::add_document`] only ever see
/// generation `0`, so [`DocId::from_index`] round-trips exactly as it did
/// when `DocId` was a bare index.
///
/// Ordering is lexicographic `(slot, generation)`, so postings sorted by
/// `DocId` keep slots contiguous and generations ordered within a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId {
    slot: u32,
    generation: u32,
}

impl DocId {
    /// The dense slot of this document in its corpus.
    pub fn index(self) -> usize {
        self.slot as usize
    }

    /// The slot's reuse generation (`0` for every document of a corpus
    /// that was built once and never mutated).
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Reconstruct a generation-`0` id from a raw slot index. The caller
    /// must ensure it came from [`DocId::index`] on the same corpus.
    ///
    /// # Panics
    ///
    /// On an index past `u32::MAX` — a silent `as u32` would alias
    /// document 2³² back onto document 0 and attribute its postings to
    /// the wrong document.
    pub fn from_index(index: usize) -> DocId {
        DocId::from_parts(index, 0)
    }

    /// Reconstruct from an explicit slot and generation.
    ///
    /// # Panics
    ///
    /// On a slot index past `u32::MAX`, like [`DocId::from_index`].
    pub fn from_parts(index: usize, generation: u32) -> DocId {
        DocId {
            slot: u32::try_from(index).expect("document index exceeds u32::MAX"),
            generation,
        }
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.generation == 0 {
            write!(f, "d{}", self.slot)
        } else {
            write!(f, "d{}g{}", self.slot, self.generation)
        }
    }
}

/// One corpus posting: a matching element in a specific document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// The matching element within that document.
    pub node: NodeId,
}

/// Maximum number of dedicated label shards. Labels beyond the first
/// `MAX_LABEL_SHARDS` distinct ones share the catch-all shard `0`, so a
/// token's shard membership always fits one `u64` bitmap.
pub const MAX_LABEL_SHARDS: usize = 63;

/// Work counters for candidate generation and posting extraction: how many
/// index entries (arena postings + directory entries) a query touched, and
/// how the shard bitmap paid off. This is the "SLCA candidate fan-in"
/// metric the corpus benchmark compares sharded vs unsharded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanIn {
    /// Posting-arena entries read.
    pub postings_touched: u64,
    /// Doc-directory entries read (including binary-search probes).
    pub directory_touched: u64,
    /// Shard ranges binary-searched for postings.
    pub shards_probed: u64,
    /// Shard probes avoided by the per-token shard bitmap.
    pub shards_skipped: u64,
}

impl FanIn {
    /// Total index entries touched — the headline fan-in number.
    pub fn total(&self) -> u64 {
        self.postings_touched + self.directory_touched
    }
}

/// One label shard: its slice of the corpus postings, token-major.
#[derive(Debug, Default)]
struct Shard {
    /// `(token, start)` pairs sorted by token; a token's postings live in
    /// `arena[start .. next_start]`. A final sentinel `(u32::MAX, len)`
    /// closes the last range.
    token_starts: Vec<(u32, u32)>,
    /// Postings sorted by `(token, doc, node)`.
    arena: Vec<Posting>,
}

impl Shard {
    /// The posting range of `token` in this shard (empty if absent).
    fn range(&self, token: u32) -> &[Posting] {
        match self.token_starts.binary_search_by_key(&token, |&(t, _)| t) {
            Ok(i) => {
                let start = self.token_starts[i].1 as usize;
                let end = self.token_starts[i + 1].1 as usize;
                &self.arena[start..end]
            }
            Err(_) => &[],
        }
    }
}

/// Label-sharded corpus postings with a per-token document directory. Built
/// by [`ShardedPostingsBuilder`]; immutable afterwards.
#[derive(Debug)]
pub struct ShardedPostings {
    /// Corpus-wide token interner.
    tokens: SymbolTable,
    /// Per token: bitmap of the shards it occurs in.
    token_shards: Vec<u64>,
    /// Per token: `doc_dir_starts[t]..doc_dir_starts[t+1]` indexes
    /// `doc_dir` — the sorted distinct documents containing the token.
    doc_dir_starts: Vec<u32>,
    doc_dir: Vec<DocId>,
    shards: Vec<Shard>,
    /// Shard-key labels in shard order (`shard_labels[0]` is the catch-all
    /// and has no single label).
    shard_labels: Vec<String>,
    doc_count: u32,
    total_postings: usize,
}

impl ShardedPostings {
    /// The id of `token` if it occurs anywhere in the corpus. `token` must
    /// already be normalized (see [`crate::tokenize`]).
    pub fn token_id(&self, token: &str) -> Option<TokenId> {
        self.tokens.get(token).map(|s| TokenId::from_index(s.index()))
    }

    /// Number of distinct tokens in the corpus.
    pub fn vocabulary_size(&self) -> usize {
        self.tokens.len()
    }

    /// Number of documents folded in.
    pub fn doc_count(&self) -> usize {
        self.doc_count as usize
    }

    /// Total `(token, document, element)` postings across all shards.
    pub fn total_postings(&self) -> usize {
        self.total_postings
    }

    /// Number of shards (dedicated label shards + the catch-all).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard-key label of shard `i` (`None` for the catch-all shard 0).
    pub fn shard_label(&self, i: usize) -> Option<&str> {
        if i == 0 {
            None
        } else {
            self.shard_labels.get(i).map(|s| s.as_str())
        }
    }

    /// Number of distinct documents containing `token`.
    pub fn doc_frequency(&self, token: TokenId) -> usize {
        self.docs_for(token).len()
    }

    /// Sorted distinct documents containing `token` (empty for foreign
    /// ids).
    pub fn docs_for(&self, token: TokenId) -> &[DocId] {
        let t = token.index();
        if t + 1 >= self.doc_dir_starts.len() {
            return &[];
        }
        &self.doc_dir[self.doc_dir_starts[t] as usize..self.doc_dir_starts[t + 1] as usize]
    }

    /// Total corpus postings of `token` across all shards (what a flat
    /// unsharded arena would hand a scan).
    pub fn corpus_frequency(&self, token: TokenId) -> usize {
        let t = token.index();
        let Some(&bitmap) = self.token_shards.get(t) else {
            return 0;
        };
        let mut n = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if bitmap & (1u64 << i) != 0 {
                n += shard.range(t as u32).len();
            }
        }
        n
    }

    /// The documents containing **every** token, via the sharded path:
    /// intersect doc directories rarest-keyword-first. `out` is cleared and
    /// receives the candidates in ascending [`DocId`] order; `fanin`
    /// accumulates the directory entries touched.
    pub fn candidate_docs(&self, tokens: &[TokenId], out: &mut Vec<DocId>, fanin: &mut FanIn) {
        out.clear();
        if tokens.is_empty() {
            return;
        }
        let mut order: Vec<&TokenId> = tokens.iter().collect();
        order.sort_by_key(|t| self.doc_frequency(**t));
        let rarest = self.docs_for(*order[0]);
        fanin.directory_touched += rarest.len() as u64;
        if rarest.is_empty() {
            return;
        }
        out.extend_from_slice(rarest);
        for &&t in &order[1..] {
            let docs = self.docs_for(t);
            if docs.is_empty() {
                out.clear();
                return;
            }
            // One binary-search probe per surviving candidate.
            fanin.directory_touched +=
                (out.len() as u64).saturating_mul(usize::BITS.saturating_sub(docs.len().leading_zeros()) as u64);
            out.retain(|d| docs.binary_search(d).is_ok());
            if out.is_empty() {
                return;
            }
        }
    }

    /// The documents containing every token, the way a **flat unsharded
    /// arena** has to compute them: scan every posting of every token and
    /// intersect the document sets. Produces the same candidates as
    /// [`ShardedPostings::candidate_docs`] (pinned by tests); exists so the
    /// corpus benchmark can measure the fan-in it avoids.
    pub fn candidate_docs_by_scan(
        &self,
        tokens: &[TokenId],
        out: &mut Vec<DocId>,
        fanin: &mut FanIn,
    ) {
        out.clear();
        if tokens.is_empty() {
            return;
        }
        let mut acc: Vec<DocId> = Vec::new();
        for (i, &t) in tokens.iter().enumerate() {
            let mut docs: Vec<DocId> = Vec::new();
            let idx = t.index();
            let Some(&bitmap) = self.token_shards.get(idx) else {
                out.clear();
                return;
            };
            // A flat arena would hold one contiguous list; scanning all
            // shard ranges touches the same entries.
            for (s, shard) in self.shards.iter().enumerate() {
                if bitmap & (1u64 << s) == 0 {
                    continue;
                }
                let range = shard.range(idx as u32);
                fanin.postings_touched += range.len() as u64;
                for p in range {
                    if docs.last() != Some(&p.doc) {
                        docs.push(p.doc);
                    }
                }
            }
            docs.sort_unstable();
            docs.dedup();
            if i == 0 {
                acc = docs;
            } else {
                acc.retain(|d| docs.binary_search(d).is_ok());
            }
            if acc.is_empty() {
                return;
            }
        }
        out.extend_from_slice(&acc);
    }

    /// The sorted element postings of `token` inside `doc` — byte-identical
    /// to what a per-document [`crate::InvertedIndex`] returns for the same
    /// token. Probes only the shards whose bitmap contains the token;
    /// `out` is cleared first.
    pub fn postings_in_doc(
        &self,
        token: TokenId,
        doc: DocId,
        out: &mut Vec<NodeId>,
        fanin: &mut FanIn,
    ) {
        out.clear();
        let t = token.index();
        let Some(&bitmap) = self.token_shards.get(t) else {
            return;
        };
        for (i, shard) in self.shards.iter().enumerate() {
            if bitmap & (1u64 << i) == 0 {
                fanin.shards_skipped += 1;
                continue;
            }
            fanin.shards_probed += 1;
            let range = shard.range(t as u32);
            let lo = range.partition_point(|p| p.doc < doc);
            let hi = range.partition_point(|p| p.doc <= doc);
            fanin.postings_touched += (hi - lo) as u64;
            out.extend(range[lo..hi].iter().map(|p| p.node));
        }
        // Shards hold disjoint node sets but interleave in document order.
        out.sort_unstable();
    }

    /// Estimated heap footprint in bytes (allocated capacity of the arenas
    /// and tables, plus the token interner at the same per-token estimate
    /// as [`crate::inverted::TOKEN_TABLE_OVERHEAD`]).
    pub fn memory_footprint(&self) -> usize {
        let shards: usize = self
            .shards
            .iter()
            .map(|s| {
                s.arena.capacity() * std::mem::size_of::<Posting>()
                    + s.token_starts.capacity() * std::mem::size_of::<(u32, u32)>()
            })
            .sum();
        let dir = self.doc_dir.capacity() * std::mem::size_of::<DocId>()
            + self.doc_dir_starts.capacity() * std::mem::size_of::<u32>();
        let bitmaps = self.token_shards.capacity() * std::mem::size_of::<u64>();
        let tokens: usize = self
            .tokens
            .iter()
            .map(|(_, s)| 2 * s.len() + crate::inverted::TOKEN_TABLE_OVERHEAD)
            .sum();
        shards + dir + bitmaps + tokens
    }
}

/// Streaming builder for [`ShardedPostings`]: documents are folded in one
/// at a time and only their postings are retained.
#[derive(Debug)]
pub struct ShardedPostingsBuilder {
    tokens: SymbolTable,
    token_shards: Vec<u64>,
    /// Label string → shard index. Filled first-come-first-served up to
    /// `max_label_shards`; later labels map to the catch-all shard 0.
    shard_of_label: HashMap<String, usize>,
    shard_labels: Vec<String>,
    max_label_shards: usize,
    /// Per shard: unsorted-by-token `(token, posting)` pairs, in `(doc,
    /// node)` arrival order (counting-sorted by token at finish).
    pending: Vec<Vec<(u32, Posting)>>,
    /// `(token, doc)` pairs (deduplicated per document) for the directory.
    dir_pairs: Vec<(u32, DocId)>,
    doc_count: u32,
    /// Highest id folded so far — [`ShardedPostingsBuilder::add_document_as`]
    /// enforces strictly increasing ids so the directory counting sort
    /// stays valid without a per-token re-sort.
    last_doc: Option<DocId>,
}

impl Default for ShardedPostingsBuilder {
    fn default() -> Self {
        ShardedPostingsBuilder::new()
    }
}

impl ShardedPostingsBuilder {
    /// A builder with the default shard budget ([`MAX_LABEL_SHARDS`]).
    pub fn new() -> ShardedPostingsBuilder {
        ShardedPostingsBuilder::with_label_shards(MAX_LABEL_SHARDS)
    }

    /// A builder with at most `max_label_shards` dedicated label shards
    /// (clamped to [`MAX_LABEL_SHARDS`]; `0` puts everything in the
    /// catch-all shard — the "unsharded arena" baseline).
    pub fn with_label_shards(max_label_shards: usize) -> ShardedPostingsBuilder {
        let max_label_shards = max_label_shards.min(MAX_LABEL_SHARDS);
        ShardedPostingsBuilder {
            tokens: SymbolTable::new(),
            token_shards: Vec::new(),
            shard_of_label: HashMap::new(),
            shard_labels: vec![String::new()], // catch-all
            max_label_shards,
            pending: vec![Vec::new()], // catch-all
            dir_pairs: Vec::new(),
            doc_count: 0,
            last_doc: None,
        }
    }

    /// Documents folded in so far.
    pub fn doc_count(&self) -> usize {
        self.doc_count as usize
    }

    /// Tokenize `doc` and fold its postings into the corpus, returning the
    /// [`DocId`] it was assigned (the next dense slot, generation `0`).
    /// Matching semantics are exactly those of
    /// [`crate::InvertedIndex::build`]: an element posts a token if its
    /// label or directly-contained text yields it, once per element.
    pub fn add_document(&mut self, doc: &Document) -> DocId {
        let id = DocId::from_index(self.doc_count as usize);
        self.fold(doc, id);
        id
    }

    /// Fold `doc` in under a caller-chosen [`DocId`] — the rebuild path
    /// for live corpora, where surviving documents keep their slot and
    /// generation across a reindex instead of being renumbered densely.
    ///
    /// # Panics
    ///
    /// If `id` is not strictly greater than every previously folded id:
    /// the per-token document directory is counting-sorted assuming ids
    /// arrive in ascending order, and a duplicate id would merge two
    /// documents' postings.
    pub fn add_document_as(&mut self, doc: &Document, id: DocId) {
        assert!(
            self.last_doc.is_none_or(|last| last < id),
            "documents must be folded in strictly increasing DocId order"
        );
        self.fold(doc, id);
    }

    fn fold(&mut self, doc: &Document, id: DocId) {
        // Loud overflow: wrapping past u32::MAX would hand out DocId 0
        // again and merge two documents' postings.
        self.doc_count = self.doc_count.checked_add(1).expect("corpus exceeds u32::MAX documents");
        self.last_doc = Some(id);
        let mut seen: Vec<u32> = Vec::with_capacity(8);
        let mut doc_tokens: Vec<u32> = Vec::new();
        for node in doc.all_nodes() {
            let n = doc.node(node);
            if !n.is_element() {
                continue;
            }
            let label = doc.resolve(n.label());
            let shard = self.shard_for(label);
            seen.clear();
            for tok in tokens_of(label) {
                seen.push(self.intern(&tok, shard));
            }
            for &child in n.children() {
                if let Some(text) = doc.node(child).text() {
                    for tok in tokens_of(text) {
                        seen.push(self.intern(&tok, shard));
                    }
                }
            }
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                self.pending[shard].push((t, Posting { doc: id, node }));
                doc_tokens.push(t);
            }
        }
        doc_tokens.sort_unstable();
        doc_tokens.dedup();
        for t in doc_tokens {
            self.dir_pairs.push((t, id));
        }
    }

    fn shard_for(&mut self, label: &str) -> usize {
        if let Some(&s) = self.shard_of_label.get(label) {
            return s;
        }
        let s = if self.shard_of_label.len() < self.max_label_shards {
            self.pending.push(Vec::new());
            self.shard_labels.push(label.to_string());
            self.pending.len() - 1
        } else {
            0 // catch-all
        };
        self.shard_of_label.insert(label.to_string(), s);
        s
    }

    fn intern(&mut self, token: &str, shard: usize) -> u32 {
        let sym = self.tokens.intern(token);
        let t = sym.index();
        if t == self.token_shards.len() {
            self.token_shards.push(0);
        }
        self.token_shards[t] |= 1u64 << shard;
        u32::try_from(t).expect("vocabulary exceeds u32::MAX tokens")
    }

    /// Finalize into an immutable [`ShardedPostings`]. Each shard is
    /// counting-sorted by token (stable, so `(doc, node)` arrival order is
    /// preserved within a token — which *is* sorted `(doc, node)` order).
    pub fn finish(mut self) -> ShardedPostings {
        let vocab = self.tokens.len();
        let shards: Vec<Shard> = self
            .pending
            .drain(..)
            .map(|pairs| {
                // Count per token, prefix-sum, place.
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for &(t, _) in &pairs {
                    *counts.entry(t).or_insert(0) += 1;
                }
                let mut present: Vec<u32> = counts.keys().copied().collect();
                present.sort_unstable();
                let mut token_starts: Vec<(u32, u32)> = Vec::with_capacity(present.len() + 1);
                let mut acc = 0u32;
                for &t in &present {
                    token_starts.push((t, acc));
                    acc += counts[&t];
                }
                token_starts.push((u32::MAX, acc));
                let mut cursor: HashMap<u32, u32> =
                    token_starts.iter().take(present.len()).copied().collect();
                let mut arena =
                    vec![Posting { doc: DocId::from_index(0), node: NodeId::from_index(0) }; pairs.len()];
                for (t, p) in pairs {
                    let c = cursor.get_mut(&t).expect("counted token");
                    arena[*c as usize] = p;
                    *c += 1;
                }
                Shard { token_starts, arena }
            })
            .collect();

        // Directory: counting-sort the (token, doc) pairs by token. Pairs
        // arrive doc-major with per-doc dedup, so each token's doc run is
        // already sorted and distinct.
        let mut starts = vec![0u32; vocab + 1];
        for &(t, _) in &self.dir_pairs {
            starts[t as usize + 1] += 1;
        }
        for i in 1..=vocab {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut doc_dir = vec![DocId::from_index(0); self.dir_pairs.len()];
        for &(t, d) in &self.dir_pairs {
            doc_dir[cursor[t as usize] as usize] = d;
            cursor[t as usize] += 1;
        }

        let total_postings = shards.iter().map(|s| s.arena.len()).sum();
        ShardedPostings {
            tokens: self.tokens,
            token_shards: self.token_shards,
            doc_dir_starts: starts,
            doc_dir,
            shards,
            shard_labels: self.shard_labels,
            doc_count: self.doc_count,
            total_postings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InvertedIndex;

    #[test]
    fn doc_id_roundtrips_at_the_u32_boundary() {
        assert_eq!(DocId::from_index(u32::MAX as usize).index(), u32::MAX as usize);
    }

    // Regression: `from_index` used a bare `as u32`, so index 2^32
    // silently aliased back onto DocId(0), merging two documents'
    // postings. It must panic instead.
    #[test]
    #[should_panic(expected = "document index exceeds u32::MAX")]
    fn doc_id_from_index_rejects_truncating_indices() {
        let _ = DocId::from_index(u32::MAX as usize + 1);
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::parse_str(
                "<retailer><name>Brook Brothers</name>\
                 <store><city>Houston</city></store></retailer>",
            )
            .unwrap(),
            Document::parse_str(
                "<retailer><name>Gap</name><store><city>Austin</city></store>\
                 <store><city>Houston</city></store></retailer>",
            )
            .unwrap(),
            Document::parse_str("<dblp><paper><title>houston search</title></paper></dblp>")
                .unwrap(),
        ]
    }

    fn build(max_shards: usize) -> (Vec<Document>, ShardedPostings) {
        let ds = docs();
        let mut b = ShardedPostingsBuilder::with_label_shards(max_shards);
        for d in &ds {
            b.add_document(d);
        }
        (ds, b.finish())
    }

    #[test]
    fn matches_per_document_inverted_indexes() {
        for shards in [0, 2, MAX_LABEL_SHARDS] {
            let (ds, sp) = build(shards);
            let mut out = Vec::new();
            let mut fanin = FanIn::default();
            for (i, d) in ds.iter().enumerate() {
                let solo = InvertedIndex::build(d);
                for (token, expected) in solo.iter() {
                    let id = sp.token_id(token).expect("corpus has every doc token");
                    sp.postings_in_doc(id, DocId::from_index(i), &mut out, &mut fanin);
                    assert_eq!(out, expected, "token {token} doc {i} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn doc_directory_and_frequencies() {
        let (_, sp) = build(MAX_LABEL_SHARDS);
        let houston = sp.token_id("houston").unwrap();
        assert_eq!(sp.doc_frequency(houston), 3);
        assert_eq!(
            sp.docs_for(houston),
            &[DocId::from_index(0), DocId::from_index(1), DocId::from_index(2)],
            "sorted distinct docs"
        );
        let gap = sp.token_id("gap").unwrap();
        assert_eq!(sp.docs_for(gap), &[DocId::from_index(1)]);
        assert!(sp.token_id("dallas").is_none());
        assert_eq!(sp.doc_count(), 3);
        assert!(sp.total_postings() > 0);
        assert!(sp.memory_footprint() > 0);
    }

    #[test]
    fn candidate_docs_sharded_equals_scan() {
        let (_, sp) = build(MAX_LABEL_SHARDS);
        let queries: Vec<Vec<&str>> = vec![
            vec!["houston"],
            vec!["retailer", "houston"],
            vec!["gap", "houston"],
            vec!["houston", "search"],
            vec!["retailer", "title"],
        ];
        for q in queries {
            let ids: Vec<TokenId> = q.iter().filter_map(|k| sp.token_id(k)).collect();
            assert_eq!(ids.len(), q.len());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let mut fa = FanIn::default();
            let mut fb = FanIn::default();
            sp.candidate_docs(&ids, &mut a, &mut fa);
            sp.candidate_docs_by_scan(&ids, &mut b, &mut fb);
            assert_eq!(a, b, "query {q:?}");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        }
    }

    #[test]
    fn sharded_candidate_fanin_is_lower_than_scan() {
        let (_, sp) = build(MAX_LABEL_SHARDS);
        let ids: Vec<TokenId> =
            ["gap", "houston"].iter().map(|k| sp.token_id(k).unwrap()).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut sharded = FanIn::default();
        let mut scan = FanIn::default();
        sp.candidate_docs(&ids, &mut a, &mut sharded);
        sp.candidate_docs_by_scan(&ids, &mut b, &mut scan);
        assert!(
            sharded.total() < scan.total(),
            "directory path must touch fewer entries: {sharded:?} vs {scan:?}"
        );
    }

    #[test]
    fn shard_bitmap_skips_foreign_shards() {
        let (_, sp) = build(MAX_LABEL_SHARDS);
        // "gap" only occurs under <name>, so probing it touches one shard.
        let gap = sp.token_id("gap").unwrap();
        let mut out = Vec::new();
        let mut fanin = FanIn::default();
        sp.postings_in_doc(gap, DocId::from_index(1), &mut out, &mut fanin);
        assert_eq!(out.len(), 1);
        assert_eq!(fanin.shards_probed, 1);
        assert!(fanin.shards_skipped > 0, "{fanin:?}");
    }

    #[test]
    fn catch_all_absorbs_label_overflow() {
        let (_, sp) = build(2);
        assert_eq!(sp.shard_count(), 3, "catch-all + 2 label shards");
        assert_eq!(sp.shard_label(0), None);
        assert_eq!(sp.shard_label(1), Some("retailer"));
        assert_eq!(sp.shard_label(2), Some("name"));
    }

    #[test]
    fn unknown_and_empty_queries() {
        let (_, sp) = build(MAX_LABEL_SHARDS);
        let mut out = vec![DocId::from_index(9)];
        let mut fanin = FanIn::default();
        sp.candidate_docs(&[], &mut out, &mut fanin);
        assert!(out.is_empty());
        let foreign = TokenId::from_index(100_000);
        assert_eq!(sp.doc_frequency(foreign), 0);
        assert_eq!(sp.corpus_frequency(foreign), 0);
        let mut nodes = vec![NodeId::from_index(3)];
        sp.postings_in_doc(foreign, DocId::from_index(0), &mut nodes, &mut fanin);
        assert!(nodes.is_empty());
    }

    #[test]
    fn empty_corpus_is_queryable() {
        let sp = ShardedPostingsBuilder::new().finish();
        assert_eq!(sp.doc_count(), 0);
        assert_eq!(sp.total_postings(), 0);
        assert!(sp.token_id("anything").is_none());
    }

    #[test]
    fn generations_distinguish_slot_reuse() {
        let old = DocId::from_parts(3, 0);
        let new = DocId::from_parts(3, 1);
        assert_ne!(old, new, "same slot, different generation");
        assert_eq!(old.index(), new.index());
        assert_eq!(new.generation(), 1);
        assert!(old < new, "generations order within a slot");
        assert!(new < DocId::from_parts(4, 0), "slots dominate ordering");
        assert_eq!(DocId::from_index(3), old, "from_index is generation 0");
        assert_eq!(old.to_string(), "d3");
        assert_eq!(new.to_string(), "d3g1");
    }

    // The ABA scenario at the postings layer: a rebuilt corpus holds the
    // slot's new generation, so a stale id from before the delete finds
    // no postings instead of the replacement document's.
    #[test]
    fn stale_generation_finds_no_postings() {
        let ds = docs();
        let mut b = ShardedPostingsBuilder::new();
        b.add_document_as(&ds[0], DocId::from_parts(0, 0));
        b.add_document_as(&ds[1], DocId::from_parts(1, 2));
        let sp = b.finish();
        let houston = sp.token_id("houston").unwrap();
        assert_eq!(
            sp.docs_for(houston),
            &[DocId::from_parts(0, 0), DocId::from_parts(1, 2)]
        );
        let mut out = Vec::new();
        let mut fanin = FanIn::default();
        sp.postings_in_doc(houston, DocId::from_parts(1, 1), &mut out, &mut fanin);
        assert!(out.is_empty(), "stale generation must not alias the new occupant");
        sp.postings_in_doc(houston, DocId::from_parts(1, 2), &mut out, &mut fanin);
        assert_eq!(out.len(), 1, "the live generation still resolves");
    }

    #[test]
    #[should_panic(expected = "strictly increasing DocId order")]
    fn out_of_order_explicit_ids_panic() {
        let ds = docs();
        let mut b = ShardedPostingsBuilder::new();
        b.add_document_as(&ds[0], DocId::from_parts(1, 0));
        b.add_document_as(&ds[1], DocId::from_parts(1, 0));
    }

    #[test]
    fn corpus_frequency_sums_shards() {
        let (ds, sp) = build(MAX_LABEL_SHARDS);
        let houston = sp.token_id("houston").unwrap();
        let per_doc: usize = ds
            .iter()
            .map(|d| InvertedIndex::build(d).postings("houston").len())
            .sum();
        assert_eq!(sp.corpus_frequency(houston), per_doc);
    }
}
