//! Label → elements index ("parent-children relationship and node category"
//! support structure of the paper's Index Builder).

use extract_xml::{Document, NodeId, Symbol};

/// For each interned label, the element nodes carrying it (document order).
#[derive(Debug, Default)]
pub struct LabelIndex {
    /// Indexed by `Symbol::index()`.
    by_label: Vec<Vec<NodeId>>,
}

impl LabelIndex {
    /// Build the index over all elements of `doc`.
    pub fn build(doc: &Document) -> LabelIndex {
        let mut by_label: Vec<Vec<NodeId>> = vec![Vec::new(); doc.symbols().len()];
        for node in doc.all_nodes() {
            let n = doc.node(node);
            if n.is_element() {
                by_label[n.label().index()].push(node);
            }
        }
        LabelIndex { by_label }
    }

    /// Elements with label `sym`, in document order.
    pub fn nodes(&self, sym: Symbol) -> &[NodeId] {
        self.by_label.get(sym.index()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Elements with the given label string.
    pub fn nodes_by_str(&self, doc: &Document, label: &str) -> &[NodeId] {
        match doc.symbols().get(label) {
            Some(sym) => self.nodes(sym),
            None => &[],
        }
    }

    /// Number of elements with label `sym`.
    pub fn count(&self, sym: Symbol) -> usize {
        self.nodes(sym).len()
    }

    /// Estimated heap footprint in bytes, counting allocated capacity of
    /// the outer table and every per-label list.
    pub fn memory_footprint(&self) -> usize {
        self.by_label.capacity() * std::mem::size_of::<Vec<NodeId>>()
            + self
                .by_label
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_labels_in_document_order() {
        let d = Document::parse_str("<a><b/><c/><b/></a>").unwrap();
        let idx = LabelIndex::build(&d);
        let bs = idx.nodes_by_str(&d, "b");
        assert_eq!(bs.len(), 2);
        assert!(bs[0] < bs[1]);
        assert_eq!(idx.nodes_by_str(&d, "c").len(), 1);
    }

    #[test]
    fn unknown_labels_are_empty() {
        let d = Document::parse_str("<a/>").unwrap();
        let idx = LabelIndex::build(&d);
        assert!(idx.nodes_by_str(&d, "zzz").is_empty());
    }

    #[test]
    fn text_symbol_has_no_element_entries() {
        let d = Document::parse_str("<a>hello</a>").unwrap();
        let idx = LabelIndex::build(&d);
        assert!(idx.nodes_by_str(&d, "#text").is_empty());
    }

    #[test]
    fn counts_match_elements_with_label() {
        let d = Document::parse_str("<r><s><s/></s><s/></r>").unwrap();
        let idx = LabelIndex::build(&d);
        assert_eq!(idx.nodes_by_str(&d, "s").len(), d.elements_with_label("s").len());
    }
}
