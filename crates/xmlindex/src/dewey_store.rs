//! A dense `NodeId → Dewey` store.
//!
//! [`extract_xml::Document::dewey`] recomputes a label by walking to the
//! root (O(depth) per call). The search algorithms compare Dewey labels
//! millions of times, so this store materializes all labels once in a
//! struct-of-arrays layout: one flat component vector plus an offset table —
//! no per-node heap allocation, cache-friendly sequential build.

use extract_xml::{Dewey, Document, NodeId};

/// Flattened Dewey labels for every node of one document.
#[derive(Debug, Clone)]
pub struct DeweyStore {
    /// `offsets[n]..offsets[n+1]` indexes `components` for node `n`.
    offsets: Vec<u32>,
    components: Vec<u32>,
}

impl DeweyStore {
    /// Materialize labels for every node (elements **and** text nodes) of
    /// `doc` in one preorder pass.
    pub fn build(doc: &Document) -> DeweyStore {
        let n = doc.len();
        let mut offsets = vec![0u32; n + 1];
        // First pass: depths give exact component counts.
        let mut depths = vec![0u32; n];
        for node in doc.all_nodes() {
            if let Some(p) = doc.parent(node) {
                depths[node.index()] = depths[p.index()] + 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] = offsets[i] + depths[i];
        }
        let mut components = vec![0u32; offsets[n] as usize];
        // Second pass: parent prefix + own rank. Parents precede children in
        // ID order, so their components are already final.
        for node in doc.all_nodes() {
            let Some(p) = doc.parent(node) else { continue };
            let (ps, pe) = (offsets[p.index()] as usize, offsets[p.index() + 1] as usize);
            let (s, e) = (offsets[node.index()] as usize, offsets[node.index() + 1] as usize);
            let plen = pe - ps;
            components.copy_within(ps..pe, s);
            components[s + plen] = doc.node(node).rank();
            debug_assert_eq!(e - s, plen + 1);
        }
        DeweyStore { offsets, components }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Dewey components of `node` as a slice.
    pub fn components(&self, node: NodeId) -> &[u32] {
        let s = self.offsets[node.index()] as usize;
        let e = self.offsets[node.index() + 1] as usize;
        &self.components[s..e]
    }

    /// The depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.components(node).len()
    }

    /// An owned [`Dewey`] for `node`.
    pub fn dewey(&self, node: NodeId) -> Dewey {
        Dewey::from_components(self.components(node).to_vec())
    }

    /// Document-order comparison via Dewey components.
    pub fn compare(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.components(a).cmp(self.components(b))
    }

    /// True iff `a` is an ancestor-or-self of `b` (prefix test on slices).
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        let pa = self.components(a);
        let pb = self.components(b);
        pb.len() >= pa.len() && &pb[..pa.len()] == pa
    }

    /// Length of the longest common prefix of the labels of `a` and `b` —
    /// the depth of their LCA.
    pub fn lca_depth(&self, a: NodeId, b: NodeId) -> usize {
        self.components(a)
            .iter()
            .zip(self.components(b).iter())
            .take_while(|(x, y)| x == y)
            .count()
    }

    /// Estimated heap footprint in bytes, counting **allocated capacity**
    /// (not just live length) of both vectors. The build constructs each
    /// with `vec![0; n]`, so capacity equals length and the footprint is
    /// exactly `(nodes + 1 + Σ depth(n)) * 4`.
    pub fn memory_footprint(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.components.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<a><b><c>x</c><c>y</c></b><d><e/></d></a>",
        )
        .unwrap()
    }

    #[test]
    fn matches_document_dewey_for_every_node() {
        let d = doc();
        let store = DeweyStore::build(&d);
        for n in d.all_nodes() {
            assert_eq!(store.components(n), d.dewey(n).components(), "node {n}");
            assert_eq!(store.depth(n), d.depth(n));
        }
    }

    #[test]
    fn compare_agrees_with_id_order() {
        let d = doc();
        let store = DeweyStore::build(&d);
        let nodes: Vec<NodeId> = d.all_nodes().collect();
        for w in nodes.windows(2) {
            assert_eq!(store.compare(w[0], w[1]), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn ancestor_test_agrees_with_document() {
        let d = doc();
        let store = DeweyStore::build(&d);
        for a in d.all_nodes() {
            for b in d.all_nodes() {
                assert_eq!(
                    store.is_ancestor_or_self(a, b),
                    d.is_ancestor_or_self(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn lca_depth_matches_tree_lca() {
        let d = doc();
        let store = DeweyStore::build(&d);
        for a in d.all_nodes() {
            for b in d.all_nodes() {
                let lca = d.lca(a, b);
                assert_eq!(store.lca_depth(a, b), d.depth(lca));
            }
        }
    }

    #[test]
    fn single_node_document() {
        let d = Document::parse_str("<only/>").unwrap();
        let store = DeweyStore::build(&d);
        assert_eq!(store.len(), 1);
        assert!(store.components(d.root()).is_empty());
    }

    #[test]
    fn footprint_is_positive_and_scales() {
        let small = DeweyStore::build(&Document::parse_str("<a/>").unwrap());
        let big = DeweyStore::build(&doc());
        assert!(big.memory_footprint() > small.memory_footprint());
    }

    #[test]
    fn memory_footprint_arithmetic_is_pinned() {
        let d = doc();
        let store = DeweyStore::build(&d);
        // offsets: one u32 per node plus the sentinel; components: one u32
        // per Dewey component, i.e. the sum of all node depths.
        let total_components: usize = d.all_nodes().map(|n| d.depth(n)).sum();
        let expected = (d.len() + 1) * 4 + total_components * 4;
        assert_eq!(store.memory_footprint(), expected);
    }
}
