//! Entity / attribute / connection classification (paper §2.1).
//!
//! Classification is computed **per label path** (context-sensitive: `name`
//! under `retailer` and under `store` are classified independently) and
//! cached densely, so per-node queries are O(1).

use extract_xml::{Document, NodeId, PathId, Schema};

/// The three node categories of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeCategory {
    /// A `*`-node: represents a real-world entity.
    Entity,
    /// A non-`*` node whose content is a text value; together with the
    /// value it represents an attribute of its nearest entity.
    Attribute,
    /// Neither entity nor attribute (structural glue).
    Connection,
}

impl std::fmt::Display for NodeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeCategory::Entity => write!(f, "entity"),
            NodeCategory::Attribute => write!(f, "attribute"),
            NodeCategory::Connection => write!(f, "connection"),
        }
    }
}

/// The classified structural model of one document: the inferred
/// [`Schema`] plus a category per label path.
#[derive(Debug, Clone)]
pub struct EntityModel {
    schema: Schema,
    /// Indexed by `PathId::index()`.
    categories: Vec<NodeCategory>,
}

impl EntityModel {
    /// Analyze `doc`: infer the schema (DTD-aware) and classify every path.
    pub fn analyze(doc: &Document) -> EntityModel {
        let schema = Schema::infer(doc);
        let categories = schema
            .paths()
            .map(|(_, info)| {
                if info.starred {
                    NodeCategory::Entity
                } else if !info.has_element_child && info.has_text_child {
                    NodeCategory::Attribute
                } else {
                    NodeCategory::Connection
                }
            })
            .collect();
        EntityModel { schema, categories }
    }

    /// The underlying structural summary.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Category of a label path.
    pub fn category_of_path(&self, path: PathId) -> NodeCategory {
        self.categories[path.index()]
    }

    /// Category of an element node (for text nodes: the parent's category).
    pub fn category(&self, node: NodeId) -> NodeCategory {
        self.category_of_path(self.schema.path_of(node))
    }

    /// Whether the element node is an entity.
    pub fn is_entity(&self, node: NodeId) -> bool {
        self.category(node) == NodeCategory::Entity
    }

    /// Whether the element node is an attribute.
    pub fn is_attribute(&self, node: NodeId) -> bool {
        self.category(node) == NodeCategory::Attribute
    }

    /// The nearest ancestor-or-self of `node` that is an entity, if any.
    pub fn entity_of(&self, doc: &Document, node: NodeId) -> Option<NodeId> {
        doc.ancestors_or_self(node)
            .find(|&n| doc.node(n).is_element() && self.is_entity(n))
    }

    /// The nearest **strict** ancestor entity of `node`, if any.
    pub fn ancestor_entity_of(&self, doc: &Document, node: NodeId) -> Option<NodeId> {
        doc.ancestors(node).find(|&n| self.is_entity(n))
    }

    /// Entities in the subtree of `root` that have no ancestor entity
    /// strictly inside the subtree — the paper's "highest entities", used
    /// as the default return entity (§2.2). If `root` itself is an entity,
    /// it is the single highest entity.
    pub fn highest_entities(&self, doc: &Document, root: NodeId) -> Vec<NodeId> {
        if doc.node(root).is_element() && self.is_entity(root) {
            return vec![root];
        }
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = doc.element_children(root).collect();
        // Depth-first, but stop descending once an entity is found on a path.
        while let Some(n) = stack.pop() {
            if self.is_entity(n) {
                out.push(n);
            } else {
                stack.extend(doc.element_children(n));
            }
        }
        out.sort_unstable();
        out
    }

    /// All entity nodes in the subtree of `root`, in document order.
    pub fn entities_in(&self, doc: &Document, root: NodeId) -> Vec<NodeId> {
        doc.subtree_elements(root).filter(|&n| self.is_entity(n)).collect()
    }

    /// All attribute nodes in the subtree of `root`, in document order.
    pub fn attributes_in(&self, doc: &Document, root: NodeId) -> Vec<NodeId> {
        doc.subtree_elements(root).filter(|&n| self.is_attribute(n)).collect()
    }

    /// The attribute children of an element (typically of an entity).
    pub fn attribute_children(&self, doc: &Document, node: NodeId) -> Vec<NodeId> {
        doc.element_children(node).filter(|&c| self.is_attribute(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retailer_doc() -> Document {
        // Two stores ⇒ store is a *-node by inference; two clothes under one
        // merchandises ⇒ clothes is a *-node; everything else singleton.
        Document::parse_str(
            "<retailer><name>BB</name><product>apparel</product>\
             <store><name>Galleria</name><city>Houston</city>\
               <merchandises>\
                 <clothes><category>suit</category></clothes>\
                 <clothes><category>outwear</category></clothes>\
               </merchandises>\
             </store>\
             <store><name>West Village</name><city>Austin</city>\
               <merchandises><clothes><category>skirt</category></clothes></merchandises>\
             </store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn classifies_the_paper_example() {
        let d = retailer_doc();
        let m = EntityModel::analyze(&d);
        let store = d.first_element_with_label("store").unwrap();
        let clothes = d.first_element_with_label("clothes").unwrap();
        let merch = d.first_element_with_label("merchandises").unwrap();
        let city = d.first_element_with_label("city").unwrap();
        assert_eq!(m.category(store), NodeCategory::Entity);
        assert_eq!(m.category(clothes), NodeCategory::Entity);
        assert_eq!(m.category(city), NodeCategory::Attribute);
        assert_eq!(m.category(merch), NodeCategory::Connection);
        assert_eq!(m.category(d.root()), NodeCategory::Connection);
    }

    #[test]
    fn dtd_driven_classification_beats_inference() {
        // One store in the data, but the DTD declares store*.
        let d = Document::parse_str(
            "<!DOCTYPE retailer [\
               <!ELEMENT retailer (store*)>\
               <!ELEMENT store (name)>\
               <!ELEMENT name (#PCDATA)>\
             ]>\
             <retailer><store><name>solo</name></store></retailer>",
        )
        .unwrap();
        let m = EntityModel::analyze(&d);
        let store = d.first_element_with_label("store").unwrap();
        assert_eq!(m.category(store), NodeCategory::Entity);
    }

    #[test]
    fn entity_of_walks_upward() {
        let d = retailer_doc();
        let m = EntityModel::analyze(&d);
        let category = d.first_element_with_label("category").unwrap();
        let clothes = d.first_element_with_label("clothes").unwrap();
        assert_eq!(m.entity_of(&d, category), Some(clothes));
        assert_eq!(m.entity_of(&d, clothes), Some(clothes), "ancestor-or-self");
        let store = d.first_element_with_label("store").unwrap();
        assert_eq!(m.ancestor_entity_of(&d, clothes), Some(store));
        // Retailer's name has no entity ancestor (retailer is a connection
        // node here — single retailer, no DTD).
        let name = d.first_element_with_label("name").unwrap();
        assert_eq!(m.entity_of(&d, name), None);
    }

    #[test]
    fn highest_entities_stop_at_first_entity() {
        let d = retailer_doc();
        let m = EntityModel::analyze(&d);
        let highest = m.highest_entities(&d, d.root());
        let stores = d.elements_with_label("store");
        assert_eq!(highest, stores, "stores, not the clothes inside them");
        // From a store root, the store itself is the highest entity.
        assert_eq!(m.highest_entities(&d, stores[0]), vec![stores[0]]);
    }

    #[test]
    fn entities_and_attributes_in_subtree() {
        let d = retailer_doc();
        let m = EntityModel::analyze(&d);
        let store1 = d.elements_with_label("store")[0];
        let entities = m.entities_in(&d, store1);
        assert_eq!(entities.len(), 3); // store1 + 2 clothes
        let attrs = m.attributes_in(&d, store1);
        // name, city, 2 categories
        assert_eq!(attrs.len(), 4);
    }

    #[test]
    fn attribute_children_of_entity() {
        let d = retailer_doc();
        let m = EntityModel::analyze(&d);
        let store1 = d.elements_with_label("store")[0];
        let attrs = m.attribute_children(&d, store1);
        let labels: Vec<&str> = attrs.iter().map(|&a| d.label_str(a).unwrap()).collect();
        assert_eq!(labels, vec!["name", "city"]);
    }

    #[test]
    fn empty_leaf_is_connection() {
        let d = Document::parse_str("<a><b/><c>text</c></a>").unwrap();
        let m = EntityModel::analyze(&d);
        let b = d.first_element_with_label("b").unwrap();
        let c = d.first_element_with_label("c").unwrap();
        assert_eq!(m.category(b), NodeCategory::Connection);
        assert_eq!(m.category(c), NodeCategory::Attribute);
    }

    #[test]
    fn repeated_text_leaves_are_entities_not_attributes() {
        // Multi-valued text children repeat ⇒ they are *-nodes.
        let d = Document::parse_str(
            "<paper><author>A</author><author>B</author><title>T</title></paper>",
        )
        .unwrap();
        let m = EntityModel::analyze(&d);
        let author = d.first_element_with_label("author").unwrap();
        let title = d.first_element_with_label("title").unwrap();
        assert_eq!(m.category(author), NodeCategory::Entity);
        assert_eq!(m.category(title), NodeCategory::Attribute);
    }

    #[test]
    fn display_of_categories() {
        assert_eq!(NodeCategory::Entity.to_string(), "entity");
        assert_eq!(NodeCategory::Attribute.to_string(), "attribute");
        assert_eq!(NodeCategory::Connection.to_string(), "connection");
    }
}
