//! Feature extraction and per-result statistics (paper §2.3).
//!
//! A **feature** is a triple `(entity name e, attribute name a, value v)`:
//! entity `e` has attribute `a` with value `v`. `(e, a)` is the feature
//! *type*. For a query result `R`, [`ResultStats`] computes
//!
//! * `N(e,a,v)` — occurrences of the value,
//! * `N(e,a)` — total value occurrences of the type,
//! * `D(e,a)` — the domain size (number of distinct values),
//!
//! plus, for each value, the list of attribute node instances — exactly
//! what the Dominant Feature Identifier and the Instance Selector consume.
//! Feature types are keyed by **names** (labels), not label paths, matching
//! the paper's definition.

use std::collections::HashMap;

use extract_xml::{Document, NodeId, Symbol};

use crate::classify::EntityModel;

/// A feature type `(entity label, attribute label)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureType {
    /// Entity label.
    pub entity: Symbol,
    /// Attribute label.
    pub attribute: Symbol,
}

/// One value of a feature type with its occurrence count (a row of the
/// paper's Figure 1 statistics panel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCount {
    /// The attribute value.
    pub value: String,
    /// `N(e,a,v)`.
    pub count: u32,
}

/// Per-value statistics.
#[derive(Debug, Clone, Default)]
struct ValueStats {
    count: u32,
    /// Attribute nodes carrying this value, document order.
    occurrences: Vec<NodeId>,
}

/// Statistics of one feature type within a result.
#[derive(Debug, Clone, Default)]
struct TypeStats {
    /// `N(e,a)`.
    total: u32,
    values: HashMap<String, ValueStats>,
}

/// Feature statistics for one query result (the subtree at a result root).
#[derive(Debug, Clone, Default)]
pub struct ResultStats {
    types: HashMap<FeatureType, TypeStats>,
}

impl ResultStats {
    /// Compute statistics over the subtree rooted at `root`.
    ///
    /// Every attribute node in the subtree contributes one occurrence of
    /// `(entity-of-attribute, attribute label, value)`. The owning entity
    /// is the nearest strict ancestor entity; attributes above every entity
    /// (e.g. attributes of a connection-node root) are attributed to the
    /// result root's label, so no feature is silently dropped.
    pub fn compute(doc: &Document, model: &EntityModel, root: NodeId) -> ResultStats {
        let mut stats = ResultStats::default();
        // One pass; track the nearest entity ancestor with an explicit stack
        // instead of per-node upward walks.
        let root_label = doc.node(root).label();
        let mut stack: Vec<(NodeId, Symbol)> = vec![(root, entity_label_for_root(doc, model, root, root_label))];
        while let Some((node, owner)) = stack.pop() {
            for child in doc.element_children(node) {
                if model.is_attribute(child) {
                    if let Some(value) = doc.text_of(child) {
                        let ft = FeatureType { entity: owner, attribute: doc.node(child).label() };
                        let ts = stats.types.entry(ft).or_default();
                        ts.total += 1;
                        let vs = ts.values.entry(value.to_string()).or_default();
                        vs.count += 1;
                        vs.occurrences.push(child);
                    }
                    continue;
                }
                let child_owner =
                    if model.is_entity(child) { doc.node(child).label() } else { owner };
                stack.push((child, child_owner));
            }
        }
        // Document order for occurrence lists (stack traversal perturbs it).
        for ts in stats.types.values_mut() {
            for vs in ts.values.values_mut() {
                vs.occurrences.sort_unstable();
            }
        }
        stats
    }

    /// `N(e,a)` — total value occurrences of a type.
    pub fn n_type(&self, ft: FeatureType) -> u32 {
        self.types.get(&ft).map(|t| t.total).unwrap_or(0)
    }

    /// `D(e,a)` — domain size of a type.
    pub fn d_type(&self, ft: FeatureType) -> u32 {
        self.types.get(&ft).map(|t| t.values.len() as u32).unwrap_or(0)
    }

    /// `N(e,a,v)` — occurrences of one value.
    pub fn n_value(&self, ft: FeatureType, value: &str) -> u32 {
        self.types
            .get(&ft)
            .and_then(|t| t.values.get(value))
            .map(|v| v.count)
            .unwrap_or(0)
    }

    /// Attribute node instances carrying `(ft, value)`, in document order.
    pub fn occurrences(&self, ft: FeatureType, value: &str) -> &[NodeId] {
        self.types
            .get(&ft)
            .and_then(|t| t.values.get(value))
            .map(|v| v.occurrences.as_slice())
            .unwrap_or(&[])
    }

    /// All feature types present in the result.
    pub fn feature_types(&self) -> impl Iterator<Item = FeatureType> + '_ {
        self.types.keys().copied()
    }

    /// Values of one type sorted by descending count, then value — the
    /// statistics panel of the paper's Figure 1.
    pub fn value_table(&self, ft: FeatureType) -> Vec<ValueCount> {
        let Some(ts) = self.types.get(&ft) else {
            return Vec::new();
        };
        let mut rows: Vec<ValueCount> = ts
            .values
            .iter()
            .map(|(value, vs)| ValueCount { value: value.clone(), count: vs.count })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
        rows
    }

    /// Render the full statistics panel (every type), types sorted by name.
    pub fn statistics_panel(&self, doc: &Document) -> String {
        let mut types: Vec<FeatureType> = self.types.keys().copied().collect();
        types.sort_by_key(|ft| {
            (doc.resolve(ft.entity).to_string(), doc.resolve(ft.attribute).to_string())
        });
        let mut out = String::new();
        for ft in types {
            out.push_str(&format!(
                "({}, {}): N={} D={}\n",
                doc.resolve(ft.entity),
                doc.resolve(ft.attribute),
                self.n_type(ft),
                self.d_type(ft)
            ));
            for row in self.value_table(ft) {
                out.push_str(&format!("  {}: {}\n", row.value, row.count));
            }
        }
        out
    }
}

/// Root attribution: if the root is (or sits under) an entity, use that
/// entity's label for attributes directly under connection chains; else the
/// root's own label.
fn entity_label_for_root(
    doc: &Document,
    model: &EntityModel,
    root: NodeId,
    fallback: Symbol,
) -> Symbol {
    model
        .entity_of(doc, root)
        .map(|e| doc.node(e).label())
        .unwrap_or(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Document, EntityModel) {
        let d = Document::parse_str(
            "<retailer><name>BB</name>\
             <store><city>Houston</city>\
               <merchandises>\
                 <clothes><fitting>man</fitting><category>suit</category></clothes>\
                 <clothes><fitting>woman</fitting><category>outwear</category></clothes>\
               </merchandises>\
             </store>\
             <store><city>Houston</city>\
               <merchandises><clothes><fitting>man</fitting></clothes></merchandises>\
             </store>\
             <store><city>Austin</city>\
               <merchandises><clothes><fitting>man</fitting></clothes></merchandises>\
             </store></retailer>",
        )
        .unwrap();
        let m = EntityModel::analyze(&d);
        (d, m)
    }

    fn ft(d: &Document, e: &str, a: &str) -> FeatureType {
        FeatureType {
            entity: d.symbols().get(e).unwrap(),
            attribute: d.symbols().get(a).unwrap(),
        }
    }

    #[test]
    fn counts_match_the_data() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        let city = ft(&d, "store", "city");
        assert_eq!(stats.n_type(city), 3);
        assert_eq!(stats.d_type(city), 2);
        assert_eq!(stats.n_value(city, "Houston"), 2);
        assert_eq!(stats.n_value(city, "Austin"), 1);
        let fitting = ft(&d, "clothes", "fitting");
        assert_eq!(stats.n_type(fitting), 4);
        assert_eq!(stats.d_type(fitting), 2);
        assert_eq!(stats.n_value(fitting, "man"), 3);
    }

    #[test]
    fn attributes_attach_to_nearest_entity() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        // fitting belongs to clothes, not to store (merchandises is a
        // connection node in between, city belongs to store).
        assert_eq!(stats.n_type(ft(&d, "store", "fitting")), 0);
        assert_eq!(stats.n_type(ft(&d, "clothes", "fitting")), 4);
    }

    #[test]
    fn root_attributes_use_root_label() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        // <name> under the (connection) retailer root.
        assert_eq!(stats.n_value(ft(&d, "retailer", "name"), "BB"), 1);
    }

    #[test]
    fn occurrences_are_attribute_nodes_in_document_order() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        let occ = stats.occurrences(ft(&d, "store", "city"), "Houston");
        assert_eq!(occ.len(), 2);
        assert!(occ[0] < occ[1]);
        for &n in occ {
            assert_eq!(d.label_str(n), Some("city"));
            assert_eq!(d.text_of(n), Some("Houston"));
        }
    }

    #[test]
    fn subtree_scoping_restricts_counts() {
        let (d, m) = setup();
        let store1 = d.elements_with_label("store")[0];
        let stats = ResultStats::compute(&d, &m, store1);
        assert_eq!(stats.n_type(ft(&d, "store", "city")), 1);
        assert_eq!(stats.n_type(ft(&d, "clothes", "fitting")), 2);
        assert_eq!(stats.n_value(ft(&d, "clothes", "category"), "suit"), 1);
    }

    #[test]
    fn value_table_sorted_by_count_desc() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        let rows = stats.value_table(ft(&d, "store", "city"));
        assert_eq!(rows[0], ValueCount { value: "Houston".into(), count: 2 });
        assert_eq!(rows[1], ValueCount { value: "Austin".into(), count: 1 });
    }

    #[test]
    fn unknown_types_are_zero() {
        let (d, m) = setup();
        let mut d2 = d.clone();
        let bogus = d2.intern("bogus");
        let stats = ResultStats::compute(&d, &m, d.root());
        let ft = FeatureType { entity: bogus, attribute: bogus };
        assert_eq!(stats.n_type(ft), 0);
        assert_eq!(stats.d_type(ft), 0);
        assert!(stats.occurrences(ft, "x").is_empty());
    }

    #[test]
    fn statistics_panel_renders() {
        let (d, m) = setup();
        let stats = ResultStats::compute(&d, &m, d.root());
        let panel = stats.statistics_panel(&d);
        assert!(panel.contains("(store, city): N=3 D=2"), "{panel}");
        assert!(panel.contains("Houston: 2"), "{panel}");
    }

    #[test]
    fn multi_valued_attribute_counts_each_occurrence() {
        // category repeats inside one clothes ⇒ category is an entity by
        // the star rule... unless the DTD says otherwise. Use a DTD that
        // declares category as a singleton in general — then repeated
        // instances still produce one occurrence each.
        let d = Document::parse_str(
            "<r><c><cat>a</cat></c><c><cat>b</cat></c><c><cat>a</cat></c></r>",
        )
        .unwrap();
        let m = EntityModel::analyze(&d);
        let stats = ResultStats::compute(&d, &m, d.root());
        let ft = FeatureType {
            entity: d.symbols().get("c").unwrap(),
            attribute: d.symbols().get("cat").unwrap(),
        };
        assert_eq!(stats.n_type(ft), 3);
        assert_eq!(stats.d_type(ft), 2);
        assert_eq!(stats.n_value(ft, "a"), 2);
    }
}
