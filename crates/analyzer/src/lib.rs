//! Data Analyzer for the eXtract reproduction (paper §2.1–§2.3, Figure 4).
//!
//! "The Data Analyzer parses the input XML data and identifies the entities,
//! attributes and connection nodes." This crate implements that
//! classification plus the two analyses the snippet generator feeds on:
//!
//! * [`classify`] — the entity / attribute / connection node taxonomy of
//!   XSeek (Liu & Chen, SIGMOD 2007), driven by the DTD when present and by
//!   structural inference otherwise:
//!   - a node is an **entity** if it is a `*`-node (may repeat under its
//!     parent),
//!   - a non-`*` node whose children are text is an **attribute** (the node
//!     together with its value child),
//!   - everything else is a **connection** node;
//! * [`keys`] — key-attribute mining: for each entity type, find an
//!   attribute whose value uniquely identifies instances ("After mining the
//!   keys of entities in the data", §2.2);
//! * [`features`] — feature extraction and the per-result statistics
//!   `N(e,a,v)`, `N(e,a)`, `D(e,a)` that define dominance scores (§2.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod features;
pub mod keys;

pub use classify::{EntityModel, NodeCategory};
pub use features::{FeatureType, ResultStats, ValueCount};
pub use keys::KeyCatalog;
