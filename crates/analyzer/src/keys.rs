//! Key-attribute mining (paper §2.2).
//!
//! "After mining the keys of entities in the data, eXtract adds the value of
//! the key attribute of [the return entity] to IList." A key of an entity
//! type is an attribute that uniquely identifies its instances. We mine keys
//! over the whole database:
//!
//! * a **perfect key** is an attribute child path that occurs exactly once
//!   in every instance and whose values are pairwise distinct;
//! * when several qualify, name heuristics break ties (`id`-like beats
//!   `name`-like beats the rest), then document order;
//! * when none qualifies, the attribute with the highest distinct-value
//!   ratio among single-occurrence attributes is used as a best-effort key
//!   (flagged [`KeyQuality::BestEffort`]).

use std::collections::{HashMap, HashSet};

use extract_xml::{Document, NodeId, PathId};

use crate::classify::EntityModel;

/// How trustworthy a mined key is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyQuality {
    /// Unique value in every instance.
    Perfect,
    /// Single-valued but not globally unique; best distinct ratio.
    BestEffort,
}

/// A mined key for one entity path.
#[derive(Debug, Clone)]
pub struct MinedKey {
    /// The attribute path serving as the key.
    pub attribute_path: PathId,
    /// Perfect or best-effort.
    pub quality: KeyQuality,
    /// Fraction of instances with a distinct value (1.0 for perfect keys).
    pub distinct_ratio: f64,
}

/// Keys for every entity path of a document.
#[derive(Debug, Clone, Default)]
pub struct KeyCatalog {
    keys: HashMap<PathId, MinedKey>,
}

impl KeyCatalog {
    /// Mine keys for every entity path in `doc`.
    pub fn mine(doc: &Document, model: &EntityModel) -> KeyCatalog {
        let schema = model.schema();
        // Gather, per (entity path, attribute child path): number of owning
        // instances that contain it, whether any instance has it twice, and
        // the multiset of values.
        #[derive(Default)]
        struct AttrStats {
            instances_with: u32,
            multi_valued: bool,
            values: HashSet<String>,
            value_count: u32,
        }
        let mut stats: HashMap<(PathId, PathId), AttrStats> = HashMap::new();

        for node in doc.all_nodes() {
            if !doc.node(node).is_element() || !model.is_entity(node) {
                continue;
            }
            let entity_path = schema.path_of(node);
            let mut seen_here: HashMap<PathId, u32> = HashMap::new();
            for child in doc.element_children(node) {
                if !model.is_attribute(child) {
                    continue;
                }
                let attr_path = schema.path_of(child);
                *seen_here.entry(attr_path).or_insert(0) += 1;
                if let Some(value) = doc.text_of(child) {
                    let s = stats.entry((entity_path, attr_path)).or_default();
                    s.values.insert(value.to_string());
                    s.value_count += 1;
                }
            }
            for (attr_path, count) in seen_here {
                let s = stats.entry((entity_path, attr_path)).or_default();
                s.instances_with += 1;
                if count > 1 {
                    s.multi_valued = true;
                }
            }
        }

        // Score candidates per entity path.
        let mut keys: HashMap<PathId, (MinedKey, i32)> = HashMap::new();
        for ((entity_path, attr_path), s) in &stats {
            if s.multi_valued {
                continue;
            }
            let entity_count = schema.info(*entity_path).instance_count;
            let covers_all = s.instances_with == entity_count;
            let distinct_ratio = if s.value_count == 0 {
                0.0
            } else {
                s.values.len() as f64 / s.value_count as f64
            };
            let perfect = covers_all && s.value_count == entity_count && distinct_ratio == 1.0;
            let name_score = name_preference(doc.resolve(schema.info(*attr_path).label));
            // Perfect keys always beat best-effort ones; among equals the
            // name preference, then distinct ratio, then path order decide.
            let score = if perfect { 1000 + name_score } else { name_score };
            let candidate = MinedKey {
                attribute_path: *attr_path,
                quality: if perfect { KeyQuality::Perfect } else { KeyQuality::BestEffort },
                distinct_ratio,
            };
            match keys.get(entity_path) {
                Some((existing, existing_score)) => {
                    let better = score > *existing_score
                        || (score == *existing_score
                            && (candidate.distinct_ratio, std::cmp::Reverse(attr_path))
                                > (existing.distinct_ratio, std::cmp::Reverse(&existing.attribute_path)));
                    if better {
                        keys.insert(*entity_path, (candidate, score));
                    }
                }
                None => {
                    keys.insert(*entity_path, (candidate, score));
                }
            }
        }

        KeyCatalog { keys: keys.into_iter().map(|(k, (v, _))| (k, v)).collect() }
    }

    /// The mined key for an entity path.
    pub fn key_of(&self, entity_path: PathId) -> Option<&MinedKey> {
        self.keys.get(&entity_path)
    }

    /// Number of entity paths with a mined key.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys were mined.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Resolve the key **node** of one entity instance: the attribute child
    /// on the key path.
    pub fn key_node(
        &self,
        doc: &Document,
        model: &EntityModel,
        entity_instance: NodeId,
    ) -> Option<NodeId> {
        let entity_path = model.schema().path_of(entity_instance);
        let key = self.keys.get(&entity_path)?;
        doc.element_children(entity_instance)
            .find(|&c| model.schema().path_of(c) == key.attribute_path)
    }

    /// Resolve the key **value** of one entity instance.
    pub fn key_value<'d>(
        &self,
        doc: &'d Document,
        model: &EntityModel,
        entity_instance: NodeId,
    ) -> Option<&'d str> {
        self.key_node(doc, model, entity_instance).and_then(|n| doc.text_of(n))
    }
}

/// Name heuristics: identifiers beat names beat everything else.
fn name_preference(label: &str) -> i32 {
    let lower = label.to_lowercase();
    if lower == "id" || lower == "key" || lower.ends_with("_id") || lower.ends_with("id") {
        3
    } else if lower == "name" || lower == "title" {
        2
    } else if lower.contains("name") || lower.contains("title") {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(doc: &Document) -> EntityModel {
        EntityModel::analyze(doc)
    }

    #[test]
    fn unique_name_is_a_perfect_key() {
        let d = Document::parse_str(
            "<stores>\
             <store><name>Levis</name><city>Houston</city></store>\
             <store><name>ESprit</name><city>Houston</city></store>\
             </stores>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let store_path = m.schema().path_by_string("/stores/store", &d).unwrap();
        let key = catalog.key_of(store_path).expect("store has a key");
        assert_eq!(key.quality, KeyQuality::Perfect);
        let name_path = m.schema().path_by_string("/stores/store/name", &d).unwrap();
        assert_eq!(key.attribute_path, name_path, "city repeats, name does not");
    }

    #[test]
    fn id_beats_name_when_both_perfect() {
        let d = Document::parse_str(
            "<ss>\
             <s><id>1</id><name>A</name></s>\
             <s><id>2</id><name>B</name></s>\
             </ss>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let s_path = m.schema().path_by_string("/ss/s", &d).unwrap();
        let key = catalog.key_of(s_path).unwrap();
        let id_path = m.schema().path_by_string("/ss/s/id", &d).unwrap();
        assert_eq!(key.attribute_path, id_path);
    }

    #[test]
    fn duplicate_values_fall_back_to_best_effort() {
        let d = Document::parse_str(
            "<ss>\
             <s><name>A</name><kind>x</kind></s>\
             <s><name>A</name><kind>y</kind></s>\
             <s><name>B</name><kind>x</kind></s>\
             </ss>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let s_path = m.schema().path_by_string("/ss/s", &d).unwrap();
        let key = catalog.key_of(s_path).unwrap();
        assert_eq!(key.quality, KeyQuality::BestEffort);
        // name: 2 distinct of 3; kind: 2 distinct of 3 — name wins on the
        // name-preference heuristic.
        let name_path = m.schema().path_by_string("/ss/s/name", &d).unwrap();
        assert_eq!(key.attribute_path, name_path);
    }

    #[test]
    fn missing_in_some_instances_is_not_perfect() {
        let d = Document::parse_str(
            "<ss>\
             <s><name>A</name></s>\
             <s><kind>k</kind></s>\
             </ss>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let s_path = m.schema().path_by_string("/ss/s", &d).unwrap();
        let key = catalog.key_of(s_path).unwrap();
        assert_eq!(key.quality, KeyQuality::BestEffort);
    }

    #[test]
    fn multi_valued_attributes_are_never_keys() {
        // color repeats inside one instance ⇒ it is an entity by the star
        // rule, so it is not even an attribute candidate; serial is the key.
        let d = Document::parse_str(
            "<ss>\
             <s><color>red</color><color>blue</color><serial>1</serial></s>\
             <s><serial>2</serial></s>\
             </ss>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let s_path = m.schema().path_by_string("/ss/s", &d).unwrap();
        let key = catalog.key_of(s_path).unwrap();
        let serial_path = m.schema().path_by_string("/ss/s/serial", &d).unwrap();
        assert_eq!(key.attribute_path, serial_path);
    }

    #[test]
    fn key_node_and_value_resolve_per_instance() {
        let d = Document::parse_str(
            "<stores>\
             <store><name>Levis</name></store>\
             <store><name>ESprit</name></store>\
             </stores>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let stores = d.elements_with_label("store");
        assert_eq!(catalog.key_value(&d, &m, stores[0]), Some("Levis"));
        assert_eq!(catalog.key_value(&d, &m, stores[1]), Some("ESprit"));
        let key_node = catalog.key_node(&d, &m, stores[1]).unwrap();
        assert_eq!(d.label_str(key_node), Some("name"));
    }

    #[test]
    fn entity_without_attributes_has_no_key() {
        let d = Document::parse_str("<r><e><sub/></e><e><sub/></e></r>").unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let e_path = m.schema().path_by_string("/r/e", &d).unwrap();
        assert!(catalog.key_of(e_path).is_none());
    }

    #[test]
    fn nested_entities_get_independent_keys() {
        let d = Document::parse_str(
            "<r>\
             <store><name>A</name>\
               <item><sku>1</sku></item><item><sku>2</sku></item>\
             </store>\
             <store><name>B</name>\
               <item><sku>3</sku></item>\
             </store>\
             </r>",
        )
        .unwrap();
        let m = model_of(&d);
        let catalog = KeyCatalog::mine(&d, &m);
        let store_path = m.schema().path_by_string("/r/store", &d).unwrap();
        let item_path = m.schema().path_by_string("/r/store/item", &d).unwrap();
        assert!(catalog.key_of(store_path).is_some());
        let item_key = catalog.key_of(item_path).unwrap();
        assert_eq!(item_key.quality, KeyQuality::Perfect);
        let sku_path = m.schema().path_by_string("/r/store/item/sku", &d).unwrap();
        assert_eq!(item_key.attribute_path, sku_path);
    }
}
