//! Property tests for the Data Analyzer: classification totality, entity
//! resolution consistency, statistics identities, and key-mining soundness.

use extract_analyzer::{EntityModel, KeyCatalog, NodeCategory, ResultStats};
use extract_xml::{DocBuilder, Document, NodeId};
use proptest::prelude::*;

const LABELS: [&str; 6] = ["store", "clothes", "name", "city", "merch", "tag"];
const VALUES: [&str; 5] = ["texas", "houston", "jeans", "man", "red"];

#[derive(Debug, Clone)]
struct SpecNode {
    label: usize,
    value: Option<usize>,
    children: Vec<SpecNode>,
}

fn spec_strategy() -> impl Strategy<Value = SpecNode> {
    let leaf = (0usize..LABELS.len(), proptest::option::of(0usize..VALUES.len()))
        .prop_map(|(label, value)| SpecNode { label, value, children: Vec::new() });
    leaf.prop_recursive(4, 48, 6, |inner| {
        (0usize..LABELS.len(), proptest::collection::vec(inner, 0..6)).prop_map(
            |(label, children)| SpecNode { label, value: None, children },
        )
    })
}

fn build(spec: &SpecNode) -> Document {
    let mut b = DocBuilder::new("db");
    push(&mut b, spec);
    b.build()
}

fn push(b: &mut DocBuilder, s: &SpecNode) {
    b.begin(LABELS[s.label]);
    if let Some(v) = s.value {
        b.text(VALUES[v]);
    }
    for c in &s.children {
        push(b, c);
    }
    b.end();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every element gets exactly one category, and the category honours
    /// the definitions: entities repeat (or are DTD-starred), attributes
    /// never have element children, connection nodes are the rest.
    #[test]
    fn classification_is_total_and_consistent(spec in spec_strategy()) {
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        for n in doc.subtree_elements(doc.root()) {
            let cat = model.category(n);
            match cat {
                NodeCategory::Attribute => {
                    // Attributes never have element children anywhere on
                    // their path (path-level classification).
                    prop_assert!(doc.element_children(n).next().is_none()
                        || !model.schema().info(model.schema().path_of(n)).has_element_child);
                }
                NodeCategory::Entity => {
                    // Starred by the schema.
                    prop_assert!(model.schema().node_is_starred(n));
                }
                NodeCategory::Connection => {
                    prop_assert!(!model.schema().node_is_starred(n));
                }
            }
        }
    }

    /// `entity_of` returns an ancestor-or-self entity, and the nearest one.
    #[test]
    fn entity_of_is_nearest_ancestor_entity(spec in spec_strategy()) {
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        for n in doc.subtree_elements(doc.root()) {
            match model.entity_of(&doc, n) {
                Some(e) => {
                    prop_assert!(doc.is_ancestor_or_self(e, n));
                    prop_assert!(model.is_entity(e));
                    // No entity strictly between e and n.
                    for a in doc.ancestors_or_self(n) {
                        if a == e {
                            break;
                        }
                        prop_assert!(!model.is_entity(a));
                    }
                }
                None => {
                    // No ancestor-or-self may be an entity.
                    for a in doc.ancestors_or_self(n) {
                        prop_assert!(!model.is_entity(a));
                    }
                }
            }
        }
    }

    /// Highest entities are entities, pairwise incomparable, and every
    /// entity in the subtree is below (or equal to) one of them.
    #[test]
    fn highest_entities_cover_all_entities(spec in spec_strategy()) {
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        let highest = model.highest_entities(&doc, doc.root());
        for (i, &a) in highest.iter().enumerate() {
            prop_assert!(model.is_entity(a));
            for &b in &highest[i + 1..] {
                prop_assert!(!doc.is_ancestor_or_self(a, b));
                prop_assert!(!doc.is_ancestor_or_self(b, a));
            }
        }
        for e in model.entities_in(&doc, doc.root()) {
            prop_assert!(
                highest.iter().any(|&h| doc.is_ancestor_or_self(h, e)),
                "entity {e} not under any highest entity"
            );
        }
    }

    /// Statistics identities: N(e,a) = Σ_v N(e,a,v); D = number of distinct
    /// values; occurrence lists have exactly N(e,a,v) entries, all
    /// attribute nodes carrying the value.
    #[test]
    fn result_stats_identities(spec in spec_strategy()) {
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        let stats = ResultStats::compute(&doc, &model, doc.root());
        for ft in stats.feature_types() {
            let table = stats.value_table(ft);
            let sum: u32 = table.iter().map(|r| r.count).sum();
            prop_assert_eq!(sum, stats.n_type(ft));
            prop_assert_eq!(table.len() as u32, stats.d_type(ft));
            for row in &table {
                let occ = stats.occurrences(ft, &row.value);
                prop_assert_eq!(occ.len() as u32, row.count);
                for &n in occ {
                    prop_assert_eq!(doc.text_of(n), Some(row.value.as_str()));
                    prop_assert!(model.is_attribute(n));
                }
            }
        }
    }

    /// Subtree stats see a subset of the document's attribute occurrences.
    /// (Type-level counts are *not* comparable across scopes: an attribute
    /// above every entity is attributed to the result root's label, which
    /// changes with the root — per-result statistics are intentionally
    /// relative, like the paper's. The node-level containment is the real
    /// invariant.)
    #[test]
    fn subtree_occurrences_are_a_subset_of_document_occurrences(spec in spec_strategy()) {
        use std::collections::HashSet;
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        let whole = ResultStats::compute(&doc, &model, doc.root());
        // Every attribute occurrence node known to the whole-document stats,
        // keyed by (attribute label, value).
        let mut whole_nodes: HashSet<extract_xml::NodeId> = HashSet::new();
        for ft in whole.feature_types() {
            for row in whole.value_table(ft) {
                whole_nodes.extend(whole.occurrences(ft, &row.value));
            }
        }
        let inner: Option<extract_xml::NodeId> = doc.subtree_elements(doc.root()).nth(1);
        if let Some(inner) = inner {
            let sub = ResultStats::compute(&doc, &model, inner);
            for ft in sub.feature_types() {
                for row in sub.value_table(ft) {
                    for &n in sub.occurrences(ft, &row.value) {
                        prop_assert!(
                            whole_nodes.contains(&n),
                            "occurrence {n} unknown to whole-document stats"
                        );
                        prop_assert!(doc.is_ancestor_or_self(inner, n));
                    }
                }
            }
        }
    }

    /// Mined keys are sound: within an entity path, a perfect key's values
    /// are unique across instances.
    #[test]
    fn mined_keys_are_unique_within_entity_path(spec in spec_strategy()) {
        use std::collections::HashSet;
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        let catalog = KeyCatalog::mine(&doc, &model);
        // Group entity instances by path and check key-value uniqueness.
        let mut by_path: std::collections::HashMap<_, Vec<NodeId>> =
            std::collections::HashMap::new();
        for n in doc.subtree_elements(doc.root()) {
            if model.is_entity(n) {
                by_path.entry(model.schema().path_of(n)).or_default().push(n);
            }
        }
        for (path, instances) in by_path {
            let Some(key) = catalog.key_of(path) else { continue };
            if key.quality != extract_analyzer::keys::KeyQuality::Perfect {
                continue;
            }
            let mut seen = HashSet::new();
            for inst in instances {
                let value = catalog
                    .key_value(&doc, &model, inst)
                    .expect("perfect keys exist on every instance");
                prop_assert!(seen.insert(value.to_string()), "duplicate key {value}");
            }
        }
    }
}
