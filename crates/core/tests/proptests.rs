//! Property tests for the snippet generator: structural invariants that
//! must hold for any document, query and bound.

use extract_core::quality::items_covered_by;
use extract_core::selector::{exact_select, greedy_select, ExactLimits};
use extract_core::{Extract, ExtractConfig};
use extract_search::{Algorithm, Engine, KeywordQuery};
use extract_xml::{DocBuilder, Document};
use proptest::prelude::*;

const LABELS: [&str; 5] = ["store", "clothes", "name", "city", "tag"];
const VALUES: [&str; 6] = ["texas", "houston", "jeans", "man", "casual", "red"];

#[derive(Debug, Clone)]
struct SpecNode {
    label: usize,
    value: Option<usize>,
    children: Vec<SpecNode>,
}

fn spec_strategy() -> impl Strategy<Value = SpecNode> {
    let leaf = (0usize..LABELS.len(), proptest::option::of(0usize..VALUES.len()))
        .prop_map(|(label, value)| SpecNode { label, value, children: Vec::new() });
    leaf.prop_recursive(4, 40, 5, |inner| {
        (0usize..LABELS.len(), proptest::collection::vec(inner, 0..5)).prop_map(
            |(label, children)| SpecNode { label, value: None, children },
        )
    })
}

fn build(spec: &SpecNode) -> Document {
    let mut b = DocBuilder::new("db");
    push(&mut b, spec);
    // A second sibling subtree so entity inference sees repetition
    // sometimes and the root is never the only candidate.
    b.begin("store");
    b.leaf("name", "anchor");
    b.end();
    b.build()
}

fn push(b: &mut DocBuilder, s: &SpecNode) {
    b.begin(LABELS[s.label]);
    if let Some(v) = s.value {
        b.text(VALUES[v]);
    }
    for c in &s.children {
        push(b, c);
    }
    b.end();
}

fn query_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..LABELS.len()).prop_map(|i| LABELS[i].to_string()),
            (0usize..VALUES.len()).prop_map(|i| VALUES[i].to_string()),
        ],
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The four hard invariants of a snippet: bound respected, tree is
    /// ancestor-closed, tree is inside the result, covered items really
    /// have an included instance.
    #[test]
    fn snippet_invariants(
        spec in spec_strategy(),
        keywords in query_strategy(),
        bound in 0usize..20,
    ) {
        let doc = build(&spec);
        let extract = Extract::new(&doc);
        let engine = Engine::new(&doc);
        let query = KeywordQuery::from_keywords(keywords);
        for result in engine.search(&query, Algorithm::XSeek) {
            let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(bound));
            // Bound.
            prop_assert!(out.snippet.edges <= bound);
            // Element-edge accounting matches the materialized tree.
            prop_assert_eq!(
                out.snippet.tree().element_edges(out.snippet.tree().root()),
                out.snippet.edges
            );
            // Ancestor closure within the result subtree.
            for &n in &out.snippet.nodes {
                prop_assert!(doc.is_ancestor_or_self(result.root, n));
                if n != result.root {
                    prop_assert!(out.snippet.nodes.contains(&doc.parent(n).unwrap()));
                }
            }
            // Coverage accounting.
            prop_assert_eq!(
                out.snippet.coverage(),
                items_covered_by(&out.ilist, &out.snippet.nodes)
            );
            prop_assert_eq!(out.snippet.coverage() + out.snippet.skipped.len(), out.ilist.len());
        }
    }

    /// A SnippetCache hit is byte-identical to cold computation: for any
    /// document, query sequence and config, the cached end-to-end path
    /// renders exactly what the uncached path renders.
    #[test]
    fn cache_hits_are_byte_identical_to_cold(
        spec in spec_strategy(),
        queries in proptest::collection::vec(query_strategy(), 1..4),
        bound in 0usize..16,
        cap in prop_oneof![Just(None), Just(Some(1usize)), Just(Some(3usize))],
    ) {
        let doc = build(&spec);
        let extract = Extract::new(&doc);
        let config = ExtractConfig {
            size_bound: bound,
            max_dominant_features: cap,
            ..Default::default()
        };
        let mut cache = extract_core::SnippetCache::new(8);
        // Issue each query twice (second pass hits the cache), interleaved
        // so eviction and cross-query pollution get a chance to bite.
        let texts: Vec<String> = queries.iter().map(|ks| ks.join(" ")).collect();
        let mut total_results = 0u64;
        for pass in 0..2 {
            for q in &texts {
                let cold = extract.snippets_for_query(q, &config);
                let cached = extract.snippets_for_query_cached(q, &config, &mut cache);
                total_results += cached.len() as u64;
                prop_assert_eq!(cold.len(), cached.len(), "pass {} query {}", pass, q);
                for (a, b) in cold.iter().zip(cached.iter()) {
                    prop_assert_eq!(a.result.root, b.result.root);
                    prop_assert_eq!(a.snippet.to_xml(), b.snippet.to_xml());
                    prop_assert_eq!(a.snippet.to_ascii_tree(), b.snippet.to_ascii_tree());
                    prop_assert_eq!(a.ilist.display(&doc), b.ilist.display(&doc));
                    prop_assert_eq!(a.snippet.edges, b.snippet.edges);
                    prop_assert_eq!(&a.snippet.nodes, &b.snippet.nodes);
                }
            }
        }
        // The cached path does exactly one lookup per produced result.
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, total_results);
    }

    /// Greedy never beats the exact optimum, and both respect the bound.
    #[test]
    fn greedy_is_bounded_by_exact(
        spec in spec_strategy(),
        keywords in query_strategy(),
        bound in 0usize..10,
    ) {
        let doc = build(&spec);
        let extract = Extract::new(&doc);
        let engine = Engine::new(&doc);
        let query = KeywordQuery::from_keywords(keywords);
        for result in engine.search(&query, Algorithm::XSeek).into_iter().take(3) {
            let ilist = extract.ilist(&query, &result, &ExtractConfig::default());
            let greedy = greedy_select(&doc, &ilist, result.root, bound);
            let Some(exact) =
                exact_select(&doc, &ilist, result.root, bound, ExactLimits { max_states: 200_000 })
            else {
                continue; // search too large for the cap — skip this case
            };
            prop_assert!(greedy.coverage() <= exact.coverage());
            prop_assert!(exact.edges <= bound);
            prop_assert!(greedy.edges <= bound);
        }
    }

    /// Coverage is monotone in the bound for the greedy selector.
    #[test]
    fn greedy_coverage_monotone_in_bound(
        spec in spec_strategy(),
        keywords in query_strategy(),
    ) {
        let doc = build(&spec);
        let extract = Extract::new(&doc);
        let engine = Engine::new(&doc);
        let query = KeywordQuery::from_keywords(keywords);
        for result in engine.search(&query, Algorithm::XSeek).into_iter().take(2) {
            let ilist = extract.ilist(&query, &result, &ExtractConfig::default());
            let mut last = 0usize;
            for bound in [0usize, 2, 4, 8, 16, 32] {
                let out = greedy_select(&doc, &ilist, result.root, bound);
                prop_assert!(out.coverage() >= last, "bound {bound}");
                last = out.coverage();
            }
        }
    }

    /// A generous bound covers every IList item (everything in the IList
    /// exists in the result by construction).
    #[test]
    fn generous_bound_covers_everything(
        spec in spec_strategy(),
        keywords in query_strategy(),
    ) {
        let doc = build(&spec);
        let extract = Extract::new(&doc);
        let engine = Engine::new(&doc);
        let query = KeywordQuery::from_keywords(keywords);
        for result in engine.search(&query, Algorithm::XSeek) {
            let bound = doc.element_edges(result.root);
            let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(bound));
            prop_assert_eq!(
                out.snippet.coverage(),
                out.ilist.len(),
                "IList: {:?}",
                out.ilist.display(&doc)
            );
        }
    }

    /// Dominance-score arithmetic: per feature type, the scores of all
    /// values weighted by their counts average to exactly D(e,a)·N/N = D…
    /// i.e. Σ_v N(e,a,v)·D/N over values equals D, and every score is
    /// positive.
    #[test]
    fn dominance_scores_sum_to_domain_size(spec in spec_strategy()) {
        use extract_analyzer::{EntityModel, ResultStats};
        let doc = build(&spec);
        let model = EntityModel::analyze(&doc);
        let stats = ResultStats::compute(&doc, &model, doc.root());
        for ftype in stats.feature_types() {
            let d = stats.d_type(ftype) as f64;
            let n = stats.n_type(ftype) as f64;
            let sum: f64 = stats
                .value_table(ftype)
                .iter()
                .map(|row| row.count as f64 * d / n)
                .sum();
            prop_assert!((sum - d).abs() < 1e-9, "type sums to D: {sum} vs {d}");
        }
    }
}
