//! Reproduction of the paper's worked example: Figures 1, 2, 3 and the
//! Figure 5 demo session (experiments E1–E4 of DESIGN.md).

use extract_analyzer::{EntityModel, FeatureType, KeyCatalog, ResultStats};
use extract_core::dominance::{dominance_score, dominant_features};
use extract_core::{Extract, ExtractConfig};
use extract_datagen::retailer::{figure1_db, figure1_expected_ilist, figure1_result_root};
use extract_index::XmlIndex;
use extract_search::{Algorithm, Engine, KeywordQuery, QueryResult};
use extract_xml::Document;

fn ft(doc: &Document, e: &str, a: &str) -> FeatureType {
    FeatureType {
        entity: doc.symbols().get(e).unwrap(),
        attribute: doc.symbols().get(a).unwrap(),
    }
}

/// E1 — Figure 1: the query result of "Texas apparel retailer" and its
/// value-occurrence statistics.
#[test]
fn e1_figure1_statistics() {
    let doc = figure1_db();
    let model = EntityModel::analyze(&doc);

    // The search engine must find exactly the Brook Brothers retailer.
    let engine = Engine::new(&doc);
    let results = engine.search_str("Texas apparel retailer", Algorithm::XSeek);
    assert_eq!(results.len(), 1, "exactly one result");
    let bb = figure1_result_root(&doc);
    assert_eq!(results[0].root, bb);

    let stats = ResultStats::compute(&doc, &model, bb);

    // city: Houston 6, Austin 1, other cities (3): 3.
    let city = ft(&doc, "store", "city");
    assert_eq!(stats.n_value(city, "Houston"), 6);
    assert_eq!(stats.n_value(city, "Austin"), 1);
    assert_eq!(stats.n_type(city), 10);
    assert_eq!(stats.d_type(city), 5);

    // fitting: Man 600, Woman 360, Children 40.
    let fitting = ft(&doc, "clothes", "fitting");
    assert_eq!(stats.n_value(fitting, "man"), 600);
    assert_eq!(stats.n_value(fitting, "woman"), 360);
    assert_eq!(stats.n_value(fitting, "children"), 40);
    assert_eq!(stats.n_type(fitting), 1000);
    assert_eq!(stats.d_type(fitting), 3);

    // situation: Casual 700, Formal 300.
    let situation = ft(&doc, "clothes", "situation");
    assert_eq!(stats.n_value(situation, "casual"), 700);
    assert_eq!(stats.n_value(situation, "formal"), 300);
    assert_eq!(stats.n_type(situation), 1000);
    assert_eq!(stats.d_type(situation), 2);

    // category: Outwear 220, Suit 120, Skirt 80, Sweaters 70, others 580.
    let category = ft(&doc, "clothes", "category");
    assert_eq!(stats.n_value(category, "outwear"), 220);
    assert_eq!(stats.n_value(category, "suit"), 120);
    assert_eq!(stats.n_value(category, "skirt"), 80);
    assert_eq!(stats.n_value(category, "sweaters"), 70);
    assert_eq!(stats.n_type(category), 1070);
    assert_eq!(stats.d_type(category), 11);
}

/// E3 — Figure 3 (checked before E2 since the IList drives the snippet):
/// dominance scores and the exact IList.
#[test]
fn e3_figure3_ilist_and_dominance_scores() {
    let doc = figure1_db();
    let model = EntityModel::analyze(&doc);
    let bb = figure1_result_root(&doc);
    let stats = ResultStats::compute(&doc, &model, bb);

    // The six dominance scores the paper reports.
    let city = ft(&doc, "store", "city");
    let fitting = ft(&doc, "clothes", "fitting");
    let situation = ft(&doc, "clothes", "situation");
    let category = ft(&doc, "clothes", "category");
    assert_eq!(dominance_score(&stats, city, "Houston"), Some(3.0));
    assert_eq!(dominance_score(&stats, fitting, "man"), Some(1.8));
    assert!((dominance_score(&stats, fitting, "woman").unwrap() - 1.08).abs() < 1e-9);
    assert!((dominance_score(&stats, situation, "casual").unwrap() - 1.4).abs() < 1e-9);
    assert!((dominance_score(&stats, category, "outwear").unwrap() - 2.2617).abs() < 1e-3);
    assert!((dominance_score(&stats, category, "suit").unwrap() - 1.2336).abs() < 1e-3);

    // Non-trivial dominant features in score order: Houston, outwear, man,
    // casual, suit, woman (plus trivially dominant domain-1 features that
    // the IList dedups against keywords/key).
    let doms = dominant_features(&doc, &stats);
    let nontrivial: Vec<&str> = doms
        .iter()
        .filter(|d| !d.trivial)
        .map(|d| d.value.as_str())
        .collect();
    assert_eq!(nontrivial, vec!["Houston", "outwear", "man", "casual", "suit", "woman"]);

    // The full IList of Figure 3.
    let extract = Extract::new(&doc);
    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, bb);
    let ilist = extract.ilist(&query, &result, &ExtractConfig::default());
    assert_eq!(ilist.display(&doc), figure1_expected_ilist());
}

/// E2 — Figure 2: the snippet of the Figure 1 result. With bound 13 the
/// greedy covers all 12 IList items and produces exactly the published
/// tree.
#[test]
fn e2_figure2_snippet() {
    let doc = figure1_db();
    let extract = Extract::new(&doc);
    let bb = figure1_result_root(&doc);
    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, bb);

    let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(13));
    assert_eq!(out.snippet.edges, 13);
    assert_eq!(out.snippet.coverage(), 12, "all IList items fit in 13 edges");
    assert!(out.snippet.skipped.is_empty());

    let expected = "<retailer><name>Brook Brothers</name><product>apparel</product>\
         <store><state>Texas</state><city>Houston</city><merchandises>\
         <clothes><fitting>man</fitting><category>suit</category></clothes>\
         <clothes><fitting>woman</fitting><situation>casual</situation><category>outwear</category></clothes>\
         </merchandises></store></retailer>";
    assert_eq!(out.snippet.to_xml(), expected.replace("         ", ""));
}

/// E2 continued: the snippet degrades gracefully below the Figure 2 bound
/// and the bound is always respected.
#[test]
fn e2_bound_sweep_respects_limit_and_monotone_coverage() {
    let doc = figure1_db();
    let extract = Extract::new(&doc);
    let bb = figure1_result_root(&doc);
    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, bb);

    let mut last_coverage = 0;
    for bound in 0..=16 {
        let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(bound));
        assert!(out.snippet.edges <= bound, "bound {bound}");
        assert!(
            out.snippet.coverage() >= last_coverage,
            "coverage should not shrink when the bound grows (bound {bound})"
        );
        last_coverage = out.snippet.coverage();
    }
    assert_eq!(last_coverage, 12);
}

/// E4 — Figure 5: the demo session. Query "store texas" with bound 6 over
/// the demo store database: the Levis snippet shows jeans + man, the
/// ESprit snippet shows outwear + woman.
#[test]
fn e4_figure5_demo_session() {
    let doc = extract_datagen::retailer::demo_store_db();
    let extract = Extract::new(&doc);
    let out = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(6));
    assert_eq!(out.len(), 2, "Levis and ESprit");

    let levis = out
        .iter()
        .find(|s| s.snippet.to_xml().contains("Levis"))
        .expect("Levis snippet");
    let xml = levis.snippet.to_xml();
    assert!(levis.snippet.edges <= 6);
    assert!(xml.contains("<category>jeans</category>"), "{xml}");
    assert!(xml.contains("<fitting>man</fitting>"), "{xml}");
    assert!(xml.contains("<state>Texas</state>"), "{xml}");

    let esprit = out
        .iter()
        .find(|s| s.snippet.to_xml().contains("ESprit"))
        .expect("ESprit snippet");
    let xml = esprit.snippet.to_xml();
    assert!(esprit.snippet.edges <= 6);
    assert!(xml.contains("<category>outwear</category>"), "{xml}");
    assert!(xml.contains("<fitting>woman</fitting>"), "{xml}");

    // The two snippets must be distinguishable (they carry distinct keys).
    assert_ne!(levis.snippet.to_xml(), esprit.snippet.to_xml());
}

/// The key identification behind Figures 2/3: "Brook Brothers" is the key
/// of the BB result because retailer is the return entity and name is its
/// mined key.
#[test]
fn figure_key_identification() {
    let doc = figure1_db();
    let model = EntityModel::analyze(&doc);
    let catalog = KeyCatalog::mine(&doc, &model);
    let index = XmlIndex::build(&doc);
    let bb = figure1_result_root(&doc);
    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(&index, &query, bb);

    let re = extract_core::return_entity::identify(&doc, &model, &query, &result);
    assert_eq!(doc.resolve(re.label.unwrap()), "retailer");
    let key = extract_core::key::identify(&doc, &model, &catalog, &re).unwrap();
    assert_eq!(key.value, "Brook Brothers");
    assert_eq!(doc.resolve(key.attribute), "name");
}
