//! Query-result key identification (paper §2.2).
//!
//! "To make a snippet distinguishable … we propose to include the key of a
//! query result into the snippet, which resembles the title of a text
//! document." The key of the result is the value of the mined key attribute
//! of the (first) return-entity instance.

use extract_analyzer::{EntityModel, KeyCatalog};
use extract_xml::{Document, NodeId, Symbol};

use crate::return_entity::ReturnEntities;

/// The identified key of one query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultKey {
    /// The return entity's label.
    pub entity: Symbol,
    /// The key attribute's label.
    pub attribute: Symbol,
    /// The key value (e.g. "Brook Brothers").
    pub value: String,
    /// The attribute node instances carrying the key — one per return
    /// entity instance that has the key attribute.
    pub instances: Vec<NodeId>,
}

/// Identify the result key given the return entities. Returns `None` when
/// the return entity type has no mined key, or no instance carries a value.
pub fn identify(
    doc: &Document,
    model: &EntityModel,
    catalog: &KeyCatalog,
    return_entities: &ReturnEntities,
) -> Option<ResultKey> {
    let entity = return_entities.label?;
    let first = *return_entities.instances.first()?;
    let key_node = catalog.key_node(doc, model, first)?;
    let value = doc.text_of(key_node)?.to_string();
    let attribute = doc.node(key_node).label();
    // The key of *the result* is the first instance's value; record every
    // return-entity instance whose key carries the same value (normally
    // exactly one, keys being unique).
    let instances = return_entities
        .instances
        .iter()
        .filter_map(|&e| catalog.key_node(doc, model, e))
        .filter(|&n| doc.text_of(n) == Some(value.as_str()))
        .collect();
    Some(ResultKey { entity, attribute, value, instances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::return_entity;
    use extract_index::XmlIndex;
    use extract_search::{KeywordQuery, QueryResult};

    const STORES: &str = "<stores>\
        <store><name>Levis</name><state>Texas</state></store>\
        <store><name>ESprit</name><state>Texas</state></store>\
        </stores>";

    fn setup(xml: &str) -> (Document, EntityModel, KeyCatalog, XmlIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let model = EntityModel::analyze(&doc);
        let catalog = KeyCatalog::mine(&doc, &model);
        let index = XmlIndex::build(&doc);
        (doc, model, catalog, index)
    }

    #[test]
    fn key_of_store_result_is_its_name() {
        let (doc, model, catalog, index) = setup(STORES);
        let q = KeywordQuery::parse("store texas");
        let store2 = doc.elements_with_label("store")[1];
        let result = QueryResult::build(&index, &q, store2);
        let re = return_entity::identify(&doc, &model, &q, &result);
        let key = identify(&doc, &model, &catalog, &re).expect("store has a key");
        assert_eq!(doc.resolve(key.entity), "store");
        assert_eq!(doc.resolve(key.attribute), "name");
        assert_eq!(key.value, "ESprit");
        assert_eq!(key.instances.len(), 1);
        assert_eq!(doc.text_of(key.instances[0]), Some("ESprit"));
    }

    #[test]
    fn no_key_when_entity_has_none() {
        let (doc, model, catalog, index) =
            setup("<r><e><x/></e><e><x/></e></r>");
        let q = KeywordQuery::parse("e");
        let result = QueryResult::build(&index, &q, doc.root());
        let re = return_entity::identify(&doc, &model, &q, &result);
        assert!(identify(&doc, &model, &catalog, &re).is_none());
    }

    #[test]
    fn no_key_for_entityless_results() {
        let (doc, model, catalog, index) = setup("<a><b>k</b></a>");
        let q = KeywordQuery::parse("k");
        let result = QueryResult::build(&index, &q, doc.root());
        let re = return_entity::identify(&doc, &model, &q, &result);
        assert!(identify(&doc, &model, &catalog, &re).is_none());
    }

    #[test]
    fn first_instance_decides_the_value() {
        let (doc, model, catalog, index) = setup(STORES);
        let q = KeywordQuery::parse("store");
        // Result rooted at <stores> has two store instances; Levis is first.
        let result = QueryResult::build(&index, &q, doc.root());
        let re = return_entity::identify(&doc, &model, &q, &result);
        let key = identify(&doc, &model, &catalog, &re).unwrap();
        assert_eq!(key.value, "Levis");
    }
}
