//! Objective quality proxies for the paper's four snippet goals.
//!
//! The companion paper validates snippet quality with a user study we
//! cannot re-run; these metrics quantify the same four goals of §1
//! mechanically, so eXtract and the baselines can be compared (E9):
//!
//! * **coverage / weighted coverage** — how much of the IList (the
//!   information the paper argues *should* be in a snippet) made it in,
//!   optionally rank-discounted;
//! * **key presence** — distinguishability: is the result key shown?
//! * **dominant-feature recall** — representativeness;
//! * **keyword recall** — are the query keywords visible?
//! * **entity annotation** — self-containment: are shown values attached
//!   to named entities (1.0 for ancestor-closed trees, 0.0 for flat text);
//! * **distinguishability across results** — fraction of snippet pairs
//!   with distinct rendered content.

use std::collections::HashSet;

use extract_xml::{Document, NodeId};

use crate::baselines::BaselineContent;
use crate::ilist::{IList, IListItem};
use crate::snippet::Snippet;

/// Quality metrics of one snippet against its IList.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Covered fraction of all IList items.
    pub coverage: f64,
    /// Rank-discounted coverage: item at rank *r* (0-based) weighs
    /// `1/log2(r+2)`.
    pub weighted_coverage: f64,
    /// Is the result key present?
    pub key_present: bool,
    /// Covered fraction of dominant-feature items.
    pub feature_recall: f64,
    /// Covered fraction of keyword items.
    pub keyword_recall: f64,
    /// Self-containment: 1.0 when every shown value sits under its named
    /// entity (tree snippets), 0.0 for structure-free text.
    pub entity_annotation: f64,
    /// Snippet size in edges (trees) or words (text).
    pub size: usize,
}

/// Evaluate an eXtract snippet (tree-based, instance-level coverage).
pub fn evaluate_snippet(doc: &Document, ilist: &IList, snippet: &Snippet) -> QualityReport {
    let covered: Vec<bool> = ilist
        .items()
        .iter()
        .map(|ranked| ranked.instances.iter().any(|n| snippet.nodes.contains(n)))
        .collect();
    report_from_flags(doc, ilist, &covered, 1.0, snippet.edges)
}

/// Evaluate a baseline by *content*: an item counts as covered when its
/// display text appears in the rendered output (tree baselines also accept
/// instance-level coverage).
pub fn evaluate_baseline(
    doc: &Document,
    ilist: &IList,
    content: &BaselineContent,
) -> QualityReport {
    match content {
        BaselineContent::Tree { nodes, edges } => {
            let covered: Vec<bool> = ilist
                .items()
                .iter()
                .map(|ranked| ranked.instances.iter().any(|n| nodes.contains(n)))
                .collect();
            report_from_flags(doc, ilist, &covered, 1.0, *edges)
        }
        BaselineContent::Text(text) => {
            let lower = text.to_lowercase();
            let covered: Vec<bool> = ilist
                .items()
                .iter()
                .map(|ranked| {
                    let needle = ranked.item.display_text(doc).to_lowercase();
                    !needle.is_empty() && lower.contains(&needle)
                })
                .collect();
            report_from_flags(doc, ilist, &covered, 0.0, text.split_whitespace().count())
        }
    }
}

fn report_from_flags(
    _doc: &Document,
    ilist: &IList,
    covered: &[bool],
    entity_annotation: f64,
    size: usize,
) -> QualityReport {
    let total = ilist.len().max(1) as f64;
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / total;

    let mut weight_sum = 0.0;
    let mut weighted = 0.0;
    let mut key_present = false;
    let mut features = (0usize, 0usize);
    let mut keywords = (0usize, 0usize);
    for (rank, (ranked, &cov)) in ilist.items().iter().zip(covered).enumerate() {
        let w = 1.0 / ((rank + 2) as f64).log2();
        weight_sum += w;
        if cov {
            weighted += w;
        }
        match &ranked.item {
            IListItem::ResultKey { .. } => key_present |= cov,
            IListItem::Feature { .. } => {
                features.1 += 1;
                features.0 += cov as usize;
            }
            IListItem::Keyword(_) => {
                keywords.1 += 1;
                keywords.0 += cov as usize;
            }
            IListItem::EntityName { .. } => {}
        }
    }
    QualityReport {
        coverage,
        weighted_coverage: if weight_sum > 0.0 { weighted / weight_sum } else { 0.0 },
        key_present,
        feature_recall: ratio(features),
        keyword_recall: ratio(keywords),
        entity_annotation,
        size,
    }
}

fn ratio((num, den): (usize, usize)) -> f64 {
    if den == 0 {
        1.0 // vacuously perfect
    } else {
        num as f64 / den as f64
    }
}

/// Fraction of snippet pairs with distinct rendered content — the
/// "differentiate them from one another" goal measured across the result
/// list. 1.0 when all snippets differ (or with fewer than two snippets).
pub fn distinguishability(rendered: &[String]) -> f64 {
    let n = rendered.len();
    if n < 2 {
        return 1.0;
    }
    let mut distinct_pairs = 0usize;
    let mut total_pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total_pairs += 1;
            if rendered[i] != rendered[j] {
                distinct_pairs += 1;
            }
        }
    }
    distinct_pairs as f64 / total_pairs as f64
}

/// Convenience: instance-level coverage of an arbitrary node set (used by
/// tests and experiments comparing selectors).
pub fn items_covered_by(ilist: &IList, nodes: &HashSet<NodeId>) -> usize {
    ilist
        .items()
        .iter()
        .filter(|r| r.instances.iter().any(|n| nodes.contains(n)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{BaselineStrategy, BfsPrefix, TextWindows};
    use crate::ilist::build_ilist;
    use crate::selector::greedy_select;
    use crate::snippet::Snippet;
    use extract_analyzer::{EntityModel, KeyCatalog};
    use extract_index::XmlIndex;
    use extract_search::{KeywordQuery, QueryResult};

    fn setup() -> (Document, IList, QueryResult) {
        let doc = Document::parse_str(
            "<stores><store><name>Levis</name><state>Texas</state>\
             <merchandises>\
               <clothes><category>jeans</category></clothes>\
               <clothes><category>jeans</category></clothes>\
               <clothes><category>hats</category></clothes>\
             </merchandises></store>\
             <store><name>Gap</name><state>Ohio</state>\
             <merchandises><clothes><category>shirts</category></clothes></merchandises></store>\
             </stores>",
        )
        .unwrap();
        let model = EntityModel::analyze(&doc);
        let catalog = KeyCatalog::mine(&doc, &model);
        let index = XmlIndex::build(&doc);
        let q = KeywordQuery::parse("store texas");
        let root = doc.elements_with_label("store")[0];
        let result = QueryResult::build(&index, &q, root);
        let il = build_ilist(&doc, &model, &catalog, &q, &result, &Default::default());
        (doc, il, result)
    }

    #[test]
    fn generous_bound_gives_full_marks() {
        let (doc, il, result) = setup();
        let outcome = greedy_select(&doc, &il, result.root, 100);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        let q = evaluate_snippet(&doc, &il, &snip);
        assert_eq!(q.coverage, 1.0);
        assert_eq!(q.weighted_coverage, 1.0);
        assert!(q.key_present);
        assert_eq!(q.feature_recall, 1.0);
        assert_eq!(q.keyword_recall, 1.0);
        assert_eq!(q.entity_annotation, 1.0);
    }

    #[test]
    fn tight_bound_degrades_gracefully() {
        let (doc, il, result) = setup();
        let outcome = greedy_select(&doc, &il, result.root, 2);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        let q = evaluate_snippet(&doc, &il, &snip);
        assert!(q.coverage < 1.0);
        assert!(q.coverage > 0.0);
        // Weighted coverage favors the high-rank items the greedy covers
        // first.
        assert!(q.weighted_coverage >= q.coverage);
    }

    #[test]
    fn text_baseline_scores_zero_on_entity_annotation() {
        let (doc, il, result) = setup();
        let content = TextWindows.generate(&doc, &result, 10);
        let q = evaluate_baseline(&doc, &il, &content);
        assert_eq!(q.entity_annotation, 0.0);
    }

    #[test]
    fn bfs_baseline_misses_deep_features_at_small_bounds() {
        let (doc, il, result) = setup();
        let content = BfsPrefix.generate(&doc, &result, 3);
        let q_bfs = evaluate_baseline(&doc, &il, &content);
        let outcome = greedy_select(&doc, &il, result.root, 3);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        let q_ex = evaluate_snippet(&doc, &il, &snip);
        assert!(
            q_ex.weighted_coverage >= q_bfs.weighted_coverage,
            "eXtract {:?} vs BFS {:?}",
            q_ex.weighted_coverage,
            q_bfs.weighted_coverage
        );
    }

    #[test]
    fn distinguishability_extremes() {
        assert_eq!(distinguishability(&[]), 1.0);
        assert_eq!(distinguishability(&["a".into()]), 1.0);
        assert_eq!(distinguishability(&["a".into(), "a".into()]), 0.0);
        assert_eq!(distinguishability(&["a".into(), "b".into()]), 1.0);
        let mixed = distinguishability(&["a".into(), "a".into(), "b".into()]);
        assert!((mixed - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn items_covered_by_counts_instances() {
        let (doc, il, result) = setup();
        let outcome = greedy_select(&doc, &il, result.root, 100);
        assert_eq!(items_covered_by(&il, &outcome.nodes), il.len());
        let empty: HashSet<NodeId> = [result.root].into_iter().collect();
        assert!(items_covered_by(&il, &empty) >= 1, "root-matching items count");
    }
}
