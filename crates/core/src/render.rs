//! Result-page rendering: JSON export and the demo's HTML results page.
//!
//! The original system presented snippets through a web UI (paper §4,
//! Figure 5: query box, per-result snippet, "view full result" link). This
//! module renders the same artifacts: [`results_page`] produces a
//! self-contained HTML page, and [`snippet_json`] a machine-readable
//! export — both dependency-free.

use std::fmt::Write as _;

use extract_xml::{Document, NodeId};

use crate::ilist::IListItem;
use crate::pipeline::SnippetedResult;

/// Escape text for HTML element content.
fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape text for a JSON string literal (without the quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_node_html(doc: &Document, node: NodeId, out: &mut String) {
    let n = doc.node(node);
    if n.is_text() {
        let _ = write!(out, "<span class=\"val\">{}</span>", html_escape(n.text().unwrap_or("")));
        return;
    }
    let label = html_escape(doc.resolve(n.label()));
    if let Some(value) = doc.text_of(node) {
        if doc.child_count(node) == 1 {
            let _ = write!(
                out,
                "<li><span class=\"attr\">{label}</span>: <span class=\"val\">{}</span></li>",
                html_escape(value)
            );
            return;
        }
    }
    let _ = write!(out, "<li><span class=\"elem\">{label}</span>");
    if !n.children().is_empty() {
        out.push_str("<ul>");
        for &c in n.children() {
            render_node_html(doc, c, out);
        }
        out.push_str("</ul>");
    }
    out.push_str("</li>");
}

/// Render one snippet as a nested HTML list.
pub fn snippet_html(result: &SnippetedResult) -> String {
    let tree = result.snippet.tree();
    let mut out = String::from("<ul class=\"snippet\">");
    render_node_html(tree, tree.root(), &mut out);
    out.push_str("</ul>");
    out
}

/// A self-contained HTML results page in the spirit of the Figure 5 demo
/// UI: query header, one card per result with its snippet and a summary of
/// the covered information.
pub fn results_page(doc: &Document, query: &str, results: &[SnippetedResult]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>eXtract results</title>\n\
         <style>\n\
         body { font-family: sans-serif; margin: 2em; }\n\
         .card { border: 1px solid #ccc; border-radius: 6px; padding: 1em; margin: 1em 0; }\n\
         .snippet, .snippet ul { list-style: none; padding-left: 1.2em; }\n\
         .elem { color: #7b2d8b; font-weight: bold; }\n\
         .attr { color: #1d4ed8; }\n\
         .val { color: #166534; }\n\
         .meta { color: #666; font-size: 0.85em; }\n\
         </style></head><body>\n",
    );
    let _ = write!(
        out,
        "<h1>eXtract</h1>\n<p>query: <b>{}</b> — {} result(s)</p>\n",
        html_escape(query),
        results.len()
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "<div class=\"card\">\n<h3>result {} — {}</h3>\n",
            i + 1,
            html_escape(&r.snippet.summary_line(doc))
        );
        out.push_str(&snippet_html(r));
        let _ = write!(
            out,
            "\n<p class=\"meta\">{} edges · {}/{} information items · \
             <a href=\"#result-{}\">view full result ({} nodes)</a></p>\n</div>\n",
            r.snippet.edges,
            r.snippet.coverage(),
            r.ilist.len(),
            i + 1,
            r.result.size(doc)
        );
    }
    out.push_str("</body></html>\n");
    out
}

/// Machine-readable JSON export of one snippet: root label, size, covered
/// and skipped items, and the snippet XML.
pub fn snippet_json(doc: &Document, result: &SnippetedResult) -> String {
    let mut out = String::from("{");
    let root_label = doc.label_str(result.result.root).unwrap_or("");
    let _ = write!(
        out,
        "\"root\":\"{}\",\"edges\":{},\"coverage\":{},\"items\":{},",
        json_escape(root_label),
        result.snippet.edges,
        result.snippet.coverage(),
        result.ilist.len()
    );
    out.push_str("\"covered\":[");
    for (i, item) in result.snippet.covered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(&item_text(doc, item)));
    }
    out.push_str("],\"skipped\":[");
    for (i, item) in result.snippet.skipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(&item_text(doc, item)));
    }
    let _ = write!(out, "],\"xml\":\"{}\"", json_escape(&result.snippet.to_xml()));
    out.push('}');
    out
}

fn item_text(doc: &Document, item: &IListItem) -> String {
    item.display_text(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extract, ExtractConfig};

    fn results() -> (Document, Vec<SnippetedResult>) {
        let doc = Document::parse_str(
            "<stores><store><name>Levis &amp; Co</name><state>Texas</state>\
             <merchandises><clothes><category>jeans</category></clothes>\
             <clothes><category>jeans</category></clothes></merchandises></store>\
             <store><name>Gap</name><state>Ohio</state></store></stores>",
        )
        .unwrap();
        let extract = Extract::new(&doc);
        let out = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(6));
        (doc, out)
    }

    #[test]
    fn html_page_is_well_formed_enough() {
        let (doc, out) = results();
        let page = results_page(&doc, "store texas", &out);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("store texas"));
        assert!(page.contains("class=\"card\""));
        assert!(page.contains("Levis &amp; Co"), "values are escaped: {page}");
        assert!(page.ends_with("</body></html>\n"));
        // Balanced list tags.
        assert_eq!(page.matches("<ul").count(), page.matches("</ul>").count());
        assert_eq!(page.matches("<li").count(), page.matches("</li>").count());
    }

    #[test]
    fn snippet_html_renders_attributes_inline() {
        let (_, out) = results();
        let html = snippet_html(&out[0]);
        assert!(html.contains("class=\"attr\""), "{html}");
        assert!(html.contains("jeans"), "{html}");
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let (doc, out) = results();
        let json = snippet_json(&doc, &out[0]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"root\":\"store\""), "{json}");
        assert!(json.contains("\"edges\":"), "{json}");
        assert!(json.contains("\\\"") || !json.contains("\" "), "quotes escaped: {json}");
        // Escaped XML payload contains no raw control characters.
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\u{0}'), "{json}");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
