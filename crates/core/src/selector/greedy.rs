//! The greedy instance selector (paper §2.4).

use extract_xml::{Document, NodeId};

use crate::ilist::IList;
use crate::selector::{SelectionOutcome, SnippetTree};

/// How the greedy chooses among an item's instances. The paper's intuition
/// — "we should select instances of each item such that they are close to
/// each other, so as to occupy a small space" — corresponds to
/// [`CheapestInstance`](InstancePolicy::CheapestInstance); the ablation
/// policy [`FirstInstance`](InstancePolicy::FirstInstance) ignores the
/// growing snippet and always takes the first instance in document order
/// (experiment E13 quantifies the difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstancePolicy {
    /// Fewest new edges; ties toward the earliest instance (the paper).
    #[default]
    CheapestInstance,
    /// Always the first instance in document order (ablation).
    FirstInstance,
}

/// Greedy selection with the paper's cheapest-instance policy: items in
/// IList rank order; per item, the instance adding the fewest new edges,
/// ties broken toward the earliest instance in document order. Items whose
/// chosen instance exceeds the remaining budget are skipped; later items
/// are still attempted.
pub fn greedy_select(
    doc: &Document,
    ilist: &IList,
    root: NodeId,
    bound: usize,
) -> SelectionOutcome {
    greedy_select_with_policy(doc, ilist, root, bound, InstancePolicy::CheapestInstance)
}

/// [`greedy_select`] with an explicit instance policy.
pub fn greedy_select_with_policy(
    doc: &Document,
    ilist: &IList,
    root: NodeId,
    bound: usize,
    policy: InstancePolicy,
) -> SelectionOutcome {
    let mut tree = SnippetTree::new(doc, root);
    let mut covered = Vec::new();
    let mut skipped = Vec::new();

    for (idx, ranked) in ilist.items().iter().enumerate() {
        let budget = bound - tree.edges();
        let mut best: Option<(usize, NodeId)> = None;
        for &inst in &ranked.instances {
            let Some(cost) = tree.cost(inst) else {
                continue; // outside the result subtree
            };
            match policy {
                InstancePolicy::CheapestInstance => {
                    // Strictly-less keeps the earliest instance on ties
                    // (instances arrive in document order).
                    if best.map(|(c, _)| cost < c).unwrap_or(true) {
                        best = Some((cost, inst));
                        if cost == 0 {
                            break; // cannot do better
                        }
                    }
                }
                InstancePolicy::FirstInstance => {
                    best = Some((cost, inst));
                    break; // take the first in-subtree instance, whatever it costs
                }
            }
        }
        match best {
            Some((cost, inst)) if cost <= budget => {
                tree.add(inst);
                covered.push(idx);
            }
            _ => skipped.push(idx),
        }
    }

    let edges = tree.edges();
    SelectionOutcome { covered, skipped, nodes: tree.into_nodes(), edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilist::{IList, IListItem, RankedItem};
    use crate::return_entity::{ReturnEntities, ReturnEntityReason};
    use extract_xml::Document;

    /// Hand-build an IList from (display, instances) pairs — unit tests for
    /// the selector shouldn't depend on the full pipeline.
    fn fake_ilist(doc: &Document, entries: Vec<Vec<NodeId>>) -> IList {
        let items = entries
            .into_iter()
            .enumerate()
            .map(|(i, instances)| RankedItem {
                item: IListItem::Keyword(format!("item{i}")),
                instances,
            })
            .collect::<Vec<_>>();
        IList::from_parts_for_tests(
            items,
            ReturnEntities {
                label: None,
                reason: ReturnEntityReason::HighestEntity,
                instances: vec![doc.root()],
            },
            None,
        )
    }

    fn label(doc: &Document, l: &str) -> NodeId {
        doc.first_element_with_label(l).unwrap()
    }

    #[test]
    fn picks_cheapest_instance() {
        // item0 can be covered at `cheap` (depth 1) or `deep` (depth 3).
        let doc = Document::parse_str("<r><cheap/><x><y><deep/></y></x></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![label(&doc, "cheap"), label(&doc, "deep")]]);
        let out = greedy_select(&doc, &il, doc.root(), 10);
        assert_eq!(out.covered, vec![0]);
        assert_eq!(out.edges, 1);
        assert!(out.nodes.contains(&label(&doc, "cheap")));
        assert!(!out.nodes.contains(&label(&doc, "deep")));
    }

    #[test]
    fn document_order_breaks_ties() {
        let doc = Document::parse_str("<r><a/><b/></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![label(&doc, "a"), label(&doc, "b")]]);
        let out = greedy_select(&doc, &il, doc.root(), 10);
        assert!(out.nodes.contains(&label(&doc, "a")));
        assert!(!out.nodes.contains(&label(&doc, "b")));
    }

    #[test]
    fn prefers_instances_inside_the_existing_tree() {
        // After covering item0 at /r/s1/p, item1's instance under s1 is
        // cheaper than the one under s2.
        let doc = Document::parse_str(
            "<r><s1><p/><q1/></s1><s2><q2/></s2></r>",
        )
        .unwrap();
        let il = fake_ilist(
            &doc,
            vec![
                vec![label(&doc, "p")],
                vec![label(&doc, "q1"), label(&doc, "q2")],
            ],
        );
        let out = greedy_select(&doc, &il, doc.root(), 10);
        assert!(out.nodes.contains(&label(&doc, "q1")));
        assert!(!out.nodes.contains(&label(&doc, "s2")));
        assert_eq!(out.edges, 3); // s1, p, q1
    }

    #[test]
    fn skips_unaffordable_items_but_takes_later_cheap_ones() {
        let doc = Document::parse_str(
            "<r><deep1><deep2><deep3><costly/></deep3></deep2></deep1><cheap/></r>",
        )
        .unwrap();
        let il = fake_ilist(
            &doc,
            vec![vec![label(&doc, "costly")], vec![label(&doc, "cheap")]],
        );
        let out = greedy_select(&doc, &il, doc.root(), 2);
        assert_eq!(out.covered, vec![1], "costly (4 edges) skipped, cheap taken");
        assert_eq!(out.skipped, vec![0]);
        assert_eq!(out.edges, 1);
    }

    #[test]
    fn zero_budget_covers_only_free_items() {
        let doc = Document::parse_str("<r><a/></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![doc.root()], vec![label(&doc, "a")]]);
        let out = greedy_select(&doc, &il, doc.root(), 0);
        assert_eq!(out.covered, vec![0], "the root item is free");
        assert_eq!(out.edges, 0);
    }

    #[test]
    fn shared_ancestors_are_paid_once() {
        let doc = Document::parse_str("<r><s><a/><b/></s></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![label(&doc, "a")], vec![label(&doc, "b")]]);
        let out = greedy_select(&doc, &il, doc.root(), 10);
        assert_eq!(out.edges, 3, "s is shared: s+a+b");
        assert_eq!(out.covered, vec![0, 1]);
    }

    #[test]
    fn items_without_instances_are_skipped() {
        let doc = Document::parse_str("<r><a/></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![], vec![label(&doc, "a")]]);
        let out = greedy_select(&doc, &il, doc.root(), 10);
        assert_eq!(out.covered, vec![1]);
        assert_eq!(out.skipped, vec![0]);
    }

    #[test]
    fn instances_outside_the_root_are_ignored() {
        let doc = Document::parse_str("<r><s1><a/></s1><s2><b/></s2></r>").unwrap();
        let s1 = label(&doc, "s1");
        let il = fake_ilist(&doc, vec![vec![label(&doc, "b"), label(&doc, "a")]]);
        let out = greedy_select(&doc, &il, s1, 10);
        // b is outside s1; a (inside) is chosen even though b precedes it.
        assert_eq!(out.covered, vec![0]);
        assert!(out.nodes.contains(&label(&doc, "a")));
    }

    #[test]
    fn first_instance_policy_ignores_cost() {
        // item0 coverable at cheap `a` (1 edge) or deep `x` (3 edges);
        // first-instance takes whatever comes first in document order.
        let doc = Document::parse_str("<r><p><q><x/></q></p><a/></r>").unwrap();
        let x = label(&doc, "x");
        let a = label(&doc, "a");
        let il = fake_ilist(&doc, vec![vec![x, a]]);
        let first = greedy_select_with_policy(
            &doc,
            &il,
            doc.root(),
            10,
            InstancePolicy::FirstInstance,
        );
        assert!(first.nodes.contains(&x), "took the doc-order-first instance");
        assert_eq!(first.edges, 3);
        let cheap = greedy_select(&doc, &il, doc.root(), 10);
        assert!(cheap.nodes.contains(&a));
        assert_eq!(cheap.edges, 1);
    }

    #[test]
    fn first_instance_policy_still_respects_bound() {
        let doc = Document::parse_str("<r><p><q><x/></q></p><a/></r>").unwrap();
        let il = fake_ilist(&doc, vec![vec![label(&doc, "x")], vec![label(&doc, "a")]]);
        let out = greedy_select_with_policy(
            &doc,
            &il,
            doc.root(),
            2,
            InstancePolicy::FirstInstance,
        );
        assert_eq!(out.covered, vec![1], "x (3 edges) skipped under bound 2");
        assert!(out.edges <= 2);
    }

    #[test]
    fn first_instance_skips_out_of_subtree_instances() {
        let doc = Document::parse_str("<r><s1><a/></s1><s2><b/></s2></r>").unwrap();
        let s2 = label(&doc, "s2");
        // Instance list starts with a node outside s2.
        let il = fake_ilist(&doc, vec![vec![label(&doc, "a"), label(&doc, "b")]]);
        let out =
            greedy_select_with_policy(&doc, &il, s2, 10, InstancePolicy::FirstInstance);
        assert_eq!(out.covered, vec![0]);
        assert!(out.nodes.contains(&label(&doc, "b")));
    }

    #[test]
    fn never_exceeds_bound() {
        let doc = Document::parse_str(
            "<r><a><x/></a><b><y/></b><c><z/></c></r>",
        )
        .unwrap();
        let il = fake_ilist(
            &doc,
            vec![
                vec![label(&doc, "x")],
                vec![label(&doc, "y")],
                vec![label(&doc, "z")],
            ],
        );
        for bound in 0..8 {
            let out = greedy_select(&doc, &il, doc.root(), bound);
            assert!(out.edges <= bound, "bound {bound} violated: {}", out.edges);
        }
    }
}
