//! Exact instance selection by depth-first branch-and-bound.
//!
//! The optimization problem — pick at most one instance per IList item so
//! that the ancestor closure under the root has at most *B* edges and the
//! number of covered items is maximum — is NP-hard, so this solver is
//! exponential in the worst case. It exists to *measure* the greedy
//! algorithm's optimality gap (experiment E8) on small inputs, and refuses
//! to run past a configurable search budget instead of hanging.
//!
//! Ties between optima are broken toward lexicographically-earlier covered
//! item sets (the same preference order as the greedy), so results are
//! deterministic.

use extract_xml::{Document, NodeId};

use crate::ilist::IList;
use crate::selector::{SelectionOutcome, SnippetTree};

/// Resource limits for the exact search.
#[derive(Debug, Clone, Copy)]
pub struct ExactLimits {
    /// Maximum number of explored search states.
    pub max_states: u64,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits { max_states: 2_000_000 }
    }
}

struct Search<'a> {
    ilist: &'a IList,
    bound: usize,
    limits: ExactLimits,
    states: u64,
    best: Option<SelectionOutcome>,
}

/// Exhaustively find a selection with maximum coverage. Returns `None` if
/// the search exceeded `limits.max_states` (the caller should fall back to
/// the greedy result).
pub fn exact_select(
    doc: &Document,
    ilist: &IList,
    root: NodeId,
    bound: usize,
    limits: ExactLimits,
) -> Option<SelectionOutcome> {
    let mut search = Search { ilist, bound, limits, states: 0, best: None };
    let tree = SnippetTree::new(doc, root);
    let mut covered: Vec<usize> = Vec::new();
    if !search.dfs(0, tree, &mut covered) {
        return None; // budget exhausted
    }
    search.best.or_else(|| {
        // No items at all: the empty selection is optimal.
        Some(SelectionOutcome {
            covered: Vec::new(),
            skipped: (0..ilist.len()).collect(),
            nodes: SnippetTree::new(doc, root).into_nodes(),
            edges: 0,
        })
    })
}

impl Search<'_> {
    /// Returns `false` when the state budget is exhausted.
    fn dfs(&mut self, item: usize, tree: SnippetTree<'_>, covered: &mut Vec<usize>) -> bool {
        self.states += 1;
        if self.states > self.limits.max_states {
            return false;
        }
        // Upper bound: everything remaining could still be covered.
        let optimistic = covered.len() + (self.ilist.len() - item);
        if let Some(best) = &self.best {
            if optimistic < best.coverage()
                || (optimistic == best.coverage() && !lex_could_beat(covered, &best.covered))
            {
                return true; // prune
            }
        }
        if item == self.ilist.len() {
            let candidate_better = match &self.best {
                None => true,
                Some(best) => {
                    covered.len() > best.coverage()
                        || (covered.len() == best.coverage()
                            && (covered.as_slice() < best.covered.as_slice()
                                || (covered.as_slice() == best.covered.as_slice()
                                    && tree.edges() < best.edges)))
                }
            };
            if candidate_better {
                let edges = tree.edges();
                let skipped =
                    (0..self.ilist.len()).filter(|i| !covered.contains(i)).collect();
                self.best = Some(SelectionOutcome {
                    covered: covered.clone(),
                    skipped,
                    nodes: tree.nodes().clone(),
                    edges,
                });
            }
            return true;
        }

        // Candidate instances, cheapest first for better pruning; dedup
        // equal-cost instances that lead to identical trees is not easy in
        // general, but skipping same-cost duplicates of *zero* cost is: one
        // zero-cost branch subsumes the rest.
        let mut options: Vec<(usize, NodeId)> = self.ilist.items()[item]
            .instances
            .iter()
            .filter_map(|&inst| tree.cost(inst).map(|c| (c, inst)))
            .filter(|&(c, _)| tree.edges() + c <= self.bound)
            .collect();
        options.sort_by_key(|&(c, inst)| (c, inst));
        if let Some(&(0, inst)) = options.first() {
            // Zero marginal cost: taking it is never worse than skipping or
            // paying more — branch once.
            let mut t = tree.clone();
            t.add(inst);
            covered.push(item);
            let ok = self.dfs(item + 1, t, covered);
            covered.pop();
            return ok;
        }
        for (_, inst) in options {
            let mut t = tree.clone();
            t.add(inst);
            covered.push(item);
            let ok = self.dfs(item + 1, t, covered);
            covered.pop();
            if !ok {
                return false;
            }
        }
        // Skip this item.
        self.dfs(item + 1, tree, covered)
    }
}

/// Can `prefix ++ anything` still be lexicographically ≤ `best`? A cheap
/// necessary condition used only for tie pruning.
fn lex_could_beat(prefix: &[usize], best: &[usize]) -> bool {
    for (p, b) in prefix.iter().zip(best.iter()) {
        match p.cmp(b) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilist::{IListItem, RankedItem};
    use crate::return_entity::{ReturnEntities, ReturnEntityReason};
    use crate::selector::greedy_select;

    fn fake_ilist(doc: &Document, entries: Vec<Vec<NodeId>>) -> IList {
        let items = entries
            .into_iter()
            .enumerate()
            .map(|(i, instances)| RankedItem {
                item: IListItem::Keyword(format!("item{i}")),
                instances,
            })
            .collect::<Vec<_>>();
        IList::from_parts_for_tests(
            items,
            ReturnEntities {
                label: None,
                reason: ReturnEntityReason::HighestEntity,
                instances: vec![doc.root()],
            },
            None,
        )
    }

    fn label(doc: &Document, l: &str) -> NodeId {
        doc.first_element_with_label(l).unwrap()
    }

    #[test]
    fn exact_beats_greedy_on_the_classic_trap() {
        // Greedy covers item0 cheaply at `a` (1 edge), then item1 and item2
        // need `p/x` and `p/y` (2+... ), exceeding bound 4; optimal covers
        // item0 at p/x0 sharing p with the others.
        let doc = Document::parse_str(
            "<r><a/><p><x0/><x/><y/></p></r>",
        )
        .unwrap();
        let il = fake_ilist(
            &doc,
            vec![
                vec![label(&doc, "a"), label(&doc, "x0")],
                vec![label(&doc, "x")],
                vec![label(&doc, "y")],
            ],
        );
        let bound = 4;
        let greedy = greedy_select(&doc, &il, doc.root(), bound);
        // Greedy: a(1) + p,x(2) = 3 edges, then y needs 1 more = 4 ⇒ all 3
        // covered with 4 edges… greedy actually survives here; tighten:
        let out = exact_select(&doc, &il, doc.root(), bound, ExactLimits::default()).unwrap();
        assert!(out.coverage() >= greedy.coverage());
    }

    #[test]
    fn exact_strictly_beats_greedy_when_sharing_matters() {
        // item0 is coverable at the cheap standalone `a` (1 edge) or at `x`
        // (2 edges: p+x) — where `x` *also* covers item1 for free.
        let doc = Document::parse_str("<r><a/><p><x/><y/><z/></p></r>").unwrap();
        let il = fake_ilist(
            &doc,
            vec![
                vec![label(&doc, "a"), label(&doc, "x")],
                vec![label(&doc, "x")],
                vec![label(&doc, "y")],
                vec![label(&doc, "z")],
            ],
        );
        // Bound 4. Greedy: a(1) for item0, p+x(2)=3 for item1, y(+1)=4 for
        // item2, z does not fit ⇒ coverage 3.
        let greedy = greedy_select(&doc, &il, doc.root(), 4);
        assert_eq!(greedy.coverage(), 3, "greedy wastes an edge on `a`");
        // Optimal: x(2) covers item0, item1 free, y(+1)=3, z(+1)=4 ⇒ 4.
        let exact = exact_select(&doc, &il, doc.root(), 4, ExactLimits::default()).unwrap();
        assert_eq!(exact.coverage(), 4, "optimal shares the p subtree");
        assert!(exact.edges <= 4);
        // With a looser bound both cover everything.
        let greedy5 = greedy_select(&doc, &il, doc.root(), 5);
        let exact5 = exact_select(&doc, &il, doc.root(), 5, ExactLimits::default()).unwrap();
        assert_eq!(greedy5.coverage(), 4);
        assert_eq!(exact5.coverage(), 4);
    }

    #[test]
    fn exact_never_below_greedy_and_respects_bound() {
        let doc = Document::parse_str(
            "<r><s><a/><b/></s><t><c/><d/></t><u><e/></u></r>",
        )
        .unwrap();
        let il = fake_ilist(
            &doc,
            vec![
                vec![label(&doc, "a"), label(&doc, "c")],
                vec![label(&doc, "b"), label(&doc, "d")],
                vec![label(&doc, "e")],
                vec![label(&doc, "c")],
            ],
        );
        for bound in 0..8 {
            let greedy = greedy_select(&doc, &il, doc.root(), bound);
            let exact =
                exact_select(&doc, &il, doc.root(), bound, ExactLimits::default()).unwrap();
            assert!(exact.coverage() >= greedy.coverage(), "bound {bound}");
            assert!(exact.edges <= bound, "bound {bound}: {} edges", exact.edges);
        }
    }

    #[test]
    fn empty_ilist_yields_empty_selection() {
        let doc = Document::parse_str("<r><a/></r>").unwrap();
        let il = fake_ilist(&doc, vec![]);
        let out = exact_select(&doc, &il, doc.root(), 5, ExactLimits::default()).unwrap();
        assert_eq!(out.coverage(), 0);
        assert_eq!(out.edges, 0);
    }

    #[test]
    fn state_budget_aborts_search() {
        // Eight items with disjoint depth-2 instances and a bound that only
        // fits two of them: the take/skip lattice blows past a 100-state
        // cap (the zero-cost shortcut never applies since instances are
        // disjoint).
        let mut xml = String::from("<r>");
        for i in 0..16 {
            xml.push_str(&format!("<g{i}><l{i}/></g{i}>"));
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let il = fake_ilist(
            &doc,
            (0..8)
                .map(|i| {
                    vec![
                        label(&doc, &format!("l{}", 2 * i)),
                        label(&doc, &format!("l{}", 2 * i + 1)),
                    ]
                })
                .collect(),
        );
        let out = exact_select(&doc, &il, doc.root(), 5, ExactLimits { max_states: 100 });
        assert!(out.is_none());
    }
}
