//! The Instance Selector (paper §2.4).
//!
//! Given the ranked IList, a result root and a size bound *B* (element
//! edges), select one instance per item so that the snippet tree — the
//! ancestor closure of the chosen instances under the root — covers as many
//! items as possible within *B* edges.
//!
//! **Hardness.** Maximizing the number of covered items within a bounded
//! tree is NP-hard (the companion SIGMOD 2008 paper proves it; the
//! intuition is a reduction from Maximum Coverage: items are sets, the
//! shared ancestor paths let instances "pay once" for covering several
//! items, and the edge budget plays the role of the cover budget).
//!
//! **Greedy** ([`greedy_select`]): walk items in rank order; for each item
//! pick the instance whose ancestor closure adds the fewest new edges to
//! the current snippet (ties: the earliest instance in document order —
//! instances of already-included subtrees therefore cluster, which is
//! exactly the paper's "choose instances close to each other" intuition).
//! Items that do not fit within the remaining budget are skipped; later,
//! cheaper items may still fit.
//!
//! **Exact** ([`exact_select`]): depth-first branch-and-bound over
//! per-item instance choices, used by experiment E8 to measure the greedy's
//! optimality gap on small inputs.

mod exact;
mod greedy;
mod tree;

pub use exact::{exact_select, ExactLimits};
pub use greedy::{greedy_select, greedy_select_with_policy, InstancePolicy};
pub use tree::SnippetTree;

use extract_xml::NodeId;
use std::collections::HashSet;

/// The outcome of instance selection.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Indices (into the IList) of covered items, in rank order.
    pub covered: Vec<usize>,
    /// Indices of items that were skipped (did not fit or had no instance).
    pub skipped: Vec<usize>,
    /// The chosen element nodes (ancestor-closed, including the root).
    pub nodes: HashSet<NodeId>,
    /// Number of element edges in the snippet tree.
    pub edges: usize,
}

impl SelectionOutcome {
    /// Number of covered items.
    pub fn coverage(&self) -> usize {
        self.covered.len()
    }
}
