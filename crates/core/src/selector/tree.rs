//! The growing snippet tree: an ancestor-closed set of element nodes under
//! a result root, with O(depth) marginal-cost queries.

use std::collections::HashSet;

use extract_xml::{Document, NodeId};

/// A snippet tree under construction.
#[derive(Debug, Clone)]
pub struct SnippetTree<'d> {
    doc: &'d Document,
    root: NodeId,
    included: HashSet<NodeId>,
    edges: usize,
}

impl<'d> SnippetTree<'d> {
    /// Start a tree containing only `root` (zero edges).
    pub fn new(doc: &'d Document, root: NodeId) -> SnippetTree<'d> {
        let mut included = HashSet::with_capacity(32);
        included.insert(root);
        SnippetTree { doc, root, included, edges: 0 }
    }

    /// The result root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Current number of element edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Whether `node` is already included.
    pub fn contains(&self, node: NodeId) -> bool {
        self.included.contains(&node)
    }

    /// Number of **new** edges that including `node` (and its ancestors up
    /// to the nearest included node) would add; `None` if `node` is not in
    /// the root's subtree.
    pub fn cost(&self, node: NodeId) -> Option<usize> {
        for (cost, a) in self.doc.ancestors_or_self(node).enumerate() {
            if self.included.contains(&a) {
                return Some(cost);
            }
        }
        // Fell off the document root without meeting an included node (the
        // snippet root at the latest): `node` lies outside the result
        // subtree.
        None
    }

    /// Include `node` and its ancestors up to the nearest included node.
    /// Returns the number of edges added.
    ///
    /// # Panics
    /// Panics if `node` is outside the root's subtree.
    pub fn add(&mut self, node: NodeId) -> usize {
        let mut path: Vec<NodeId> = Vec::new();
        let mut connected = false;
        for a in self.doc.ancestors_or_self(node) {
            if self.included.contains(&a) {
                connected = true;
                break;
            }
            path.push(a);
        }
        assert!(connected, "node {node} is outside the snippet root's subtree");
        let added = path.len();
        for n in path {
            self.included.insert(n);
        }
        self.edges += added;
        added
    }

    /// The included node set (ancestor-closed, root included).
    pub fn nodes(&self) -> &HashSet<NodeId> {
        &self.included
    }

    /// Consume into the node set.
    pub fn into_nodes(self) -> HashSet<NodeId> {
        self.included
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<r><a><b><c>x</c></b></a><d><e>y</e></d></r>",
        )
        .unwrap()
    }

    #[test]
    fn starts_with_root_only() {
        let d = doc();
        let t = SnippetTree::new(&d, d.root());
        assert_eq!(t.edges(), 0);
        assert!(t.contains(d.root()));
        assert_eq!(t.cost(d.root()), Some(0));
    }

    #[test]
    fn cost_counts_uncovered_ancestors() {
        let d = doc();
        let t = SnippetTree::new(&d, d.root());
        let c = d.first_element_with_label("c").unwrap();
        assert_eq!(t.cost(c), Some(3)); // a, b, c
        let a = d.first_element_with_label("a").unwrap();
        assert_eq!(t.cost(a), Some(1));
    }

    #[test]
    fn add_updates_costs_and_edges() {
        let d = doc();
        let mut t = SnippetTree::new(&d, d.root());
        let b = d.first_element_with_label("b").unwrap();
        assert_eq!(t.add(b), 2);
        assert_eq!(t.edges(), 2);
        let c = d.first_element_with_label("c").unwrap();
        assert_eq!(t.cost(c), Some(1), "only c itself is new now");
        assert_eq!(t.add(c), 1);
        assert_eq!(t.edges(), 3);
        assert_eq!(t.add(c), 0, "re-adding is free");
    }

    #[test]
    fn costs_relative_to_inner_root() {
        let d = doc();
        let a = d.first_element_with_label("a").unwrap();
        let t = SnippetTree::new(&d, a);
        let c = d.first_element_with_label("c").unwrap();
        assert_eq!(t.cost(c), Some(2)); // b, c
        // e is outside a's subtree.
        let e = d.first_element_with_label("e").unwrap();
        assert_eq!(t.cost(e), None);
    }

    #[test]
    fn nodes_are_ancestor_closed() {
        let d = doc();
        let mut t = SnippetTree::new(&d, d.root());
        let c = d.first_element_with_label("c").unwrap();
        t.add(c);
        for &n in t.nodes() {
            if let Some(p) = d.parent(n) {
                if n != t.root() {
                    assert!(t.nodes().contains(&p), "parent of {n} missing");
                }
            }
        }
    }
}
