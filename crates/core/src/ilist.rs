//! The Snippet Information List (IList, paper §2).
//!
//! "Such information is placed in the Snippet Information List … in the
//! order of their importances": first the query keywords, then the names of
//! the entities involved in the result, then the key of the result, then
//! the dominant features in decreasing dominance-score order (Figure 3).
//! Duplicates are suppressed case-insensitively — e.g. for the query
//! "Texas apparel retailer" the entity name `retailer` and the trivially
//! dominant feature `(store, state, Texas)` never appear twice.
//!
//! Every item carries its **instances**: the element nodes of the query
//! result that contain the item's information, which is exactly what the
//! Instance Selector chooses among (§2.4).

use std::collections::HashMap;

use extract_analyzer::{EntityModel, KeyCatalog, ResultStats};
use extract_search::{KeywordQuery, QueryResult};
use extract_xml::{Document, NodeId, Symbol};

use crate::dominance::dominant_features;
use crate::key::{self, ResultKey};
use crate::return_entity::{self, ReturnEntities};

/// One kind of information worth showing in a snippet.
#[derive(Debug, Clone, PartialEq)]
pub enum IListItem {
    /// A query keyword (normalized).
    Keyword(String),
    /// The name of an entity involved in the result (self-containment,
    /// §2.1).
    EntityName {
        /// The entity label.
        label: Symbol,
    },
    /// The key of the query result (distinguishability, §2.2).
    ResultKey {
        /// Return entity label.
        entity: Symbol,
        /// Key attribute label.
        attribute: Symbol,
        /// Key value.
        value: String,
    },
    /// A dominant feature (representativeness, §2.3).
    Feature {
        /// Entity label.
        entity: Symbol,
        /// Attribute label.
        attribute: Symbol,
        /// Feature value.
        value: String,
        /// Dominance score.
        score: f64,
    },
}

impl IListItem {
    /// The human-readable text of the item (what Figure 3 prints).
    pub fn display_text(&self, doc: &Document) -> String {
        match self {
            IListItem::Keyword(k) => k.clone(),
            IListItem::EntityName { label } => doc.resolve(*label).to_string(),
            IListItem::ResultKey { value, .. } | IListItem::Feature { value, .. } => value.clone(),
        }
    }

    /// Case-insensitive deduplication token.
    pub fn dedup_token(&self, doc: &Document) -> String {
        self.display_text(doc).to_lowercase()
    }
}

/// An IList item with its rank and candidate instances.
#[derive(Debug, Clone)]
pub struct RankedItem {
    /// The item.
    pub item: IListItem,
    /// Element nodes of the result containing this item's information, in
    /// document order. Empty when nothing in the result carries it.
    pub instances: Vec<NodeId>,
}

/// The Snippet Information List of one query result.
#[derive(Debug, Clone)]
pub struct IList {
    items: Vec<RankedItem>,
    /// The return entities identified along the way (exposed for
    /// diagnostics and tests).
    pub return_entities: ReturnEntities,
    /// The identified result key, if any.
    pub result_key: Option<ResultKey>,
}

impl IList {
    /// Assemble an IList from raw parts. Intended for tests and benchmarks
    /// that need hand-crafted item/instance layouts.
    #[doc(hidden)]
    pub fn from_parts_for_tests(
        items: Vec<RankedItem>,
        return_entities: ReturnEntities,
        result_key: Option<ResultKey>,
    ) -> IList {
        IList { items, return_entities, result_key }
    }

    /// The ranked items.
    pub fn items(&self) -> &[RankedItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The display texts in rank order (the paper's Figure 3 rendering).
    pub fn display(&self, doc: &Document) -> Vec<String> {
        self.items.iter().map(|r| r.item.display_text(doc)).collect()
    }
}

/// Options for IList construction.
#[derive(Debug, Clone, Default)]
pub struct IListOptions {
    /// Keep at most this many dominant features (`None` = all).
    pub max_dominant_features: Option<usize>,
}

/// Reusable working buffers for IList construction. One query produces one
/// IList per result; threading a scratch through the loop keeps the dedup
/// set's allocation alive across results instead of reallocating per call.
#[derive(Debug, Default)]
pub struct IListScratch {
    /// Case-folded dedup tokens of the items pushed so far.
    seen: Vec<String>,
}

/// Build the IList of `result` for `query` (paper §2.1–§2.3).
pub fn build_ilist(
    doc: &Document,
    model: &EntityModel,
    catalog: &KeyCatalog,
    query: &KeywordQuery,
    result: &QueryResult,
    options: &IListOptions,
) -> IList {
    let stats = ResultStats::compute(doc, model, result.root);
    build_ilist_with_stats(doc, model, catalog, query, result, &stats, options)
}

/// [`build_ilist`] with precomputed statistics (lets callers reuse them).
pub fn build_ilist_with_stats(
    doc: &Document,
    model: &EntityModel,
    catalog: &KeyCatalog,
    query: &KeywordQuery,
    result: &QueryResult,
    stats: &ResultStats,
    options: &IListOptions,
) -> IList {
    let mut scratch = IListScratch::default();
    build_ilist_with_scratch(doc, model, catalog, query, result, stats, options, &mut scratch)
}

/// [`build_ilist_with_stats`] with caller-owned scratch buffers (the hot
/// query path reuses one [`IListScratch`] across all results of a query).
#[allow(clippy::too_many_arguments)]
pub fn build_ilist_with_scratch(
    doc: &Document,
    model: &EntityModel,
    catalog: &KeyCatalog,
    query: &KeywordQuery,
    result: &QueryResult,
    stats: &ResultStats,
    options: &IListOptions,
    scratch: &mut IListScratch,
) -> IList {
    let mut items: Vec<RankedItem> = Vec::new();
    scratch.seen.clear();
    let seen = &mut scratch.seen;

    let mut push = |item: IListItem, instances: Vec<NodeId>, seen: &mut Vec<String>| {
        let token = item.dedup_token(doc);
        if seen.contains(&token) {
            return;
        }
        seen.push(token);
        items.push(RankedItem { item, instances });
    };

    // 1. Query keywords, in query order ("IList is initialized with the
    //    query keywords", §2).
    for (i, k) in query.keywords().iter().enumerate() {
        let instances = result.matches.get(i).cloned().unwrap_or_default();
        push(IListItem::Keyword(k.clone()), instances, seen);
    }

    // 2. Entity names (§2.1). Group entity instances by label; order types
    //    by descending instance count (more instances ⇒ more of the result
    //    is about them), ties alphabetically — this reproduces Figure 3's
    //    "…, clothes, store, …".
    let entities = model.entities_in(doc, result.root);
    let mut by_label: HashMap<Symbol, Vec<NodeId>> = HashMap::new();
    for e in entities {
        by_label.entry(doc.node(e).label()).or_default().push(e);
    }
    let mut types: Vec<(Symbol, Vec<NodeId>)> = by_label.into_iter().collect();
    types.sort_by(|a, b| {
        b.1.len()
            .cmp(&a.1.len())
            .then_with(|| doc.resolve(a.0).cmp(doc.resolve(b.0)))
    });
    for (label, instances) in types {
        push(IListItem::EntityName { label }, instances, seen);
    }

    // 3. The result key (§2.2).
    let return_entities = return_entity::identify(doc, model, query, result);
    let result_key = key::identify(doc, model, catalog, &return_entities);
    if let Some(k) = &result_key {
        push(
            IListItem::ResultKey {
                entity: k.entity,
                attribute: k.attribute,
                value: k.value.clone(),
            },
            k.instances.clone(),
            seen,
        );
    }

    // 4. Dominant features in decreasing dominance score (§2.3).
    let mut doms = dominant_features(doc, stats);
    if let Some(cap) = options.max_dominant_features {
        doms.truncate(cap);
    }
    for d in doms {
        let instances = stats.occurrences(d.ftype, &d.value).to_vec();
        push(
            IListItem::Feature {
                entity: d.ftype.entity,
                attribute: d.ftype.attribute,
                value: d.value,
                score: d.score,
            },
            instances,
            seen,
        );
    }

    IList { items, return_entities, result_key }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_index::XmlIndex;

    const STORES: &str = "<stores>\
        <store><name>Levis</name><state>Texas</state><city>Austin</city>\
          <merchandises>\
            <clothes><fitting>man</fitting><category>jeans</category></clothes>\
            <clothes><fitting>man</fitting><category>jeans</category></clothes>\
            <clothes><fitting>woman</fitting><category>hats</category></clothes>\
          </merchandises>\
        </store>\
        <store><name>Gap</name><state>Ohio</state><city>Chicago</city>\
          <merchandises><clothes><fitting>man</fitting><category>shirts</category></clothes></merchandises>\
        </store>\
        </stores>";

    fn setup() -> (Document, EntityModel, KeyCatalog, XmlIndex) {
        let doc = Document::parse_str(STORES).unwrap();
        let model = EntityModel::analyze(&doc);
        let catalog = KeyCatalog::mine(&doc, &model);
        let index = XmlIndex::build(&doc);
        (doc, model, catalog, index)
    }

    fn ilist_for(q: &str, root_label_idx: usize) -> (Document, IList) {
        let (doc, model, catalog, index) = setup();
        let query = KeywordQuery::parse(q);
        let root = doc.elements_with_label("store")[root_label_idx];
        let result = QueryResult::build(&index, &query, root);
        let il = build_ilist(&doc, &model, &catalog, &query, &result, &Default::default());
        (doc, il)
    }

    #[test]
    fn order_is_keywords_entities_key_features() {
        let (doc, il) = ilist_for("store texas", 0);
        let display = il.display(&doc);
        // keywords: store, texas; entities: clothes (3) then store(dup);
        // key: Levis; features: man (2/3 of D=2 ⇒ DS 1.33), jeans (DS 1.33),
        // Texas (trivial, dup), Austin (trivial city? D(city)=1 within this
        // result ⇒ trivial dominant).
        assert_eq!(display[0], "store");
        assert_eq!(display[1], "texas");
        assert_eq!(display[2], "clothes");
        assert_eq!(display[3], "Levis");
        assert!(display.contains(&"man".to_string()));
        assert!(display.contains(&"jeans".to_string()));
        // "texas" must appear exactly once (keyword wins over the trivial
        // state feature).
        assert_eq!(display.iter().filter(|s| s.to_lowercase() == "texas").count(), 1);
        // "store" appears once (keyword wins over entity name).
        assert_eq!(display.iter().filter(|s| s.as_str() == "store").count(), 1);
    }

    #[test]
    fn every_item_has_instances_inside_the_result() {
        let (doc, il) = ilist_for("store texas", 0);
        let root = doc.elements_with_label("store")[0];
        for ranked in il.items() {
            assert!(
                !ranked.instances.is_empty(),
                "item {:?} has no instances",
                ranked.item.display_text(&doc)
            );
            for &n in &ranked.instances {
                assert!(doc.is_ancestor_or_self(root, n));
            }
        }
    }

    #[test]
    fn feature_instances_are_attribute_nodes_with_the_value() {
        let (doc, il) = ilist_for("store texas", 0);
        let jeans = il
            .items()
            .iter()
            .find(|r| matches!(&r.item, IListItem::Feature { value, .. } if value == "jeans"))
            .expect("jeans is dominant");
        assert_eq!(jeans.instances.len(), 2);
        for &n in &jeans.instances {
            assert_eq!(doc.label_str(n), Some("category"));
            assert_eq!(doc.text_of(n), Some("jeans"));
        }
    }

    #[test]
    fn result_key_recorded() {
        let (_, il) = ilist_for("store texas", 0);
        let key = il.result_key.as_ref().expect("store has a name key");
        assert_eq!(key.value, "Levis");
    }

    #[test]
    fn keyword_dedup_is_case_insensitive() {
        let (doc, model, catalog, index) = setup();
        let query = KeywordQuery::parse("levis store");
        let root = doc.elements_with_label("store")[0];
        let result = QueryResult::build(&index, &query, root);
        let il = build_ilist(&doc, &model, &catalog, &query, &result, &Default::default());
        let display = il.display(&doc);
        // The key value "Levis" duplicates the keyword "levis" ⇒ suppressed.
        assert_eq!(
            display.iter().filter(|s| s.to_lowercase() == "levis").count(),
            1
        );
    }

    #[test]
    fn max_dominant_features_caps_the_tail() {
        let (doc, model, catalog, index) = setup();
        let query = KeywordQuery::parse("store texas");
        let root = doc.elements_with_label("store")[0];
        let result = QueryResult::build(&index, &query, root);
        let full =
            build_ilist(&doc, &model, &catalog, &query, &result, &Default::default());
        let capped = build_ilist(
            &doc,
            &model,
            &catalog,
            &query,
            &result,
            &IListOptions { max_dominant_features: Some(1) },
        );
        assert!(capped.len() < full.len());
    }

    #[test]
    fn entity_types_ordered_by_instance_count() {
        let (doc, model, catalog, index) = setup();
        let query = KeywordQuery::parse("texas");
        let root = doc.elements_with_label("store")[0];
        let result = QueryResult::build(&index, &query, root);
        let il = build_ilist(&doc, &model, &catalog, &query, &result, &Default::default());
        let display = il.display(&doc);
        let clothes_pos = display.iter().position(|s| s == "clothes").unwrap();
        let store_pos = display.iter().position(|s| s == "store").unwrap();
        assert!(clothes_pos < store_pos, "3 clothes beat 1 store: {display:?}");
    }
}
