//! Dominance scores and dominant-feature identification (paper §2.3).
//!
//! The dominance score of a feature `f = (e, a, v)` in a result `R` is the
//! value's occurrence count normalized by the *average* occurrence count of
//! its feature type:
//!
//! ```text
//! DS(f, R) = N(e,a,v) / ( N(e,a) / D(e,a) )
//! ```
//!
//! A feature is **dominant** iff `DS > 1`, with one exception: a domain of
//! size one (`D(e,a) = 1`) is trivially dominant even though its score is
//! exactly 1. Dominant features enter the IList in decreasing score order.

use extract_analyzer::{FeatureType, ResultStats};
use extract_xml::Document;

/// A dominant feature of one query result.
#[derive(Debug, Clone, PartialEq)]
pub struct DominantFeature {
    /// The feature type `(e, a)`.
    pub ftype: FeatureType,
    /// The feature value `v`.
    pub value: String,
    /// `DS(f, R)`.
    pub score: f64,
    /// Whether dominance comes from the domain-size-1 exception.
    pub trivial: bool,
}

/// The dominance score of one feature, or `None` if the type is absent.
pub fn dominance_score(stats: &ResultStats, ftype: FeatureType, value: &str) -> Option<f64> {
    let n_type = stats.n_type(ftype);
    let d = stats.d_type(ftype);
    if n_type == 0 || d == 0 {
        return None;
    }
    Some(stats.n_value(ftype, value) as f64 * d as f64 / n_type as f64)
}

/// All dominant features of a result, sorted by decreasing score, then
/// decreasing occurrence count, then `(entity, attribute, value)` labels —
/// a total, deterministic order.
pub fn dominant_features(doc: &Document, stats: &ResultStats) -> Vec<DominantFeature> {
    let mut out = Vec::new();
    for ftype in stats.feature_types() {
        let d = stats.d_type(ftype);
        let n_type = stats.n_type(ftype);
        for row in stats.value_table(ftype) {
            let score = row.count as f64 * d as f64 / n_type as f64;
            let trivial = d == 1;
            if score > 1.0 || trivial {
                out.push(DominantFeature { ftype, value: row.value, score, trivial });
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let (ea, aa) = (doc.resolve(a.ftype.entity), doc.resolve(a.ftype.attribute));
                let (eb, ab) = (doc.resolve(b.ftype.entity), doc.resolve(b.ftype.attribute));
                (ea, aa, &a.value).cmp(&(eb, ab, &b.value))
            })
    });
    out
}

/// Ablation of the paper's §2.3 argument: rank features by **raw occurrence
/// count** instead of the normalized dominance score. The paper argues this
/// is unreliable — "though the number of occurrences of feature Houston is
/// much less than that of children, it should be considered as more
/// dominant". Experiment E12 uses this ranking to show exactly that
/// failure: with raw counts, high-frequency low-signal values (casual, man)
/// crowd out Houston entirely.
pub fn features_by_raw_frequency(doc: &Document, stats: &ResultStats) -> Vec<DominantFeature> {
    let mut out = Vec::new();
    for ftype in stats.feature_types() {
        for row in stats.value_table(ftype) {
            out.push(DominantFeature {
                ftype,
                value: row.value,
                score: row.count as f64,
                trivial: false,
            });
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let (ea, aa) = (doc.resolve(a.ftype.entity), doc.resolve(a.ftype.attribute));
                let (eb, ab) = (doc.resolve(b.ftype.entity), doc.resolve(b.ftype.attribute));
                (ea, aa, &a.value).cmp(&(eb, ab, &b.value))
            })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_analyzer::EntityModel;

    fn setup() -> (Document, ResultStats) {
        // cities: Houston 3, Austin 1 → D=2, N=4, DS(Houston)=1.5,
        // DS(Austin)=0.5. fitting: man 2, woman 1, children 1 → D=3, N=4,
        // DS(man)=1.5, others 0.75. state: Texas only → trivial.
        let doc = Document::parse_str(
            "<r>\
             <store><city>Houston</city><state>Texas</state><f>man</f></store>\
             <store><city>Houston</city><state>Texas</state><f>man</f></store>\
             <store><city>Houston</city><state>Texas</state><f>woman</f></store>\
             <store><city>Austin</city><state>Texas</state><f>children</f></store>\
             </r>",
        )
        .unwrap();
        let model = EntityModel::analyze(&doc);
        let stats = ResultStats::compute(&doc, &model, doc.root());
        (doc, stats)
    }

    fn ft(doc: &Document, e: &str, a: &str) -> FeatureType {
        FeatureType {
            entity: doc.symbols().get(e).unwrap(),
            attribute: doc.symbols().get(a).unwrap(),
        }
    }

    #[test]
    fn scores_match_the_formula() {
        let (doc, stats) = setup();
        let city = ft(&doc, "store", "city");
        assert_eq!(dominance_score(&stats, city, "Houston"), Some(1.5));
        assert_eq!(dominance_score(&stats, city, "Austin"), Some(0.5));
        assert_eq!(dominance_score(&stats, city, "Dallas"), Some(0.0));
    }

    #[test]
    fn unknown_type_has_no_score() {
        let (doc, stats) = setup();
        let mut d2 = doc.clone();
        let bogus = d2.intern("zzz");
        let ft = FeatureType { entity: bogus, attribute: bogus };
        assert_eq!(dominance_score(&stats, ft, "x"), None);
    }

    #[test]
    fn dominant_set_is_correct() {
        let (doc, stats) = setup();
        let doms = dominant_features(&doc, &stats);
        let values: Vec<&str> = doms.iter().map(|d| d.value.as_str()).collect();
        assert!(values.contains(&"Houston"));
        assert!(values.contains(&"man"));
        assert!(values.contains(&"Texas"), "trivial domain-1 dominance");
        assert!(!values.contains(&"Austin"));
        assert!(!values.contains(&"woman"));
    }

    #[test]
    fn trivial_features_score_one_and_sort_last() {
        let (doc, stats) = setup();
        let doms = dominant_features(&doc, &stats);
        let texas = doms.iter().find(|d| d.value == "Texas").unwrap();
        assert!(texas.trivial);
        assert_eq!(texas.score, 1.0);
        assert_eq!(doms.last().unwrap().value, "Texas");
        // Non-trivial ones sorted by score descending.
        for w in doms.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn score_exactly_one_with_larger_domain_is_not_dominant() {
        // Two values, each appearing once: DS = 1.0 for both, D = 2 ⇒ none
        // dominant.
        let doc = Document::parse_str(
            "<r><s><c>a</c></s><s><c>b</c></s></r>",
        )
        .unwrap();
        let model = EntityModel::analyze(&doc);
        let stats = ResultStats::compute(&doc, &model, doc.root());
        assert!(dominant_features(&doc, &stats).is_empty());
    }

    #[test]
    fn ordering_is_deterministic_on_ties() {
        // Two types with identical score profiles; order must be stable by
        // label/value.
        let doc = Document::parse_str(
            "<r>\
             <s><a>x</a><b>q</b></s>\
             <s><a>x</a><b>q</b></s>\
             <s><a>y</a><b>p</b></s>\
             </r>",
        )
        .unwrap();
        let model = EntityModel::analyze(&doc);
        let stats = ResultStats::compute(&doc, &model, doc.root());
        let doms = dominant_features(&doc, &stats);
        // DS(x)=DS(q)=4/3; ties broken by attribute label: a before b.
        assert_eq!(doms.len(), 2);
        assert_eq!(doms[0].value, "x");
        assert_eq!(doms[1].value, "q");
    }

    #[test]
    fn raw_frequency_ranking_buries_low_count_dominant_values() {
        let (doc, stats) = setup();
        // DS ranking puts Houston (3 of 4 cities) on top among city values;
        // raw ranking ranks by absolute count where Texas (4) and man/…
        // compete. The orders must differ on this data.
        let raw = features_by_raw_frequency(&doc, &stats);
        assert_eq!(raw[0].value, "Texas", "raw: the most frequent value wins");
        assert_eq!(raw[0].score, 4.0);
        let ds = dominant_features(&doc, &stats);
        assert_eq!(ds[0].value, "Houston", "DS: the most *dominant* value wins");
    }

    #[test]
    fn raw_ranking_is_deterministic_and_complete() {
        let (doc, stats) = setup();
        let raw = features_by_raw_frequency(&doc, &stats);
        // Every (type, value) pair appears exactly once.
        let total: usize = stats
            .feature_types()
            .map(|ft| stats.value_table(ft).len())
            .sum();
        assert_eq!(raw.len(), total);
        for w in raw.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn figure1_arithmetic() {
        // The published example: DS(Houston) = 6/(10/5) = 3.0.
        assert_eq!(6.0 * 5.0 / 10.0, 3.0);
        // DS(man) = 600/(1000/3) = 1.8, DS(woman) ≈ 1.08.
        assert!((600.0_f64 * 3.0 / 1000.0 - 1.8).abs() < 1e-12);
        assert!((360.0_f64 * 3.0 / 1000.0 - 1.08).abs() < 1e-12);
        // DS(casual) = 700/(1000/2) = 1.4.
        assert!((700.0_f64 * 2.0 / 1000.0 - 1.4).abs() < 1e-12);
        // DS(outwear) = 220/(1070/11) ≈ 2.26, DS(suit) ≈ 1.23.
        assert!((220.0_f64 * 11.0 / 1070.0 - 2.2617).abs() < 1e-3);
        assert!((120.0_f64 * 11.0 / 1070.0 - 1.2336).abs() < 1e-3);
    }
}
