//! eXtract: snippet generation for XML keyword search — the primary
//! contribution of Huang, Liu & Chen (VLDB 2008).
//!
//! Given a keyword query, a query result (from any XML keyword search
//! engine) and a size bound, eXtract produces a **snippet**: a small subtree
//! of the result that is self-contained (organized around entities),
//! distinguishable (contains the result's key), representative (contains
//! the dominant features) and within the bound (§1). The pipeline follows
//! the paper's Figure 4:
//!
//! ```text
//! Data Analyzer ─ Index Builder ─┐
//!                                ├─► Return Entity Identifier
//!   query, results, size bound ──┤    Query Result Key Identifier
//!                                │    Dominant Feature Identifier
//!                                └─►  IList ─► Instance Selector ─► snippet
//! ```
//!
//! * [`ilist`] — the Snippet Information List: query keywords, entity
//!   names, the result key, then dominant features by decreasing dominance
//!   score (§2);
//! * [`return_entity`] — the search-goal heuristics of §2.2;
//! * [`key`] — the query-result key (§2.2), backed by the analyzer's mined
//!   key catalog;
//! * [`dominance`] — dominance scores `DS(f,R) = N(e,a,v)·D(e,a)/N(e,a)`
//!   and the `DS > 1` / domain-size-1 dominance rule (§2.3);
//! * [`selector`] — the instance selector (§2.4): covering a maximum
//!   number of IList items within the bound is NP-hard; a greedy algorithm
//!   picks, per item in rank order, the instance whose ancestor closure
//!   adds the fewest new edges. An exact branch-and-bound solver measures
//!   the greedy's optimality gap on small instances;
//! * [`snippet`] — the materialized snippet with rendering helpers;
//! * [`baselines`] — comparison strategies, including the structure-blind
//!   text snippet standing in for the Google Desktop comparison of §4;
//! * [`quality`] — objective proxies for the paper's four snippet goals;
//! * [`cache`] — an LRU [`SnippetCache`] memoizing generated snippets for
//!   hot queries (keyed by normalized query + result root + config);
//! * [`render`] — HTML results page (the demo's web UI, Figure 5) and
//!   JSON export;
//! * [`pipeline`] — [`Extract`], the end-to-end system facade.
//!
//! # Quick example
//!
//! ```
//! use extract_xml::Document;
//! use extract_core::{Extract, ExtractConfig};
//!
//! let doc = Document::parse_str(
//!     "<stores><store><name>Levis</name><state>Texas</state>\
//!      <merchandises><clothes><category>jeans</category></clothes>\
//!      <clothes><category>jeans</category></clothes></merchandises></store>\
//!      <store><name>Gap</name><state>Ohio</state></store></stores>").unwrap();
//! let extract = Extract::new(&doc);
//! let snippets = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(6));
//! assert_eq!(snippets.len(), 1);
//! assert!(snippets[0].snippet.to_xml().contains("Levis"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod cache;
pub mod dominance;
pub mod ilist;
pub mod key;
pub mod pipeline;
pub mod quality;
pub mod render;
pub mod return_entity;
pub mod selector;
pub mod snippet;

pub use cache::{CacheKey, CacheStats, LruCache, PageKey, SnippetCache};
pub use dominance::{dominant_features, DominantFeature};
pub use ilist::{IList, IListItem, RankedItem};
pub use pipeline::{EngineParts, Extract, ExtractConfig, SelectorKind, SnippetedResult};
pub use selector::{exact_select, greedy_select, SelectionOutcome};
pub use snippet::Snippet;
