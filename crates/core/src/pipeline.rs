//! The end-to-end eXtract system (paper Figure 4).
//!
//! [`Extract::new`] runs the offline stages — Data Analyzer (entity model),
//! Index Builder, key mining — once per document. Each query then flows
//! through Return Entity Identifier → Query Result Key Identifier →
//! Dominant Feature Identifier → IList → Instance Selector.

use std::sync::Arc;

use extract_analyzer::{EntityModel, KeyCatalog, ResultStats};
use extract_index::XmlIndex;
use extract_search::ranking::RankedResult;
use extract_search::xseek::{self, RootPolicy};
use extract_search::{KeywordQuery, QueryResult};
use extract_xml::{Document, NodeId};

use crate::cache::{CacheKey, SnippetCache};
use crate::ilist::{build_ilist, build_ilist_with_scratch, IList, IListOptions, IListScratch};
use crate::selector::{exact_select, greedy_select, ExactLimits, SelectionOutcome};
use crate::snippet::Snippet;

/// Which instance selector to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectorKind {
    /// The paper's greedy algorithm (default).
    #[default]
    Greedy,
    /// Exact branch-and-bound (small inputs only; falls back to greedy when
    /// the search budget is exceeded).
    Exact,
}

/// Snippet generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractConfig {
    /// Maximum snippet size in element edges (the demo UI's "snippet size
    /// upper bound … defined as the number of edges in the tree").
    pub size_bound: usize,
    /// Cap on dominant features entering the IList (`None` = all).
    pub max_dominant_features: Option<usize>,
    /// Greedy or exact selection.
    pub selector: SelectorKind,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig { size_bound: 20, max_dominant_features: None, selector: SelectorKind::Greedy }
    }
}

impl ExtractConfig {
    /// A config with the given size bound and defaults elsewhere.
    pub fn with_bound(size_bound: usize) -> ExtractConfig {
        ExtractConfig { size_bound, ..Default::default() }
    }
}

/// A query result paired with its generated snippet.
#[derive(Debug, Clone)]
pub struct SnippetedResult {
    /// The query result.
    pub result: QueryResult,
    /// The IList that drove snippet generation.
    pub ilist: IList,
    /// The snippet.
    pub snippet: Snippet,
}

/// The offline artifacts of one document — index, entity model, mined
/// keys — behind `Arc`s so many [`Extract`] engines (e.g. one per query
/// snapshot of a live corpus) can share one build. Cloning is three
/// refcount bumps.
#[derive(Debug, Clone)]
pub struct EngineParts {
    index: Arc<XmlIndex>,
    model: Arc<EntityModel>,
    keys: Arc<KeyCatalog>,
}

impl EngineParts {
    /// Run the offline stages for `doc`.
    pub fn build(doc: &Document) -> EngineParts {
        let index = XmlIndex::build(doc);
        let model = EntityModel::analyze(doc);
        let keys = KeyCatalog::mine(doc, &model);
        EngineParts { index: Arc::new(index), model: Arc::new(model), keys: Arc::new(keys) }
    }
}

/// The eXtract system bound to one document. The offline artifacts are
/// `Arc`-shared ([`EngineParts`]), so cloning an engine — or building one
/// from cached parts via [`Extract::with_parts`] — is cheap; only the
/// `Document` itself is borrowed.
#[derive(Debug, Clone)]
pub struct Extract<'d> {
    doc: &'d Document,
    parts: EngineParts,
}

impl<'d> Extract<'d> {
    /// Run the offline stages for `doc`.
    pub fn new(doc: &'d Document) -> Extract<'d> {
        Extract { doc, parts: EngineParts::build(doc) }
    }

    /// Assemble from pre-built components.
    pub fn from_parts(
        doc: &'d Document,
        index: XmlIndex,
        model: EntityModel,
        keys: KeyCatalog,
    ) -> Extract<'d> {
        Extract {
            doc,
            parts: EngineParts {
                index: Arc::new(index),
                model: Arc::new(model),
                keys: Arc::new(keys),
            },
        }
    }

    /// Bind shared offline artifacts (from [`EngineParts::build`] on the
    /// same document) to a borrow of that document.
    pub fn with_parts(doc: &'d Document, parts: EngineParts) -> Extract<'d> {
        Extract { doc, parts }
    }

    /// The shared offline artifacts (an `Arc` clone per component).
    pub fn parts(&self) -> EngineParts {
        self.parts.clone()
    }

    /// The document.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// The index.
    pub fn index(&self) -> &XmlIndex {
        &self.parts.index
    }

    /// The entity model.
    pub fn model(&self) -> &EntityModel {
        &self.parts.model
    }

    /// The mined key catalog.
    pub fn keys(&self) -> &KeyCatalog {
        &self.parts.keys
    }

    /// Build the IList of one query result (§2.1–§2.3).
    pub fn ilist(&self, query: &KeywordQuery, result: &QueryResult, config: &ExtractConfig) -> IList {
        build_ilist(
            self.doc,
            &self.parts.model,
            &self.parts.keys,
            query,
            result,
            &IListOptions { max_dominant_features: config.max_dominant_features },
        )
    }

    /// Generate the snippet of one query result (§2.4).
    pub fn snippet(
        &self,
        query: &KeywordQuery,
        result: &QueryResult,
        config: &ExtractConfig,
    ) -> SnippetedResult {
        self.snippet_with_scratch(query, result, config, &mut IListScratch::default())
    }

    /// [`Extract::snippet`] reusing caller-owned IList scratch buffers
    /// (one scratch serves every result of a query).
    pub fn snippet_with_scratch(
        &self,
        query: &KeywordQuery,
        result: &QueryResult,
        config: &ExtractConfig,
        scratch: &mut IListScratch,
    ) -> SnippetedResult {
        let stats = ResultStats::compute(self.doc, &self.parts.model, result.root);
        let ilist = build_ilist_with_scratch(
            self.doc,
            &self.parts.model,
            &self.parts.keys,
            query,
            result,
            &stats,
            &IListOptions { max_dominant_features: config.max_dominant_features },
            scratch,
        );
        let outcome = self.select(&ilist, result.root, config);
        let snippet = Snippet::from_selection(self.doc, &ilist, outcome);
        SnippetedResult { result: result.clone(), ilist, snippet }
    }

    fn select(&self, ilist: &IList, root: NodeId, config: &ExtractConfig) -> SelectionOutcome {
        match config.selector {
            SelectorKind::Greedy => greedy_select(self.doc, ilist, root, config.size_bound),
            SelectorKind::Exact => {
                exact_select(self.doc, ilist, root, config.size_bound, ExactLimits::default())
                    .unwrap_or_else(|| greedy_select(self.doc, ilist, root, config.size_bound))
            }
        }
    }

    /// Run the built-in XSeek-style engine on `query` and rank the results
    /// (the shared front half of every end-to-end entry point).
    pub fn ranked_results(&self, query: &KeywordQuery) -> Vec<RankedResult> {
        let results =
            xseek::search(self.doc, &self.parts.index, &self.parts.model, query, RootPolicy::Entity);
        extract_search::rank(self.doc, results)
    }

    /// End-to-end: run the built-in XSeek-style engine on `query_str`, then
    /// generate a snippet per result (ranked result order).
    pub fn snippets_for_query(&self, query_str: &str, config: &ExtractConfig) -> Vec<SnippetedResult> {
        let query = KeywordQuery::parse(query_str);
        let mut scratch = IListScratch::default();
        self.ranked_results(&query)
            .into_iter()
            .map(|r| self.snippet_with_scratch(&query, &r.result, config, &mut scratch))
            .collect()
    }

    /// [`Extract::snippets_for_query`] backed by a [`SnippetCache`]: each
    /// (query, result root, config) triple is computed at most once while
    /// it stays resident. Search and ranking still run (they determine
    /// *which* roots to show); the expensive IList + selection work is
    /// what the cache skips.
    pub fn snippets_for_query_cached(
        &self,
        query_str: &str,
        config: &ExtractConfig,
        cache: &mut SnippetCache,
    ) -> Vec<SnippetedResult> {
        let query = KeywordQuery::parse(query_str);
        let mut scratch = IListScratch::default();
        self.ranked_results(&query)
            .into_iter()
            .map(|r| {
                let key = CacheKey::new(&query, r.result.root, config);
                if let Some(hit) = cache.get(&key) {
                    return hit;
                }
                let computed =
                    self.snippet_with_scratch(&query, &r.result, config, &mut scratch);
                cache.insert(key, computed.clone());
                computed
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STORES: &str = "<stores>\
        <store><name>Levis</name><state>Texas</state>\
          <merchandises>\
            <clothes><fitting>man</fitting><category>jeans</category></clothes>\
            <clothes><fitting>man</fitting><category>jeans</category></clothes>\
            <clothes><fitting>woman</fitting><category>hats</category></clothes>\
          </merchandises>\
        </store>\
        <store><name>ESprit</name><state>Texas</state>\
          <merchandises>\
            <clothes><fitting>woman</fitting><category>outwear</category></clothes>\
            <clothes><fitting>woman</fitting><category>outwear</category></clothes>\
            <clothes><fitting>man</fitting><category>socks</category></clothes>\
          </merchandises>\
        </store>\
        <store><name>Gap</name><state>Ohio</state>\
          <merchandises><clothes><fitting>man</fitting><category>shirts</category></clothes></merchandises>\
        </store>\
        </stores>";

    #[test]
    fn end_to_end_produces_one_snippet_per_result() {
        let doc = Document::parse_str(STORES).unwrap();
        let extract = Extract::new(&doc);
        let out = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(6));
        assert_eq!(out.len(), 2);
        for s in &out {
            assert!(s.snippet.edges <= 6);
            assert!(s.snippet.coverage() > 0);
        }
        // Each snippet carries its store's key, making them distinguishable.
        let xmls: Vec<String> = out.iter().map(|s| s.snippet.to_xml()).collect();
        assert!(xmls.iter().any(|x| x.contains("Levis")));
        assert!(xmls.iter().any(|x| x.contains("ESprit")));
        assert_ne!(xmls[0], xmls[1]);
    }

    #[test]
    fn snippets_show_dominant_features() {
        let doc = Document::parse_str(STORES).unwrap();
        let extract = Extract::new(&doc);
        let out = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(8));
        let levis = out
            .iter()
            .find(|s| s.snippet.to_xml().contains("Levis"))
            .expect("levis result");
        let xml = levis.snippet.to_xml();
        assert!(xml.contains("jeans"), "dominant category: {xml}");
        assert!(xml.contains("man"), "dominant fitting: {xml}");
        let esprit = out
            .iter()
            .find(|s| s.snippet.to_xml().contains("ESprit"))
            .expect("esprit result");
        let xml = esprit.snippet.to_xml();
        assert!(xml.contains("outwear"), "{xml}");
        assert!(xml.contains("woman"), "{xml}");
    }

    #[test]
    fn exact_selector_is_at_least_as_good() {
        let doc = Document::parse_str(STORES).unwrap();
        let extract = Extract::new(&doc);
        let query = KeywordQuery::parse("store texas");
        let results = xseek::search(
            &doc,
            extract.index(),
            extract.model(),
            &query,
            RootPolicy::Entity,
        );
        for result in &results {
            for bound in [2, 4, 6, 8] {
                let greedy = extract.snippet(
                    &query,
                    result,
                    &ExtractConfig { size_bound: bound, ..Default::default() },
                );
                let exact = extract.snippet(
                    &query,
                    result,
                    &ExtractConfig {
                        size_bound: bound,
                        selector: SelectorKind::Exact,
                        ..Default::default()
                    },
                );
                assert!(exact.snippet.coverage() >= greedy.snippet.coverage());
            }
        }
    }

    #[test]
    fn empty_query_yields_no_snippets() {
        let doc = Document::parse_str(STORES).unwrap();
        let extract = Extract::new(&doc);
        assert!(extract.snippets_for_query("", &Default::default()).is_empty());
        assert!(extract
            .snippets_for_query("zzz qqq", &Default::default())
            .is_empty());
    }

    #[test]
    fn config_defaults() {
        let c = ExtractConfig::default();
        assert_eq!(c.size_bound, 20);
        assert_eq!(c.selector, SelectorKind::Greedy);
        assert_eq!(ExtractConfig::with_bound(7).size_bound, 7);
    }
}
