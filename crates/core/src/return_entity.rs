//! Return-entity identification (paper §2.2).
//!
//! "Each query has a search goal": the entities a user is looking for
//! (**return entities**) versus the entities that merely describe them
//! (**supporting entities**). The paper's heuristics, implemented here:
//!
//! 1. an entity type in the result is a return-entity type if its *name*
//!    matches a query keyword;
//! 2. otherwise, if one of its *attribute names* matches a keyword;
//! 3. otherwise the *highest* entities of the result (no ancestor entity)
//!    are the default.
//!
//! Name matching uses the same tokenization as the index (`open_auction`
//! matches keyword `auction`).

use extract_analyzer::EntityModel;
use extract_index::tokenize::contains_token;
use extract_search::{KeywordQuery, QueryResult};
use extract_xml::{Document, NodeId, Symbol};

/// Why an entity type was chosen as the return entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReturnEntityReason {
    /// The entity's name matches a query keyword.
    NameMatch,
    /// One of the entity's attribute names matches a query keyword.
    AttributeNameMatch,
    /// Fallback: the highest entities of the result.
    HighestEntity,
}

/// The identified return entities of one query result.
#[derive(Debug, Clone)]
pub struct ReturnEntities {
    /// The chosen entity label (`None` when the result has no entities at
    /// all — then `instances` falls back to the result root).
    pub label: Option<Symbol>,
    /// Why this type was chosen.
    pub reason: ReturnEntityReason,
    /// Instances of the chosen type inside the result, document order.
    pub instances: Vec<NodeId>,
}

/// Identify the return entities of `result` for `query`.
pub fn identify(
    doc: &Document,
    model: &EntityModel,
    query: &KeywordQuery,
    result: &QueryResult,
) -> ReturnEntities {
    let entities = model.entities_in(doc, result.root);
    if entities.is_empty() {
        return ReturnEntities {
            label: None,
            reason: ReturnEntityReason::HighestEntity,
            instances: vec![result.root],
        };
    }

    // Entity types present, in order of first instance (document order).
    let mut types: Vec<Symbol> = Vec::new();
    for &e in &entities {
        let label = doc.node(e).label();
        if !types.contains(&label) {
            types.push(label);
        }
    }

    // Rule 1: entity name matches a keyword.
    for &label in &types {
        let name = doc.resolve(label);
        if query.keywords().iter().any(|k| contains_token(name, k)) {
            return chosen(doc, &entities, label, ReturnEntityReason::NameMatch);
        }
    }

    // Rule 2: an attribute name of the entity matches a keyword.
    for &label in &types {
        let attr_match = entities.iter().filter(|&&e| doc.node(e).label() == label).any(|&e| {
            model.attribute_children(doc, e).iter().any(|&a| {
                let attr_name = doc.resolve(doc.node(a).label());
                query.keywords().iter().any(|k| contains_token(attr_name, k))
            })
        });
        if attr_match {
            return chosen(doc, &entities, label, ReturnEntityReason::AttributeNameMatch);
        }
    }

    // Rule 3: the highest entities.
    let highest = model.highest_entities(doc, result.root);
    let label = doc.node(highest[0]).label();
    ReturnEntities {
        label: Some(label),
        reason: ReturnEntityReason::HighestEntity,
        instances: highest,
    }
}

fn chosen(
    doc: &Document,
    entities: &[NodeId],
    label: Symbol,
    reason: ReturnEntityReason,
) -> ReturnEntities {
    ReturnEntities {
        label: Some(label),
        reason,
        instances: entities
            .iter()
            .copied()
            .filter(|&e| doc.node(e).label() == label)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_index::XmlIndex;

    fn setup(xml: &str) -> (Document, EntityModel, XmlIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let model = EntityModel::analyze(&doc);
        let index = XmlIndex::build(&doc);
        (doc, model, index)
    }

    const RETAILER: &str = "<retailers>\
        <retailer><name>BB</name>\
          <store><name>G</name><city>Houston</city>\
            <merchandises><clothes><category>suit</category></clothes>\
            <clothes><category>skirt</category></clothes></merchandises>\
          </store>\
          <store><name>W</name><city>Austin</city>\
            <merchandises><clothes><category>hat</category></clothes></merchandises>\
          </store>\
        </retailer>\
        <retailer><name>Other</name><store><name>X</name><city>Plano</city>\
          <merchandises><clothes><category>socks</category></clothes></merchandises></store>\
        </retailer>\
        </retailers>";

    fn result_for(index: &XmlIndex, q: &KeywordQuery, root: NodeId) -> QueryResult {
        QueryResult::build(index, q, root)
    }

    #[test]
    fn name_match_wins() {
        let (doc, model, index) = setup(RETAILER);
        let q = KeywordQuery::parse("houston retailer");
        let bb = doc.elements_with_label("retailer")[0];
        let r = result_for(&index, &q, bb);
        let re = identify(&doc, &model, &q, &r);
        assert_eq!(re.reason, ReturnEntityReason::NameMatch);
        assert_eq!(doc.resolve(re.label.unwrap()), "retailer");
        assert_eq!(re.instances, vec![bb]);
    }

    #[test]
    fn attribute_name_match_is_second() {
        let (doc, model, index) = setup(RETAILER);
        // "category" is an attribute name of clothes; no entity is *named*
        // category.
        let q = KeywordQuery::parse("category houston");
        let bb = doc.elements_with_label("retailer")[0];
        let r = result_for(&index, &q, bb);
        let re = identify(&doc, &model, &q, &r);
        assert_eq!(re.reason, ReturnEntityReason::AttributeNameMatch);
        assert_eq!(doc.resolve(re.label.unwrap()), "clothes");
    }

    #[test]
    fn fallback_is_highest_entity() {
        let (doc, model, index) = setup(RETAILER);
        let q = KeywordQuery::parse("houston suit");
        let bb = doc.elements_with_label("retailer")[0];
        let r = result_for(&index, &q, bb);
        let re = identify(&doc, &model, &q, &r);
        assert_eq!(re.reason, ReturnEntityReason::HighestEntity);
        // Result root is the retailer — itself an entity ⇒ highest.
        assert_eq!(doc.resolve(re.label.unwrap()), "retailer");
        assert_eq!(re.instances, vec![bb]);
    }

    #[test]
    fn name_match_beats_attribute_match_even_for_later_types() {
        let (doc, model, index) = setup(RETAILER);
        // "clothes" names an entity; "name" is an attribute of retailer —
        // the *name* rule must win even though retailer comes first.
        let q = KeywordQuery::parse("clothes name");
        let bb = doc.elements_with_label("retailer")[0];
        let r = result_for(&index, &q, bb);
        let re = identify(&doc, &model, &q, &r);
        assert_eq!(re.reason, ReturnEntityReason::NameMatch);
        assert_eq!(doc.resolve(re.label.unwrap()), "clothes");
        assert_eq!(re.instances.len(), 3, "all clothes inside the BB result");
    }

    #[test]
    fn entityless_result_falls_back_to_root() {
        let (doc, model, index) = setup("<a><b><c>k</c></b></a>");
        let q = KeywordQuery::parse("k");
        let r = result_for(&index, &q, doc.root());
        let re = identify(&doc, &model, &q, &r);
        assert!(re.label.is_none());
        assert_eq!(re.instances, vec![doc.root()]);
    }

    #[test]
    fn tokenized_label_matching() {
        let (doc, model, index) = setup(
            "<site><open_auction><seller>alice</seller><price>10</price></open_auction>\
             <open_auction><seller>bob</seller><price>20</price></open_auction></site>",
        );
        let q = KeywordQuery::parse("auction alice");
        let r = result_for(&index, &q, doc.root());
        let re = identify(&doc, &model, &q, &r);
        assert_eq!(re.reason, ReturnEntityReason::NameMatch);
        assert_eq!(doc.resolve(re.label.unwrap()), "open_auction");
    }
}
