//! A keyed snippet cache for hot queries.
//!
//! Search-result pages re-issue the same queries constantly; the IList +
//! instance-selection work per result is deterministic given the document,
//! so recomputing it per call is pure waste (the ROADMAP's "snippet cache"
//! item). [`SnippetCache`] memoizes fully-generated [`SnippetedResult`]s
//! keyed by **normalized query string + document id + result root +
//! snippet config** — anything that can change the output. The document id
//! is `DocId` 0 for single-document sessions; corpus sessions key entries
//! by the result's real [`extract_index::DocId`] so one shared cache can
//! serve every document of a corpus. Document *content* is still not part
//! of the key — but the [`DocId`] generation is, so in a live corpus a
//! re-ingested document occupies a fresh key and stale entries for the old
//! generation can never be served (they are also purged eagerly via
//! [`LruCache::retain`] when a document is mutated).
//!
//! Eviction is least-recently-used with a configurable capacity, built on
//! the generic [`LruCache`] (which the serving layer also reuses for whole
//! result pages). The cache is a plain mutable structure; concurrent
//! callers (e.g. a query session's worker pool) wrap it in a `Mutex`,
//! holding the lock only for `get`/`insert` — never during snippet
//! computation.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use extract_index::DocId;
use extract_search::KeywordQuery;
use extract_xml::NodeId;

use crate::pipeline::{ExtractConfig, SelectorKind, SnippetedResult};

/// The lookup key: everything that determines a snippet's bytes.
///
/// Keyword **order** is part of the key on purpose: the IList is
/// initialized with the query keywords in query order (paper §2), so under
/// a tight size bound `"a b"` and `"b a"` can legitimately produce
/// different snippets — normalizing order away would alias distinct
/// outputs. Duplicates and case variants *are* normalized (by
/// [`KeywordQuery`] itself), so `"Store texas"`, `"store, TEXAS"` and
/// `"store texas store"` all share one entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Normalized query ([`KeywordQuery`] display form: lowercased tokens,
    /// deduplicated, original order).
    query: String,
    /// The document the result root lives in (`DocId` 0 for single-document
    /// sessions, so single-doc and corpus paths over the same document
    /// share entries).
    doc: DocId,
    /// The result root the snippet was generated for.
    root: NodeId,
    /// Snippet size bound.
    size_bound: usize,
    /// Dominant-feature cap.
    max_dominant_features: Option<usize>,
    /// Selector algorithm.
    selector: SelectorKind,
}

impl CacheKey {
    /// Build the key for one (query, result root, config) triple in a
    /// single-document setting (document id 0).
    pub fn new(query: &KeywordQuery, root: NodeId, config: &ExtractConfig) -> CacheKey {
        CacheKey::for_doc(query, DocId::from_index(0), root, config)
    }

    /// Build the key for one (query, document, result root, config)
    /// quadruple — the corpus query path, where the same [`NodeId`] exists
    /// in every document.
    pub fn for_doc(
        query: &KeywordQuery,
        doc: DocId,
        root: NodeId,
        config: &ExtractConfig,
    ) -> CacheKey {
        CacheKey {
            query: query.to_string(),
            doc,
            root,
            size_bound: config.size_bound,
            max_dominant_features: config.max_dominant_features,
            selector: config.selector,
        }
    }

    /// The document this entry's snippet was generated from — what a live
    /// corpus matches on when it invalidates one mutated document.
    pub fn doc(&self) -> DocId {
        self.doc
    }
}

/// Page-cache key: everything that determines a whole result *page* —
/// the normalized query, the config fields that shape snippets, and the
/// **page bounds**. `k`/`offset` are part of the key because a top-k
/// answer only materializes snippets for the served window: the page for
/// `(k=10, offset=0)` and the page for `(k=10, offset=10)` are different
/// values and must never alias ([`PageKey::bounded`]). Unpaginated
/// answers use the canonical `(k=usize::MAX, offset=0)` form
/// ([`PageKey::unbounded`]), so "the whole page" is itself just one more
/// window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Normalized query ([`KeywordQuery`] display form).
    query: String,
    /// Snippet size bound.
    size_bound: usize,
    /// Dominant-feature cap.
    max_dominant_features: Option<usize>,
    /// Selector algorithm.
    selector: SelectorKind,
    /// Rank cutoff: at most `k` results are materialized.
    k: usize,
    /// Rank of the first materialized result.
    offset: usize,
    /// Corpus epoch the page was computed against (`0` for static
    /// sessions). A page aggregates candidates from *every* document, so
    /// per-document invalidation cannot save it — any mutation changes
    /// the candidate set and the epoch in the key retires the whole page
    /// generation at once.
    epoch: u64,
}

impl PageKey {
    /// The key of the full, unpaginated page for `(query, config)`.
    pub fn unbounded(query: &KeywordQuery, config: &ExtractConfig) -> PageKey {
        PageKey::bounded(query, config, usize::MAX, 0)
    }

    /// The key of the `[offset, offset + k)` window of the ranked result
    /// list for `(query, config)`.
    pub fn bounded(
        query: &KeywordQuery,
        config: &ExtractConfig,
        k: usize,
        offset: usize,
    ) -> PageKey {
        PageKey {
            query: query.to_string(),
            size_bound: config.size_bound,
            max_dominant_features: config.max_dominant_features,
            selector: config.selector,
            k,
            offset,
            epoch: 0,
        }
    }

    /// The same window pinned to corpus epoch `epoch` — the live-corpus
    /// page key (epoch `0` is exactly the static [`PageKey::bounded`]).
    pub fn at_epoch(mut self, epoch: u64) -> PageKey {
        self.epoch = epoch;
        self
    }

    /// The corpus epoch this page belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Authoritative recency (bumped on every hit).
    last_used: u64,
    /// The tick this entry is filed under in the recency index (only
    /// maintained at insert/requeue time — hits stay `O(1)`).
    recency_tick: u64,
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default retention capacity of `Default`-constructed caches.
pub const DEFAULT_CAPACITY: usize = 256;

/// A generic LRU cache with `O(1)` hits and amortized `O(log n)` inserts.
///
/// `capacity` bounds the number of retained entries; inserting into a full
/// cache evicts the least-recently-used one. Recency lives in a `BTreeMap`
/// keyed by a strictly increasing tick; hits only bump the entry's
/// `last_used` field, and stale recency positions are repaired lazily
/// during eviction (each repair re-files one entry, so eviction stays
/// amortized logarithmic). A capacity of `0` disables retention entirely
/// (every `get` misses).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    /// `recency_tick` → key; the first *accurate* entry is the LRU victim.
    recency: BTreeMap<u64, K>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for LruCache<K, V> {
    fn default() -> Self {
        LruCache::new(DEFAULT_CAPACITY)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// A cache retaining at most `capacity` values.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            recency: BTreeMap::new(),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Look up a value, refreshing its recency. Returns a clone — the
    /// cache stays the owner so eviction never invalidates callers. (Wrap
    /// big values in `Arc` to make the clone `O(1)`.)
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used one
    /// when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let entry = Entry { value, last_used: self.tick, recency_tick: self.tick };
        if let Some(old) = self.map.insert(key.clone(), entry) {
            self.recency.remove(&old.recency_tick);
        } else if self.map.len() > self.capacity {
            self.evict_lru();
        }
        self.recency.insert(self.tick, key);
    }

    /// Pop recency positions until one matches its entry's true
    /// `last_used`; entries touched since their last filing are re-filed
    /// at their current recency instead of being evicted.
    fn evict_lru(&mut self) {
        while let Some((tick, key)) = self.recency.pop_first() {
            let Some(entry) = self.map.get_mut(&key) else { continue };
            if entry.last_used == tick {
                self.map.remove(&key);
                self.stats.evictions += 1;
                return;
            }
            let fresh = entry.last_used;
            entry.recency_tick = fresh;
            self.recency.insert(fresh, key);
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters since construction (or the last
    /// [`LruCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every entry whose key fails `keep`, preserving recency of the
    /// survivors — the targeted-invalidation primitive for live corpora
    /// (e.g. "drop all snippets of the document that was just deleted").
    /// Removals are invalidations, not capacity pressure, so they do not
    /// count as evictions.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        self.map.retain(|k, _| keep(k));
        let map = &self.map;
        self.recency.retain(|_, k| map.contains_key(k));
    }

    /// Drop all entries and reset the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

/// An LRU cache of generated snippets: the per-result memo of the hot
/// query path (see the module docs for key semantics).
pub type SnippetCache = LruCache<CacheKey, SnippetedResult>;

#[cfg(test)]
mod tests {
    use super::*;
    use extract_search::QueryResult;
    use extract_xml::Document;

    fn snippet_for(doc: &Document, extract: &crate::Extract<'_>, q: &str) -> SnippetedResult {
        let query = KeywordQuery::parse(q);
        let root = doc.root();
        let result = QueryResult::build(extract.index(), &query, root);
        extract.snippet(&query, &result, &ExtractConfig::default())
    }

    fn setup() -> Document {
        Document::parse_str(
            "<stores><store><name>Levis</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store></stores>",
        )
        .unwrap()
    }

    #[test]
    fn get_after_insert_hits() {
        let doc = setup();
        let extract = crate::Extract::new(&doc);
        let mut cache = SnippetCache::new(4);
        let query = KeywordQuery::parse("texas");
        let key = CacheKey::new(&query, doc.root(), &ExtractConfig::default());
        assert!(cache.get(&key).is_none());
        let value = snippet_for(&doc, &extract, "texas");
        cache.insert(key.clone(), value.clone());
        let hit = cache.get(&key).expect("cached");
        assert_eq!(hit.snippet.to_xml(), value.snippet.to_xml());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn key_normalizes_query_text() {
        let config = ExtractConfig::default();
        let doc = setup();
        let a = CacheKey::new(&KeywordQuery::parse("Store TEXAS"), doc.root(), &config);
        let b = CacheKey::new(&KeywordQuery::parse("store,texas"), doc.root(), &config);
        assert_eq!(a, b);
        // Different config → different key.
        let c = CacheKey::new(
            &KeywordQuery::parse("store texas"),
            doc.root(),
            &ExtractConfig::with_bound(3),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn key_normalizes_duplicates_case_and_separators() {
        // Every constructor path and textual variant of the same keyword
        // bag (in the same order) must share one cache entry.
        let config = ExtractConfig::default();
        let doc = setup();
        let root = doc.root();
        let canonical = CacheKey::new(&KeywordQuery::parse("store texas"), root, &config);
        for variant in [
            "store texas store",      // duplicate keyword
            "STORE Texas",            // case-folded
            "store;texas",            // separator variants
            "  store ,, texas  ",     // whitespace noise
            "store-texas",            // punctuation splits into two tokens
        ] {
            let key = CacheKey::new(&KeywordQuery::parse(variant), root, &config);
            assert_eq!(key, canonical, "variant {variant:?}");
        }
        // `from_keywords` must agree with `parse` even when callers pass
        // unnormalized multi-token strings (regression: it used to skip
        // tokenization, aliasing ["a b"] with the two-keyword query "a b").
        let from_kw =
            CacheKey::new(&KeywordQuery::from_keywords(["Store texas"]), root, &config);
        assert_eq!(from_kw, canonical);
    }

    #[test]
    fn key_keeps_keyword_order_distinct() {
        // Keyword order feeds the IList (paper §2) and can change the
        // snippet under a tight bound, so order must stay in the key.
        let config = ExtractConfig::default();
        let doc = setup();
        let a = CacheKey::new(&KeywordQuery::parse("store texas"), doc.root(), &config);
        let b = CacheKey::new(&KeywordQuery::parse("texas store"), doc.root(), &config);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_configs_and_docs_never_collide() {
        let doc = setup();
        let root = doc.root();
        let q = KeywordQuery::parse("store texas");
        let base = ExtractConfig::default();
        let keys = [
            CacheKey::new(&q, root, &base),
            CacheKey::new(&q, root, &ExtractConfig { size_bound: 19, ..base.clone() }),
            CacheKey::new(
                &q,
                root,
                &ExtractConfig { max_dominant_features: Some(3), ..base.clone() },
            ),
            CacheKey::new(
                &q,
                root,
                &ExtractConfig { selector: SelectorKind::Exact, ..base.clone() },
            ),
            CacheKey::for_doc(&q, extract_index::DocId::from_index(1), root, &base),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
        // And DocId 0 is exactly the single-document key.
        assert_eq!(
            CacheKey::for_doc(&q, extract_index::DocId::from_index(0), root, &base),
            CacheKey::new(&q, root, &base)
        );
    }

    #[test]
    fn page_keys_separate_windows_and_normalize_queries() {
        let config = ExtractConfig::default();
        let q = KeywordQuery::parse("store texas");
        let full = PageKey::unbounded(&q, &config);
        // The unbounded key IS the canonical (usize::MAX, 0) window.
        assert_eq!(full, PageKey::bounded(&q, &config, usize::MAX, 0));
        // Distinct windows never alias: same query+config, different page.
        let keys = [
            full.clone(),
            PageKey::bounded(&q, &config, 10, 0),
            PageKey::bounded(&q, &config, 10, 10),
            PageKey::bounded(&q, &config, 20, 0),
            PageKey::bounded(&q, &ExtractConfig::with_bound(3), 10, 0),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "page keys {i} and {j} collide");
            }
        }
        // Query normalization flows through like CacheKey's.
        assert_eq!(
            PageKey::bounded(&KeywordQuery::parse("Store,TEXAS store"), &config, 10, 0),
            PageKey::bounded(&q, &config, 10, 0)
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: LruCache<&str, u32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(1), "refresh a; b is now LRU");
        cache.insert("c", 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"b"), None, "b was evicted");
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"c"), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn heavily_touched_entries_survive_many_evictions() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        cache.insert(0, 0);
        for i in 1..100u32 {
            cache.insert(i, i);
            // Key 0 is touched after every insert, so it must never be the
            // LRU victim even though its recency filing goes stale.
            assert_eq!(cache.get(&0), Some(0), "round {i}");
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 96);
    }

    #[test]
    fn reinserting_a_key_updates_value_without_growing() {
        let mut cache: LruCache<&str, u32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let mut cache: LruCache<&str, u32> = LruCache::new(0);
        cache.insert("a", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"a"), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache: LruCache<&str, u32> = LruCache::default();
        assert_eq!(cache.capacity(), DEFAULT_CAPACITY);
        cache.insert("a", 1);
        cache.get(&"a");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.stats().hit_ratio(), 0.0);
        // Usable after clear.
        cache.insert("b", 2);
        assert_eq!(cache.get(&"b"), Some(2));
        assert!(cache.stats().hit_ratio() > 0.99);
    }

    #[test]
    fn retain_drops_matching_keys_only() {
        let mut cache: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..6u32 {
            cache.insert(i, i * 10);
        }
        cache.retain(|k| k % 2 == 0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), None);
        assert_eq!(cache.stats().evictions, 0, "invalidations are not evictions");
        // Recency index stays consistent: filling past capacity after a
        // retain still evicts cleanly.
        for i in 10..20u32 {
            cache.insert(i, i);
        }
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn epoch_partitions_page_keys() {
        let config = ExtractConfig::default();
        let q = KeywordQuery::parse("store texas");
        let old = PageKey::bounded(&q, &config, 10, 0);
        let new = PageKey::bounded(&q, &config, 10, 0).at_epoch(3);
        assert_ne!(old, new, "different corpus epochs never alias");
        assert_eq!(old.epoch(), 0);
        assert_eq!(new.epoch(), 3);
        assert_eq!(old, old.clone().at_epoch(0), "epoch 0 is the static key");
    }

    #[test]
    fn generations_partition_cache_keys() {
        let config = ExtractConfig::default();
        let doc = setup();
        let q = KeywordQuery::parse("store texas");
        let slot0 = extract_index::DocId::from_parts(4, 0);
        let slot1 = extract_index::DocId::from_parts(4, 1);
        let a = CacheKey::for_doc(&q, slot0, doc.root(), &config);
        let b = CacheKey::for_doc(&q, slot1, doc.root(), &config);
        assert_ne!(a, b, "slot reuse must not alias cache entries");
        assert_eq!(a.doc(), slot0);
    }
}
