//! Baseline snippet strategies for the quality comparison (experiment E9).
//!
//! The demo contrasts eXtract with Google Desktop's structure-blind text
//! snippets (§4: "Since Google is a text document search engine and ignores
//! XML tags and all structural information, the advantages of developing an
//! XML-specific snippet generation system can be clearly demonstrated").
//! [`TextWindows`] reproduces that baseline; [`BfsPrefix`] and
//! [`PathToMatches`] are natural structure-aware strawmen.

use std::collections::HashSet;

use extract_xml::{Document, NodeId};

use extract_search::QueryResult;

/// Output of a baseline: either a node-set tree (comparable to eXtract's
/// snippet) or flat text.
#[derive(Debug, Clone)]
pub enum BaselineContent {
    /// A bounded subtree, as an ancestor-closed node set plus edge count.
    Tree {
        /// Included element nodes.
        nodes: HashSet<NodeId>,
        /// Element-edge count.
        edges: usize,
    },
    /// Structure-free text.
    Text(String),
}

impl BaselineContent {
    /// Render for display / substring-based quality checks.
    pub fn rendered(&self, doc: &Document) -> String {
        match self {
            BaselineContent::Tree { nodes, .. } => {
                let root = nodes.iter().copied().min().expect("tree has a root");
                let (tree, _) = doc.project(root, nodes);
                tree.to_xml_string()
            }
            BaselineContent::Text(t) => t.clone(),
        }
    }
}

/// A baseline snippet strategy.
pub trait BaselineStrategy {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;
    /// Generate a snippet for `result` within `bound` edges (text baselines
    /// convert the bound to a character budget).
    fn generate(&self, doc: &Document, result: &QueryResult, bound: usize) -> BaselineContent;
}

/// Breadth-first prefix of the result tree: take element nodes in BFS
/// order until the bound is reached. Blind to keywords and statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsPrefix;

impl BaselineStrategy for BfsPrefix {
    fn name(&self) -> &'static str {
        "bfs-prefix"
    }

    fn generate(&self, doc: &Document, result: &QueryResult, bound: usize) -> BaselineContent {
        let mut nodes = HashSet::with_capacity(bound + 1);
        nodes.insert(result.root);
        let mut edges = 0usize;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(result.root);
        'outer: while let Some(n) = queue.pop_front() {
            for c in doc.element_children(n) {
                if edges >= bound {
                    break 'outer;
                }
                nodes.insert(c);
                edges += 1;
                queue.push_back(c);
            }
        }
        BaselineContent::Tree { nodes, edges }
    }
}

/// Root-to-match paths: add the path to the first match of each keyword
/// (cheapest first), stopping when the budget is exhausted. Keyword-aware
/// but statistics-blind.
#[derive(Debug, Default, Clone, Copy)]
pub struct PathToMatches;

impl BaselineStrategy for PathToMatches {
    fn name(&self) -> &'static str {
        "match-paths"
    }

    fn generate(&self, doc: &Document, result: &QueryResult, bound: usize) -> BaselineContent {
        let mut nodes: HashSet<NodeId> = HashSet::new();
        nodes.insert(result.root);
        let mut edges = 0usize;
        for matches in &result.matches {
            let Some(&first) = matches.first() else { continue };
            // Cost of the path from `first` up to the included region.
            let mut path = Vec::new();
            for a in doc.ancestors_or_self(first) {
                if nodes.contains(&a) {
                    break;
                }
                path.push(a);
            }
            if edges + path.len() > bound {
                continue;
            }
            edges += path.len();
            nodes.extend(path);
        }
        BaselineContent::Tree { nodes, edges }
    }
}

/// Structure-blind keyword-window text snippets in the style of a text
/// search engine (the Google Desktop comparison). The result subtree is
/// flattened to text; a window of words is cut around the first occurrence
/// of each keyword; windows are joined with ellipses. The edge bound is
/// converted to a word budget (`bound × WORDS_PER_EDGE`).
#[derive(Debug, Default, Clone, Copy)]
pub struct TextWindows;

/// One tree edge buys roughly this many words of text snippet, so the text
/// baseline gets a comparable information budget.
pub const WORDS_PER_EDGE: usize = 3;

impl BaselineStrategy for TextWindows {
    fn name(&self) -> &'static str {
        "text-windows"
    }

    fn generate(&self, doc: &Document, result: &QueryResult, bound: usize) -> BaselineContent {
        let flat = doc.concat_text(result.root);
        let words: Vec<&str> = flat.split_whitespace().collect();
        let budget = bound * WORDS_PER_EDGE;
        let keywords: Vec<String> = result
            .matches
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, _)| i)
            .filter_map(|i| {
                // Recover the keyword text from the match node's content:
                // cheaper to just use the index in result — we don't have
                // the query here, so fall back to match-node values.
                result.matches[i].first().map(|&n| {
                    doc.text_of(n).unwrap_or_else(|| doc.label_str(n).unwrap_or("")).to_string()
                })
            })
            .collect();

        let mut picked: Vec<(usize, usize)> = Vec::new(); // word ranges
        let mut used = 0usize;
        for kw in &keywords {
            if used >= budget {
                break;
            }
            let kw_lower = kw.to_lowercase();
            let hit = words.iter().position(|w| {
                let w = w.to_lowercase();
                kw_lower.split_whitespace().any(|part| w.contains(part))
            });
            if let Some(pos) = hit {
                let half = (budget - used).min(6) / 2;
                let start = pos.saturating_sub(half);
                let end = (pos + half + 1).min(words.len());
                picked.push((start, end));
                used += end - start;
            }
        }
        if picked.is_empty() && !words.is_empty() {
            picked.push((0, budget.min(words.len())));
        }
        picked.sort_unstable();
        let mut out = String::new();
        let mut last_end = 0usize;
        for (start, end) in picked {
            if start > last_end || !out.is_empty() {
                out.push_str(" … ");
            }
            out.push_str(&words[start.max(last_end)..end.max(last_end)].join(" "));
            last_end = last_end.max(end);
        }
        BaselineContent::Text(out.trim().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_index::XmlIndex;
    use extract_search::KeywordQuery;

    fn setup() -> (Document, QueryResult) {
        let doc = Document::parse_str(
            "<store><name>Levis</name><state>Texas</state>\
             <merchandises>\
               <clothes><category>jeans</category><fitting>man</fitting></clothes>\
               <clothes><category>hats</category><fitting>woman</fitting></clothes>\
             </merchandises></store>",
        )
        .unwrap();
        let index = XmlIndex::build(&doc);
        let q = KeywordQuery::parse("store texas");
        let result = QueryResult::build(&index, &q, doc.root());
        (doc, result)
    }

    #[test]
    fn bfs_prefix_respects_bound_and_is_closed() {
        let (doc, result) = setup();
        for bound in 0..12 {
            let BaselineContent::Tree { nodes, edges } =
                BfsPrefix.generate(&doc, &result, bound)
            else {
                panic!("tree expected")
            };
            assert!(edges <= bound);
            for &n in &nodes {
                if n != result.root {
                    assert!(nodes.contains(&doc.parent(n).unwrap()));
                }
            }
        }
    }

    #[test]
    fn bfs_prefix_takes_shallow_nodes_first() {
        let (doc, result) = setup();
        let BaselineContent::Tree { nodes, .. } = BfsPrefix.generate(&doc, &result, 3) else {
            panic!()
        };
        let name = doc.first_element_with_label("name").unwrap();
        let category = doc.first_element_with_label("category").unwrap();
        assert!(nodes.contains(&name));
        assert!(!nodes.contains(&category), "depth-2 node can't precede depth-1 nodes");
    }

    #[test]
    fn match_paths_contains_keyword_matches() {
        let (doc, result) = setup();
        let BaselineContent::Tree { nodes, edges } =
            PathToMatches.generate(&doc, &result, 10)
        else {
            panic!()
        };
        let state = doc.first_element_with_label("state").unwrap();
        assert!(nodes.contains(&state), "texas match included");
        assert!(nodes.contains(&result.root));
        assert!(edges <= 10);
    }

    #[test]
    fn match_paths_skips_unaffordable_paths() {
        let (doc, result) = setup();
        let BaselineContent::Tree { edges, .. } = PathToMatches.generate(&doc, &result, 0)
        else {
            panic!()
        };
        assert_eq!(edges, 0, "nothing fits in a zero budget");
    }

    #[test]
    fn text_windows_mentions_keywords() {
        let (doc, result) = setup();
        let BaselineContent::Text(t) = TextWindows.generate(&doc, &result, 6) else {
            panic!("text expected")
        };
        assert!(t.to_lowercase().contains("texas"), "{t}");
    }

    #[test]
    fn text_windows_budget_scales_with_bound() {
        let (doc, result) = setup();
        let BaselineContent::Text(small) = TextWindows.generate(&doc, &result, 1) else {
            panic!()
        };
        let BaselineContent::Text(large) = TextWindows.generate(&doc, &result, 20) else {
            panic!()
        };
        assert!(large.split_whitespace().count() >= small.split_whitespace().count());
    }

    #[test]
    fn rendered_output_is_displayable() {
        let (doc, result) = setup();
        let tree = BfsPrefix.generate(&doc, &result, 4).rendered(&doc);
        assert!(tree.starts_with("<store>"), "{tree}");
        let text = TextWindows.generate(&doc, &result, 4).rendered(&doc);
        assert!(!text.contains('<'), "text baseline has no markup: {text}");
    }
}
