//! The snippet: a materialized, bounded subtree of a query result.

use std::collections::HashSet;

use extract_xml::{Document, NodeId};

use crate::ilist::{IList, IListItem};
use crate::selector::SelectionOutcome;

/// A generated result snippet.
#[derive(Debug, Clone)]
pub struct Snippet {
    /// The result root in the *original* document.
    pub result_root: NodeId,
    /// The included element nodes in the original document
    /// (ancestor-closed; contains `result_root`).
    pub nodes: HashSet<NodeId>,
    /// Element-edge count (the paper's size measure).
    pub edges: usize,
    /// Covered IList items, in rank order.
    pub covered: Vec<IListItem>,
    /// Skipped IList items, in rank order.
    pub skipped: Vec<IListItem>,
    /// The materialized snippet tree (a standalone document).
    tree: Document,
}

impl Snippet {
    /// Materialize a snippet from a selection outcome.
    pub fn from_selection(doc: &Document, ilist: &IList, outcome: SelectionOutcome) -> Snippet {
        let root = outcome
            .nodes
            .iter()
            .copied()
            .min()
            .expect("selection always includes the root");
        let (tree, _) = doc.project(root, &outcome.nodes);
        let covered = outcome
            .covered
            .iter()
            .map(|&i| ilist.items()[i].item.clone())
            .collect();
        let skipped = outcome
            .skipped
            .iter()
            .map(|&i| ilist.items()[i].item.clone())
            .collect();
        Snippet {
            result_root: root,
            nodes: outcome.nodes,
            edges: outcome.edges,
            covered,
            skipped,
            tree,
        }
    }

    /// The materialized snippet document.
    pub fn tree(&self) -> &Document {
        &self.tree
    }

    /// Compact XML rendering.
    pub fn to_xml(&self) -> String {
        self.tree.to_xml_string()
    }

    /// Pretty-printed XML rendering.
    pub fn to_xml_pretty(&self) -> String {
        self.tree.to_xml_pretty()
    }

    /// ASCII-tree rendering (the shape of the paper's Figure 2).
    pub fn to_ascii_tree(&self) -> String {
        self.tree.to_ascii_tree(self.tree.root())
    }

    /// One-line summary: root label plus the covered attribute values, the
    /// style of the demo UI's result rows (Figure 5).
    pub fn summary_line(&self, doc: &Document) -> String {
        let root_label = doc.label_str(self.result_root).unwrap_or("result");
        let values: Vec<String> = self
            .covered
            .iter()
            .filter_map(|item| match item {
                IListItem::ResultKey { value, .. } => Some(format!("“{value}”")),
                IListItem::Feature { value, .. } => Some(value.clone()),
                _ => None,
            })
            .collect();
        if values.is_empty() {
            root_label.to_string()
        } else {
            format!("{root_label}: {}", values.join(", "))
        }
    }

    /// Number of covered items.
    pub fn coverage(&self) -> usize {
        self.covered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilist::RankedItem;
    use crate::return_entity::{ReturnEntities, ReturnEntityReason};
    use crate::selector::greedy_select;

    fn setup() -> (Document, IList) {
        let doc = Document::parse_str(
            "<store><name>Levis</name><state>Texas</state><merchandises>\
             <clothes><category>jeans</category></clothes></merchandises></store>",
        )
        .unwrap();
        let name = doc.first_element_with_label("name").unwrap();
        let category = doc.first_element_with_label("category").unwrap();
        let store_sym = doc.symbols().get("store").unwrap();
        let name_sym = doc.symbols().get("name").unwrap();
        let cat_sym = doc.symbols().get("category").unwrap();
        let clothes_sym = doc.symbols().get("clothes").unwrap();
        let items = vec![
            RankedItem {
                item: IListItem::ResultKey {
                    entity: store_sym,
                    attribute: name_sym,
                    value: "Levis".into(),
                },
                instances: vec![name],
            },
            RankedItem {
                item: IListItem::Feature {
                    entity: clothes_sym,
                    attribute: cat_sym,
                    value: "jeans".into(),
                    score: 2.0,
                },
                instances: vec![category],
            },
        ];
        let il = IList::from_parts_for_tests(
            items,
            ReturnEntities {
                label: Some(store_sym),
                reason: ReturnEntityReason::NameMatch,
                instances: vec![doc.root()],
            },
            None,
        );
        (doc, il)
    }

    #[test]
    fn materializes_selected_subtree() {
        let (doc, il) = setup();
        let outcome = greedy_select(&doc, &il, doc.root(), 10);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        assert_eq!(snip.coverage(), 2);
        let xml = snip.to_xml();
        assert!(xml.contains("Levis"), "{xml}");
        assert!(xml.contains("jeans"), "{xml}");
        assert!(!xml.contains("Texas"), "state was never selected: {xml}");
        assert_eq!(snip.edges, 4); // name + merchandises + clothes + category
    }

    #[test]
    fn bound_truncates_coverage() {
        let (doc, il) = setup();
        let outcome = greedy_select(&doc, &il, doc.root(), 1);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        assert_eq!(snip.coverage(), 1, "only the key fits in one edge");
        assert_eq!(snip.skipped.len(), 1);
        assert!(snip.to_xml().contains("Levis"));
    }

    #[test]
    fn renderings_work() {
        let (doc, il) = setup();
        let outcome = greedy_select(&doc, &il, doc.root(), 10);
        let snip = Snippet::from_selection(&doc, &il, outcome);
        assert!(snip.to_ascii_tree().contains("name: Levis"));
        assert!(snip.to_xml_pretty().contains("<category>jeans</category>"));
        let line = snip.summary_line(&doc);
        assert!(line.contains("store"), "{line}");
        assert!(line.contains("Levis"), "{line}");
        assert!(line.contains("jeans"), "{line}");
    }
}
