//! Property-based tests for the XML substrate: round-trips, Dewey algebra,
//! projection invariants.

use std::collections::HashSet;

use extract_xml::{Dewey, DocBuilder, Document, NodeId};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SpecNode> {
    let leaf = (0usize..6, proptest::option::of("[a-z]{1,8}"))
        .prop_map(|(label, text)| SpecNode { label, text, children: Vec::new() });
    leaf.prop_recursive(4, 64, 6, |inner| {
        (0usize..6, proptest::collection::vec(inner, 0..6)).prop_map(|(label, children)| SpecNode {
            label,
            text: None,
            children,
        })
    })
}

#[derive(Debug, Clone)]
struct SpecNode {
    label: usize,
    text: Option<String>,
    children: Vec<SpecNode>,
}

const LABELS: [&str; 6] = ["store", "clothes", "name", "city", "merch", "item"];

fn build(spec: &SpecNode) -> Document {
    let mut b = DocBuilder::new(LABELS[spec.label]);
    for c in &spec.children {
        build_into(&mut b, c);
    }
    if let Some(t) = &spec.text {
        b.text(t);
    }
    b.build()
}

fn build_into(b: &mut DocBuilder, spec: &SpecNode) {
    match (&spec.text, spec.children.is_empty()) {
        (Some(t), true) => {
            b.leaf(LABELS[spec.label], t);
        }
        _ => {
            b.begin(LABELS[spec.label]);
            for c in &spec.children {
                build_into(b, c);
            }
            if let Some(t) = &spec.text {
                b.text(t);
            }
            b.end();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_is_fixpoint(spec in spec_strategy()) {
        let doc = build(&spec);
        doc.debug_validate().unwrap();
        let xml = doc.to_xml_string();
        let reparsed = Document::parse_str(&xml).unwrap();
        prop_assert_eq!(reparsed.to_xml_string(), xml);
    }

    #[test]
    fn pretty_print_parses_to_same_compact_form(spec in spec_strategy()) {
        let doc = build(&spec);
        // Whitespace-only text may legitimately be dropped on reparse of the
        // pretty form; skip specs that contain such text values.
        let has_blank_text = doc.all_nodes().any(|n| {
            doc.node(n).is_text() && doc.node(n).text().is_some_and(|t| t.trim().is_empty())
        });
        prop_assume!(!has_blank_text);
        let reparsed = Document::parse_str(&doc.to_xml_pretty()).unwrap();
        prop_assert_eq!(reparsed.to_xml_string(), doc.to_xml_string());
    }

    #[test]
    fn dewey_round_trip_and_order(spec in spec_strategy()) {
        let doc = build(&spec);
        let nodes: Vec<NodeId> = doc.subtree(doc.root()).collect();
        let deweys: Vec<Dewey> = nodes.iter().map(|&n| doc.dewey(n)).collect();
        for (n, dw) in nodes.iter().zip(&deweys) {
            prop_assert_eq!(doc.node_by_dewey(dw), Some(*n));
        }
        // Dewey order must agree with preorder position, i.e. with ID order.
        for w in deweys.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn lca_agrees_with_dewey_prefix(spec in spec_strategy()) {
        let doc = build(&spec);
        let nodes: Vec<NodeId> = doc.all_nodes().collect();
        // Cap the quadratic check for big trees.
        let sample: Vec<NodeId> = nodes.iter().copied().take(20).collect();
        for &a in &sample {
            for &b in &sample {
                let lca = doc.lca(a, b);
                let dewey_lca = doc.dewey(a).lca(&doc.dewey(b));
                prop_assert_eq!(doc.dewey(lca), dewey_lca);
            }
        }
    }

    #[test]
    fn projection_is_ancestor_closed_and_bounded(spec in spec_strategy(), pick in proptest::collection::vec(any::<prop::sample::Index>(), 0..5)) {
        let doc = build(&spec);
        let elements: Vec<NodeId> = doc.subtree_elements(doc.root()).collect();
        let keep: HashSet<NodeId> = pick.iter().map(|i| *i.get(&elements)).collect();
        let (snip, mapping) = doc.project(doc.root(), &keep);
        snip.debug_validate().unwrap();
        // Every kept node appears in the projection.
        for &k in &keep {
            prop_assert!(mapping.contains_key(&k));
        }
        // The projection never grows beyond the source subtree.
        prop_assert!(snip.element_count() <= doc.element_count());
        // Root label preserved.
        prop_assert_eq!(snip.label_str(snip.root()), doc.label_str(doc.root()));
    }

    #[test]
    fn ascii_tree_mentions_every_label(spec in spec_strategy()) {
        let doc = build(&spec);
        let art = doc.to_ascii_tree(doc.root());
        for n in doc.subtree_elements(doc.root()) {
            let label = doc.label_str(n).unwrap();
            prop_assert!(art.contains(label));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive — errors only.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = Document::parse_str(&input);
    }

    /// Same for inputs that look almost like XML.
    #[test]
    fn parser_never_panics_on_xmlish_input(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b c=\"d\">".to_string()),
                Just("text".to_string()),
                Just("<!-- x -->".to_string()),
                Just("<![CDATA[y]]>".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("<!DOCTYPE r [<!ELEMENT r (a*)>]>".to_string()),
                Just("<?pi?>".to_string()),
                Just("<".to_string()),
                Just("]]>".to_string()),
            ],
            0..12,
        )
    ) {
        let input: String = parts.concat();
        let _ = Document::parse_str(&input);
    }
}
