//! Corpus tests: realistic and adversarial documents through the full
//! parse → navigate → serialize cycle.

use extract_xml::{path, Document, Error, ParseOptions, Schema};

#[test]
fn dblp_like_record() {
    let src = r#"<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE dblp [
  <!ELEMENT dblp (article|inproceedings)*>
  <!ELEMENT article (author+, title, year, journal?)>
  <!ELEMENT inproceedings (author+, title, year, booktitle)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT booktitle (#PCDATA)>
]>
<dblp>
  <article>
    <author>Yu Huang</author>
    <author>Ziyang Liu</author>
    <author>Yi Chen</author>
    <title>eXtract: A Snippet Generation System for XML Search</title>
    <year>2008</year>
  </article>
  <inproceedings>
    <author>Yu Xu</author>
    <title>Efficient Keyword Search for Smallest LCAs</title>
    <year>2005</year>
    <booktitle>SIGMOD</booktitle>
  </inproceedings>
</dblp>"#;
    let doc = Document::parse_str(src).unwrap();
    doc.debug_validate().unwrap();
    assert_eq!(doc.doctype_name(), Some("dblp"));
    let dtd = doc.dtd().expect("internal subset parsed");
    assert_eq!(dtd.is_repeatable("dblp", "article"), Some(true));
    assert_eq!(dtd.is_repeatable("article", "author"), Some(true));
    assert_eq!(dtd.is_repeatable("article", "title"), Some(false));

    let schema = Schema::infer(&doc);
    let author_path = schema.path_by_string("/dblp/article/author", &doc).unwrap();
    assert!(schema.is_starred(author_path), "DTD says author+");
    let title_path = schema.path_by_string("/dblp/article/title", &doc).unwrap();
    assert!(!schema.is_starred(title_path));

    let authors = path::select(&doc, "//author").unwrap();
    assert_eq!(authors.len(), 4);
    assert_eq!(doc.text_of(authors[0]), Some("Yu Huang"));
}

#[test]
fn config_file_with_attributes_and_comments() {
    let src = r#"
<!-- deployment configuration -->
<config env="prod" region="us-east">
  <database host="db1.internal" port="5432">
    <pool min="4" max="32"/>
  </database>
  <features>
    <flag name="new-search" enabled="true"/>
    <flag name="beta-ui" enabled="false"/>
  </features>
</config>"#;
    let doc = Document::parse_str(src).unwrap();
    // XML attributes became child elements.
    let env = path::select_first(&doc, "/config/env").unwrap().unwrap();
    assert_eq!(doc.text_of(env), Some("prod"));
    let flags = path::select(&doc, "//flag").unwrap();
    assert_eq!(flags.len(), 2);
    let schema = Schema::infer(&doc);
    let flag_path = schema.path_by_string("/config/features/flag", &doc).unwrap();
    assert!(schema.is_starred(flag_path), "two flag siblings");
}

#[test]
fn mixed_content_document() {
    let src = "<p>The <em>quick</em> brown <b>fox</b> jumps.</p>";
    // Default options trim text (right for data-oriented XML)…
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(doc.child_count(doc.root()), 5);
    assert_eq!(doc.concat_text(doc.root()), "The quick brown fox jumps.");
    // …document-oriented XML keeps raw text and round-trips byte-exact.
    let raw = Document::parse_with(
        src,
        &ParseOptions { trim_text: false, ..Default::default() },
    )
    .unwrap();
    assert_eq!(raw.to_xml_string(), src);
}

#[test]
fn entity_references_everywhere() {
    let src = r#"<m><t a="&lt;tag&gt;">Tom &amp; Jerry &#169; &#x2122;</t></m>"#;
    let doc = Document::parse_str(src).unwrap();
    let t = doc.first_element_with_label("t").unwrap();
    // The attribute child holds the unescaped value.
    let a = doc.element_children(t).next().unwrap();
    assert_eq!(doc.text_of(a), Some("<tag>"));
    let text = doc.children(t).last().unwrap();
    assert_eq!(doc.node(text).text(), Some("Tom & Jerry © ™"));
    // Serialization re-escapes safely.
    let re = Document::parse_str(&doc.to_xml_string()).unwrap();
    assert_eq!(re.concat_text(re.root()), doc.concat_text(doc.root()));
}

#[test]
fn unicode_labels_and_content() {
    let src = "<商店><名前>リーバイス</名前><ciudad>Cañón</ciudad></商店>";
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(doc.label_str(doc.root()), Some("商店"));
    let city = doc.first_element_with_label("ciudad").unwrap();
    assert_eq!(doc.text_of(city), Some("Cañón"));
    let round = Document::parse_str(&doc.to_xml_string()).unwrap();
    assert_eq!(round.to_xml_string(), doc.to_xml_string());
}

#[test]
fn deep_narrow_document() {
    let depth = 300;
    let mut src = String::new();
    for i in 0..depth {
        src.push_str(&format!("<l{i}>"));
    }
    src.push_str("leaf");
    for i in (0..depth).rev() {
        src.push_str(&format!("</l{i}>"));
    }
    let doc = Document::parse_str(&src).unwrap();
    assert_eq!(doc.element_count(), depth);
    let deepest = doc.first_element_with_label(&format!("l{}", depth - 1)).unwrap();
    assert_eq!(doc.depth(deepest), depth - 1);
    assert_eq!(doc.dewey(deepest).depth(), depth - 1);
    assert_eq!(doc.text_of(deepest), Some("leaf"));
}

#[test]
fn wide_flat_document() {
    let width = 5_000;
    let mut src = String::from("<r>");
    for i in 0..width {
        src.push_str(&format!("<c>{i}</c>"));
    }
    src.push_str("</r>");
    let doc = Document::parse_str(&src).unwrap();
    assert_eq!(doc.element_count(), width + 1);
    let last = doc.elements_with_label("c")[width - 1];
    assert_eq!(doc.dewey(last).components(), &[(width - 1) as u32]);
    assert_eq!(doc.text_of(last), Some("4999"));
}

#[test]
fn cdata_preserves_markupish_text() {
    let src = "<code><![CDATA[if (a < b && b > c) { return \"<xml>\"; }]]></code>";
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(
        doc.text_of(doc.root()),
        Some("if (a < b && b > c) { return \"<xml>\"; }")
    );
    // Round-trips with escaping (not CDATA) but same content.
    let re = Document::parse_str(&doc.to_xml_string()).unwrap();
    assert_eq!(re.text_of(re.root()), doc.text_of(doc.root()));
}

#[test]
fn error_cases_are_rejected_with_positions() {
    for (src, what) in [
        ("<a><b></c></a>", "mismatched"),
        ("<a>", "eof"),
        ("<a/><b/>", "two roots"),
        ("<a>&unknown;</a>", "bad entity"),
        ("text only", "no markup"),
        ("<a b=></a>", "empty attr"),
        ("<a><![CDATA[x</a>", "open cdata"),
    ] {
        assert!(Document::parse_str(src).is_err(), "{what}: {src}");
    }
    // Error positions are line-accurate.
    let err = Document::parse_str("<a>\n<b>\n</c>\n</a>").unwrap_err();
    match err {
        Error::MismatchedTag { position, .. } => assert_eq!(position.line, 3),
        e => panic!("unexpected error {e:?}"),
    }
}

#[test]
fn whitespace_handling_modes() {
    let src = "<a>\n  <b> padded </b>\n</a>";
    let default = Document::parse_str(src).unwrap();
    assert_eq!(default.child_count(default.root()), 1, "blank text dropped");
    let b = default.first_element_with_label("b").unwrap();
    assert_eq!(default.text_of(b), Some("padded"), "trimmed");

    let raw = Document::parse_with(
        src,
        &ParseOptions {
            keep_whitespace_text: true,
            trim_text: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(raw.child_count(raw.root()), 3);
    let b = raw.first_element_with_label("b").unwrap();
    assert_eq!(raw.text_of(b), Some(" padded "));
}

#[test]
fn svg_like_namespaced_labels() {
    let src = r#"<svg:svg xmlns:svg="http://www.w3.org/2000/svg"><svg:rect width="5"/></svg:svg>"#;
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(doc.label_str(doc.root()), Some("svg:svg"));
    let rects = doc.elements_with_label("svg:rect");
    assert_eq!(rects.len(), 1);
    // The xmlns attribute is materialized like any other.
    let xmlns = doc.element_children(doc.root()).next().unwrap();
    assert_eq!(doc.label_str(xmlns), Some("xmlns:svg"));
}

#[test]
fn processing_instructions_and_doctype_coexist() {
    let src = "<?xml version=\"1.0\"?>\n<!DOCTYPE r>\n<?pi data?>\n<r><x>1</x></r>\n<?after?>";
    let doc = Document::parse_str(src).unwrap();
    assert_eq!(doc.doctype_name(), Some("r"));
    assert!(doc.dtd().is_none(), "no internal subset");
    assert_eq!(doc.element_count(), 2);
}

#[test]
fn reparse_stability_over_many_rounds() {
    let src = r#"<db><store city="Houston"><name>Levis &amp; Co</name><item><price>9</price></item></store></db>"#;
    let mut xml = Document::parse_str(src).unwrap().to_xml_string();
    for _ in 0..5 {
        let doc = Document::parse_str(&xml).unwrap();
        let next = doc.to_xml_string();
        assert_eq!(next, xml, "serialization must be a fixpoint");
        xml = next;
    }
}
