//! A tiny path-expression language for navigation in tests, examples and
//! generators.
//!
//! Supported grammar (a small XPath subset, absolute or relative):
//!
//! ```text
//! path      := step+
//! step      := "/" name | "//" name | "/" "*" | "//" "*"
//! name      := XML name
//! ```
//!
//! `/a/b` selects `b` children of `a`; `//x` selects descendants named `x`;
//! `*` matches any element label. Results are in document order without
//! duplicates.

use crate::document::{Document, NodeId};
use crate::error::{Error, Result};

/// One step of a compiled path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// `/name` or `/*` — children matching the test.
    Child(NameTest),
    /// `//name` or `//*` — descendants matching the test.
    Descendant(NameTest),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NameTest {
    Any,
    Named(String),
}

impl NameTest {
    fn matches(&self, doc: &Document, node: NodeId) -> bool {
        match self {
            NameTest::Any => doc.node(node).is_element(),
            NameTest::Named(n) => doc.label_str(node) == Some(n.as_str()),
        }
    }
}

/// A compiled path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
}

impl Path {
    /// Compile a path expression.
    pub fn compile(expr: &str) -> Result<Path> {
        let mut steps = Vec::new();
        let mut rest = expr.trim();
        if rest.is_empty() {
            return Err(Error::BadPath { message: "empty expression".into() });
        }
        if !rest.starts_with('/') {
            return Err(Error::BadPath {
                message: format!("expected `/` or `//` at the start of `{expr}`"),
            });
        }
        while !rest.is_empty() {
            let descendant = if rest.starts_with("//") {
                rest = &rest[2..];
                true
            } else if rest.starts_with('/') {
                rest = &rest[1..];
                false
            } else {
                return Err(Error::BadPath {
                    message: format!("expected `/` before `{rest}`"),
                });
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let name = &rest[..end];
            rest = &rest[end..];
            if name.is_empty() {
                return Err(Error::BadPath { message: "empty step name".into() });
            }
            let test = if name == "*" {
                NameTest::Any
            } else if name.chars().all(|c| c.is_alphanumeric() || "_-.:".contains(c)) {
                NameTest::Named(name.to_string())
            } else {
                return Err(Error::BadPath { message: format!("bad step name `{name}`") });
            };
            steps.push(if descendant { Step::Descendant(test) } else { Step::Child(test) });
        }
        Ok(Path { steps })
    }

    /// Evaluate against the document root. The **first step is matched
    /// against the root element itself** (so `/retailer/store` selects
    /// stores of a `retailer` root).
    pub fn select(&self, doc: &Document) -> Vec<NodeId> {
        let root = doc.root();
        let mut current: Vec<NodeId> = match self.steps.first() {
            None => return Vec::new(),
            Some(Step::Child(test)) => {
                if test.matches(doc, root) {
                    vec![root]
                } else {
                    Vec::new()
                }
            }
            Some(Step::Descendant(test)) => doc
                .subtree(root)
                .filter(|&n| test.matches(doc, n))
                .collect(),
        };
        for step in &self.steps[1..] {
            current = apply_step(doc, &current, step);
        }
        current
    }

    /// Evaluate relative to `context` (the first step matches children /
    /// descendants of `context`).
    pub fn select_from(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        let mut current = vec![context];
        for step in &self.steps {
            current = apply_step(doc, &current, step);
        }
        current
    }
}

fn apply_step(doc: &Document, current: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut out = Vec::new();
    match step {
        Step::Child(test) => {
            for &n in current {
                for c in doc.children(n) {
                    if test.matches(doc, c) {
                        out.push(c);
                    }
                }
            }
        }
        Step::Descendant(test) => {
            for &n in current {
                for d in doc.subtree(n).skip(1) {
                    if test.matches(doc, d) {
                        out.push(d);
                    }
                }
            }
        }
    }
    // Document order + dedup (IDs are preorder, so sort + dedup suffices).
    out.sort_unstable();
    out.dedup();
    out
}

/// Convenience: compile and select in one call.
pub fn select(doc: &Document, expr: &str) -> Result<Vec<NodeId>> {
    Ok(Path::compile(expr)?.select(doc))
}

/// Convenience: select and return the first match.
pub fn select_first(doc: &Document, expr: &str) -> Result<Option<NodeId>> {
    Ok(select(doc, expr)?.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<retailer><name>BB</name>\
             <store><name>Galleria</name><city>Houston</city></store>\
             <store><name>West Village</name><city>Austin</city></store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn absolute_child_path() {
        let d = doc();
        let cities = select(&d, "/retailer/store/city").unwrap();
        assert_eq!(cities.len(), 2);
        assert_eq!(d.text_of(cities[0]), Some("Houston"));
        assert_eq!(d.text_of(cities[1]), Some("Austin"));
    }

    #[test]
    fn first_step_matches_root() {
        let d = doc();
        assert_eq!(select(&d, "/retailer").unwrap(), vec![d.root()]);
        assert!(select(&d, "/shop").unwrap().is_empty());
    }

    #[test]
    fn descendant_step() {
        let d = doc();
        let names = select(&d, "//name").unwrap();
        assert_eq!(names.len(), 3);
        // Document order: retailer's name first.
        assert_eq!(d.text_of(names[0]), Some("BB"));
    }

    #[test]
    fn descendant_then_child() {
        let d = doc();
        let names = select(&d, "//store/name").unwrap();
        assert_eq!(names.len(), 2);
        assert_eq!(d.text_of(names[0]), Some("Galleria"));
    }

    #[test]
    fn wildcard() {
        let d = doc();
        let kids = select(&d, "/retailer/*").unwrap();
        assert_eq!(kids.len(), 3);
        let all = select(&d, "//*").unwrap();
        assert_eq!(all.len(), d.element_count());
    }

    #[test]
    fn relative_selection() {
        let d = doc();
        let store2 = d.elements_with_label("store")[1];
        let p = Path::compile("/name").unwrap();
        let names = p.select_from(&d, store2);
        assert_eq!(names.len(), 1);
        assert_eq!(d.text_of(names[0]), Some("West Village"));
    }

    #[test]
    fn results_are_in_document_order_without_duplicates() {
        let d = doc();
        let r = select(&d, "//store//*").unwrap();
        let mut sorted = r.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r, sorted);
    }

    #[test]
    fn bad_expressions_are_rejected() {
        assert!(Path::compile("").is_err());
        assert!(Path::compile("store").is_err());
        assert!(Path::compile("/sto re").is_err());
        assert!(Path::compile("/a//").is_err());
    }

    #[test]
    fn select_first_helper() {
        let d = doc();
        let n = select_first(&d, "//city").unwrap().unwrap();
        assert_eq!(d.text_of(n), Some("Houston"));
        assert!(select_first(&d, "//warehouse").unwrap().is_none());
    }
}
