//! A streaming XML lexer.
//!
//! The tokenizer yields a flat sequence of [`Token`]s — start/end tags with
//! their attributes, character data, comments, CDATA sections, processing
//! instructions, and the raw text of a `<!DOCTYPE ...>` declaration (handed
//! to [`crate::dtd`] for parsing). It tracks precise line/column positions
//! for every token and error.
//!
//! Scope: the subset of XML 1.0 used by data-oriented documents — no
//! external entities, no namespaces-aware processing (prefixed names are
//! kept verbatim as labels).

use crate::error::{Error, Position, Result};
use crate::escape::unescape;

/// One lexical token of an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in source order, values already unescaped.
        attributes: Vec<(String, String)>,
        /// Whether the tag was self-closing (`<a/>`).
        self_closing: bool,
        /// Position of the `<`.
        position: Position,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
        /// Position of the `<`.
        position: Position,
    },
    /// Character data between tags, already unescaped.
    Text {
        /// Unescaped text content.
        content: String,
        /// Position of the first character.
        position: Position,
    },
    /// `<!-- ... -->` (content without the delimiters).
    Comment {
        /// Comment body.
        content: String,
        /// Position of the `<`.
        position: Position,
    },
    /// `<![CDATA[ ... ]]>` content, delivered verbatim.
    CData {
        /// Raw CDATA content.
        content: String,
        /// Position of the `<`.
        position: Position,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target (e.g. `xml` for the declaration).
        target: String,
        /// Everything between the target and `?>`.
        data: String,
        /// Position of the `<`.
        position: Position,
    },
    /// `<!DOCTYPE root [ ... ]>` — `name` is the declared root, `internal`
    /// the raw internal subset (may be empty).
    Doctype {
        /// Declared document element name.
        name: String,
        /// Raw internal subset between `[` and `]`, if present.
        internal: String,
        /// Position of the `<`.
        position: Position,
    },
}

impl Token {
    /// The source position at which the token starts.
    pub fn position(&self) -> Position {
        match self {
            Token::StartTag { position, .. }
            | Token::EndTag { position, .. }
            | Token::Text { position, .. }
            | Token::Comment { position, .. }
            | Token::CData { position, .. }
            | Token::ProcessingInstruction { position, .. }
            | Token::Doctype { position, .. } => *position,
        }
    }
}

/// Streaming tokenizer over an input string.
pub struct Tokenizer<'a> {
    input: &'a [u8],
    source: &'a str,
    pos: Position,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `source`.
    pub fn new(source: &'a str) -> Self {
        Tokenizer { input: source.as_bytes(), source, pos: Position::start() }
    }

    /// Tokenize the entire input into a vector.
    pub fn tokenize_all(source: &'a str) -> Result<Vec<Token>> {
        let mut t = Tokenizer::new(source);
        let mut out = Vec::new();
        while let Some(tok) = t.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos.offset).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.input.get(self.pos.offset + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.advance(b);
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos.offset..].starts_with(s.as_bytes())
    }

    fn consume_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn eof_err(&self, expected: &str) -> Error {
        Error::UnexpectedEof { expected: expected.to_string(), position: self.pos }
    }

    /// Scan until the byte sequence `delim` and return the text before it
    /// (consuming the delimiter).
    fn take_until(&mut self, delim: &str, expected: &str) -> Result<String> {
        let start = self.pos.offset;
        loop {
            if self.pos.offset >= self.input.len() {
                return Err(self.eof_err(expected));
            }
            if self.starts_with(delim) {
                let content = self.source[start..self.pos.offset].to_string();
                self.consume_str(delim);
                return Ok(content);
            }
            self.bump();
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos.offset;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => {
                return Err(Error::syntax("expected a name", self.pos));
            }
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.source[start..self.pos.offset].to_string())
    }

    fn read_quoted(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(Error::syntax("expected a quoted value", self.pos)),
        };
        let start_pos = self.pos;
        let start = self.pos.offset;
        loop {
            match self.peek() {
                None => return Err(self.eof_err("closing quote")),
                Some(b) if b == quote => {
                    let raw = &self.source[start..self.pos.offset];
                    self.bump();
                    return unescape(raw, start_pos);
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Produce the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>> {
        if self.pos.offset >= self.input.len() {
            return Ok(None);
        }
        if self.peek() == Some(b'<') {
            let position = self.pos;
            match self.peek_at(1) {
                Some(b'/') => {
                    self.bump();
                    self.bump();
                    let name = self.read_name()?;
                    self.skip_whitespace();
                    if self.bump() != Some(b'>') {
                        return Err(Error::syntax("expected `>` in close tag", self.pos));
                    }
                    Ok(Some(Token::EndTag { name, position }))
                }
                Some(b'!') => self.lex_bang(position),
                Some(b'?') => {
                    self.bump();
                    self.bump();
                    let target = self.read_name()?;
                    let data = self.take_until("?>", "`?>`")?;
                    Ok(Some(Token::ProcessingInstruction {
                        target,
                        data: data.trim().to_string(),
                        position,
                    }))
                }
                _ => {
                    self.bump();
                    self.lex_start_tag(position)
                }
            }
        } else {
            let position = self.pos;
            let start = self.pos.offset;
            while let Some(b) = self.peek() {
                if b == b'<' {
                    break;
                }
                self.bump();
            }
            let raw = &self.source[start..self.pos.offset];
            let content = unescape(raw, position)?;
            Ok(Some(Token::Text { content, position }))
        }
    }

    fn lex_start_tag(&mut self, position: Position) -> Result<Option<Token>> {
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => return Err(self.eof_err("`>` to close the tag")),
                Some(b'>') => {
                    self.bump();
                    return Ok(Some(Token::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                        position,
                    }));
                }
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(Error::syntax("expected `>` after `/`", self.pos));
                    }
                    return Ok(Some(Token::StartTag {
                        name,
                        attributes,
                        self_closing: true,
                        position,
                    }));
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    if self.bump() != Some(b'=') {
                        return Err(Error::syntax(
                            format!("expected `=` after attribute `{attr_name}`"),
                            self.pos,
                        ));
                    }
                    self.skip_whitespace();
                    let value = self.read_quoted()?;
                    attributes.push((attr_name, value));
                }
            }
        }
    }

    fn lex_bang(&mut self, position: Position) -> Result<Option<Token>> {
        // self.pos is at `<`; dispatch on what follows `<!`.
        if self.consume_str("<!--") {
            let content = self.take_until("-->", "`-->`")?;
            return Ok(Some(Token::Comment { content, position }));
        }
        if self.consume_str("<![CDATA[") {
            let content = self.take_until("]]>", "`]]>`")?;
            return Ok(Some(Token::CData { content, position }));
        }
        if self.consume_str("<!DOCTYPE") {
            self.skip_whitespace();
            let name = self.read_name()?;
            self.skip_whitespace();
            // Skip optional external-ID keywords; we do not fetch externals.
            while let Some(b) = self.peek() {
                if b == b'[' || b == b'>' {
                    break;
                }
                if b == b'"' || b == b'\'' {
                    self.read_quoted()?;
                } else {
                    self.bump();
                }
            }
            let mut internal = String::new();
            if self.peek() == Some(b'[') {
                self.bump();
                internal = self.take_until("]", "`]` to close the internal subset")?;
                self.skip_whitespace();
            }
            if self.bump() != Some(b'>') {
                return Err(Error::syntax("expected `>` to close DOCTYPE", self.pos));
            }
            return Ok(Some(Token::Doctype { name, internal, position }));
        }
        Err(Error::syntax("unrecognized markup after `<!`", position))
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Tokenizer::tokenize_all(s).unwrap()
    }

    #[test]
    fn simple_element() {
        let toks = lex("<a>hi</a>");
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[0], Token::StartTag { name, self_closing: false, .. } if name == "a"));
        assert!(matches!(&toks[1], Token::Text { content, .. } if content == "hi"));
        assert!(matches!(&toks[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn self_closing_and_attributes() {
        let toks = lex(r#"<store id="s1" city='Houston'/>"#);
        match &toks[0] {
            Token::StartTag { name, attributes, self_closing, .. } => {
                assert_eq!(name, "store");
                assert!(*self_closing);
                assert_eq!(
                    attributes,
                    &vec![
                        ("id".to_string(), "s1".to_string()),
                        ("city".to_string(), "Houston".to_string())
                    ]
                );
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn attribute_values_are_unescaped() {
        let toks = lex(r#"<a v="x &amp; y"/>"#);
        match &toks[0] {
            Token::StartTag { attributes, .. } => assert_eq!(attributes[0].1, "x & y"),
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn text_is_unescaped() {
        let toks = lex("<a>x &lt; y &#65;</a>");
        assert!(matches!(&toks[1], Token::Text { content, .. } if content == "x < y A"));
    }

    #[test]
    fn comments_cdata_pi() {
        let toks = lex("<a><!-- note --><![CDATA[1<2]]><?php echo?></a>");
        assert!(matches!(&toks[1], Token::Comment { content, .. } if content == " note "));
        assert!(matches!(&toks[2], Token::CData { content, .. } if content == "1<2"));
        assert!(matches!(
            &toks[3],
            Token::ProcessingInstruction { target, data, .. } if target == "php" && data == "echo"
        ));
    }

    #[test]
    fn xml_declaration_is_a_pi() {
        let toks = lex(r#"<?xml version="1.0"?><a/>"#);
        assert!(matches!(&toks[0], Token::ProcessingInstruction { target, .. } if target == "xml"));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let toks = lex("<!DOCTYPE store [<!ELEMENT store (name)>]><store><name>x</name></store>");
        match &toks[0] {
            Token::Doctype { name, internal, .. } => {
                assert_eq!(name, "store");
                assert!(internal.contains("<!ELEMENT store (name)>"));
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn doctype_with_external_id_is_skipped() {
        let toks = lex(r#"<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://x"><html/>"#);
        assert!(matches!(&toks[0], Token::Doctype { name, internal, .. } if name == "html" && internal.is_empty()));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = Tokenizer::tokenize_all("<a>\n<b oops></a>").unwrap_err();
        match err {
            Error::Syntax { position, .. } => {
                assert_eq!(position.line, 2);
            }
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(Tokenizer::tokenize_all("<a>text").is_ok()); // tag matching is the parser's job
        assert!(Tokenizer::tokenize_all("<!-- never closed").is_err());
        assert!(Tokenizer::tokenize_all("<![CDATA[ open").is_err());
        assert!(Tokenizer::tokenize_all("<a attr=\"unclosed>").is_err());
    }

    #[test]
    fn names_allow_xml_charset() {
        let toks = lex("<ns:open_auction-1.x/>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "ns:open_auction-1.x"));
    }

    #[test]
    fn whitespace_inside_tags_is_flexible() {
        let toks = lex("<a  b = \"1\"  ></a >");
        assert!(matches!(&toks[0], Token::StartTag { attributes, .. } if attributes[0] == ("b".to_string(), "1".to_string())));
        assert!(matches!(&toks[1], Token::EndTag { name, .. } if name == "a"));
    }
}
