//! Structural summary ("DataGuide") inference and `*`-node resolution.
//!
//! Every element node is mapped to a **label path** — the sequence of labels
//! from the root (e.g. `/retailer/store/city`). For each distinct path the
//! summary records instance counts and, crucially, whether siblings with
//! that label ever repeat under one parent instance. Combined with the DTD
//! (when present), this answers the paper's `*`-node question per path:
//!
//! * if the parent element has a DTD declaration, the DTD decides
//!   ([`crate::dtd::Dtd::is_repeatable`]);
//! * otherwise a path is a `*`-node iff some parent instance in the data has
//!   two or more children with that label.
//!
//! The analyzer crate layers the entity/attribute/connection classification
//! of the paper's Data Analyzer on top of this summary.

use std::collections::HashMap;

use crate::document::{Document, NodeId};
use crate::symbol::Symbol;

/// Index of a label path in a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

impl PathId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-path summary data.
#[derive(Debug, Clone)]
pub struct PathInfo {
    /// Parent path (`None` for the root path).
    pub parent: Option<PathId>,
    /// The last label of the path.
    pub label: Symbol,
    /// Depth of the path (root path = 0).
    pub depth: u32,
    /// Number of element instances with this path.
    pub instance_count: u32,
    /// Maximum number of same-label siblings observed under one parent
    /// instance.
    pub max_siblings: u32,
    /// Whether any instance has an element child.
    pub has_element_child: bool,
    /// Whether any instance has a text child.
    pub has_text_child: bool,
    /// Resolved `*`-node status (DTD first, data otherwise).
    pub starred: bool,
}

/// A structural summary of one document.
#[derive(Debug, Clone)]
pub struct Schema {
    paths: Vec<PathInfo>,
    /// (parent path, child label) → child path.
    lookup: HashMap<(Option<PathId>, Symbol), PathId>,
    /// NodeId → PathId for element nodes (dense; text nodes map to their
    /// parent's path).
    node_paths: Vec<PathId>,
    root_path: PathId,
}

impl Schema {
    /// Infer the summary for `doc`, resolving `*`-nodes against the DTD when
    /// one was parsed.
    pub fn infer(doc: &Document) -> Schema {
        let mut schema = Schema {
            paths: Vec::new(),
            lookup: HashMap::new(),
            node_paths: vec![PathId(0); doc.len()],
            root_path: PathId(0),
        };

        // Pass 1: assign paths in preorder and collect counts.
        let root = doc.root();
        let root_label = doc.node(root).label();
        let root_path = schema.intern_path(None, root_label);
        schema.root_path = root_path;
        schema.node_paths[root.index()] = root_path;
        schema.paths[root_path.index()].instance_count = 1;
        schema.paths[root_path.index()].max_siblings = 1;

        for node in doc.subtree(root) {
            if !doc.node(node).is_element() {
                if let Some(p) = doc.parent(node) {
                    schema.node_paths[node.index()] = schema.node_paths[p.index()];
                }
                continue;
            }
            let node_path = schema.node_paths[node.index()];
            // Count same-label children per this parent instance.
            let mut sibling_counts: HashMap<Symbol, u32> = HashMap::new();
            for child in doc.children(node) {
                let cn = doc.node(child);
                if cn.is_text() {
                    schema.paths[node_path.index()].has_text_child = true;
                    schema.node_paths[child.index()] = node_path;
                    continue;
                }
                schema.paths[node_path.index()].has_element_child = true;
                let child_path = schema.intern_path(Some(node_path), cn.label());
                schema.node_paths[child.index()] = child_path;
                schema.paths[child_path.index()].instance_count += 1;
                *sibling_counts.entry(cn.label()).or_insert(0) += 1;
            }
            for (label, count) in sibling_counts {
                let child_path = schema.lookup[&(Some(node_path), label)];
                let info = &mut schema.paths[child_path.index()];
                info.max_siblings = info.max_siblings.max(count);
            }
        }

        // Pass 2: resolve starredness.
        for i in 0..schema.paths.len() {
            let (parent, label, max_siblings) = {
                let p = &schema.paths[i];
                (p.parent, p.label, p.max_siblings)
            };
            let starred = match parent {
                None => false, // the root is never a *-node
                Some(parent_path) => {
                    let parent_label = doc.resolve(schema.paths[parent_path.index()].label);
                    let child_label = doc.resolve(label);
                    match doc.dtd().and_then(|d| d.is_repeatable(parent_label, child_label)) {
                        Some(answer) => answer,
                        None => max_siblings >= 2,
                    }
                }
            };
            schema.paths[i].starred = starred;
        }
        schema
    }

    fn intern_path(&mut self, parent: Option<PathId>, label: Symbol) -> PathId {
        if let Some(&p) = self.lookup.get(&(parent, label)) {
            return p;
        }
        let id = PathId(self.paths.len() as u32);
        let depth = parent.map(|p| self.paths[p.index()].depth + 1).unwrap_or(0);
        self.paths.push(PathInfo {
            parent,
            label,
            depth,
            instance_count: 0,
            max_siblings: 0,
            has_element_child: false,
            has_text_child: false,
            starred: false,
        });
        self.lookup.insert((parent, label), id);
        id
    }

    /// The path of the document root.
    pub fn root_path(&self) -> PathId {
        self.root_path
    }

    /// The path of a node (for text nodes, the parent element's path).
    pub fn path_of(&self, node: NodeId) -> PathId {
        self.node_paths[node.index()]
    }

    /// Summary data for a path.
    pub fn info(&self, path: PathId) -> &PathInfo {
        &self.paths[path.index()]
    }

    /// Whether `path` is a `*`-node (may repeat under its parent).
    pub fn is_starred(&self, path: PathId) -> bool {
        self.paths[path.index()].starred
    }

    /// Whether the **node** sits on a starred path.
    pub fn node_is_starred(&self, node: NodeId) -> bool {
        self.is_starred(self.path_of(node))
    }

    /// Number of distinct label paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterate over all paths.
    pub fn paths(&self) -> impl Iterator<Item = (PathId, &PathInfo)> {
        self.paths.iter().enumerate().map(|(i, p)| (PathId(i as u32), p))
    }

    /// Render a path as `/a/b/c`.
    pub fn path_string(&self, path: PathId, doc: &Document) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(path);
        while let Some(p) = cur {
            let info = &self.paths[p.index()];
            labels.push(doc.resolve(info.label));
            cur = info.parent;
        }
        labels.reverse();
        let mut out = String::new();
        for l in labels {
            out.push('/');
            out.push_str(l);
        }
        out
    }

    /// Find a path by its `/a/b/c` string.
    pub fn path_by_string(&self, s: &str, doc: &Document) -> Option<PathId> {
        let mut cur: Option<PathId> = None;
        for part in s.split('/').filter(|p| !p.is_empty()) {
            let sym = doc.symbols().get(part)?;
            cur = Some(*self.lookup.get(&(cur, sym))?);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_no_dtd() -> Document {
        Document::parse_str(
            "<retailer><name>BB</name>\
             <store><city>Houston</city></store>\
             <store><city>Austin</city></store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn repeated_siblings_are_starred_without_dtd() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        let store = s.path_by_string("/retailer/store", &d).unwrap();
        assert!(s.is_starred(store));
        let name = s.path_by_string("/retailer/name", &d).unwrap();
        assert!(!s.is_starred(name));
        let city = s.path_by_string("/retailer/store/city", &d).unwrap();
        assert!(!s.is_starred(city), "one city per store in the data");
    }

    #[test]
    fn dtd_overrides_data_inference() {
        // Data shows one store, but the DTD says store may repeat.
        let d = Document::parse_str(
            "<!DOCTYPE retailer [\
              <!ELEMENT retailer (name, store*)>\
              <!ELEMENT store (city)>\
              <!ELEMENT name (#PCDATA)>\
              <!ELEMENT city (#PCDATA)>\
             ]>\
             <retailer><name>BB</name><store><city>Houston</city></store></retailer>",
        )
        .unwrap();
        let s = Schema::infer(&d);
        let store = s.path_by_string("/retailer/store", &d).unwrap();
        assert!(s.is_starred(store), "DTD star wins over single instance");
        let city = s.path_by_string("/retailer/store/city", &d).unwrap();
        assert!(!s.is_starred(city));
    }

    #[test]
    fn instance_counts_and_siblings() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        let store = s.path_by_string("/retailer/store", &d).unwrap();
        assert_eq!(s.info(store).instance_count, 2);
        assert_eq!(s.info(store).max_siblings, 2);
        let city = s.path_by_string("/retailer/store/city", &d).unwrap();
        assert_eq!(s.info(city).instance_count, 2);
        assert_eq!(s.info(city).max_siblings, 1);
    }

    #[test]
    fn node_paths_are_context_sensitive() {
        // `name` under retailer vs under store are different paths.
        let d = Document::parse_str(
            "<retailer><name>BB</name><store><name>Galleria</name></store></retailer>",
        )
        .unwrap();
        let s = Schema::infer(&d);
        let names = d.elements_with_label("name");
        assert_ne!(s.path_of(names[0]), s.path_of(names[1]));
        assert_eq!(s.path_string(s.path_of(names[0]), &d), "/retailer/name");
        assert_eq!(s.path_string(s.path_of(names[1]), &d), "/retailer/store/name");
    }

    #[test]
    fn text_nodes_map_to_parent_path() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        let name = d.first_element_with_label("name").unwrap();
        let text = d.children(name).next().unwrap();
        assert_eq!(s.path_of(text), s.path_of(name));
    }

    #[test]
    fn has_text_and_element_child_flags() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        let retailer = s.root_path();
        assert!(s.info(retailer).has_element_child);
        assert!(!s.info(retailer).has_text_child);
        let name = s.path_by_string("/retailer/name", &d).unwrap();
        assert!(s.info(name).has_text_child);
        assert!(!s.info(name).has_element_child);
    }

    #[test]
    fn root_is_never_starred() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        assert!(!s.is_starred(s.root_path()));
    }

    #[test]
    fn path_by_string_rejects_unknown() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        assert!(s.path_by_string("/retailer/warehouse", &d).is_none());
        assert!(s.path_by_string("/store", &d).is_none());
    }

    #[test]
    fn path_count_matches_distinct_paths() {
        let d = doc_no_dtd();
        let s = Schema::infer(&d);
        // /retailer, /retailer/name, /retailer/store, /retailer/store/city
        assert_eq!(s.path_count(), 4);
    }
}
