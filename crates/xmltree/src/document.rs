//! The arena DOM: a flat, index-addressed XML tree.
//!
//! Nodes live in one `Vec<Node>` and are addressed by [`NodeId`]; element
//! labels are interned in a [`SymbolTable`]. The design follows the arena /
//! newtype-index idioms: no reference counting, no interior mutability,
//! cache-friendly traversal, and IDs that downstream crates (indexes, search
//! engines, the snippet selector) can use as dense array keys.
//!
//! # Invariant: IDs are in document order
//!
//! Construction (parser, [`crate::builder::DocBuilder`], [`Document::project`])
//! assigns [`NodeId`]s in preorder, so comparing raw IDs compares document
//! positions. [`Document::debug_validate`] checks this invariant along with
//! parent/child consistency.

use std::collections::{HashMap, HashSet};

use crate::dewey::Dewey;
use crate::symbol::{Symbol, SymbolTable};

/// Index of a node within its [`Document`]'s arena.
///
/// IDs are assigned in document (preorder) order, so `a < b` means node `a`
/// starts before node `b` in the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an ID from a raw index (must come from the same document).
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The two kinds of tree node. XML-syntax attributes are materialized as
/// child elements by default (see [`crate::parser::ParseOptions`]), matching
/// the paper's uniform node model where an "attribute" is an element with a
/// single text child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node with a label and children.
    Element,
    /// A text node carrying character data.
    Text,
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: NodeKind,
    /// Element label; unused (root symbol) for text nodes.
    pub(crate) label: Symbol,
    pub(crate) parent: Option<NodeId>,
    /// Rank of this node among its parent's children (0-based).
    pub(crate) rank: u32,
    pub(crate) children: Vec<NodeId>,
    /// Character data for text nodes; `None` for elements.
    pub(crate) text: Option<Box<str>>,
}

impl Node {
    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The interned label (meaningful only for elements).
    pub fn label(&self) -> Symbol {
        self.label
    }

    /// The parent, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// This node's rank among its parent's children.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Child IDs in document order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Text content for text nodes.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// Whether this is an element node.
    pub fn is_element(&self) -> bool {
        self.kind == NodeKind::Element
    }

    /// Whether this is a text node.
    pub fn is_text(&self) -> bool {
        self.kind == NodeKind::Text
    }
}

/// An immutable XML document tree.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) symbols: SymbolTable,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Root element name declared in `<!DOCTYPE name ...>`, if any.
    pub(crate) doctype_name: Option<String>,
    /// Parsed internal DTD subset, if any.
    pub(crate) dtd: Option<crate::dtd::Dtd>,
}

impl Document {
    /// Parse a document from a string with default [`crate::ParseOptions`].
    pub fn parse_str(source: &str) -> crate::Result<Document> {
        crate::parser::parse(source, &crate::parser::ParseOptions::default())
    }

    /// Parse with explicit options.
    pub fn parse_with(source: &str, options: &crate::parser::ParseOptions) -> crate::Result<Document> {
        crate::parser::parse(source, options)
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has no nodes (never true for parsed documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_element()).count()
    }

    /// Estimated heap footprint in bytes: the node arena (allocated
    /// capacity), every node's child list and text content, and the label
    /// interner (each distinct label stored twice — interner vector plus
    /// lookup-map key — at [`crate::SYMBOL_ENTRY_OVERHEAD`] bytes of fixed
    /// overhead per entry, the same estimate the index crates use for
    /// their token tables).
    pub fn memory_footprint(&self) -> usize {
        let arena = self.nodes.capacity() * std::mem::size_of::<Node>();
        let per_node: usize = self
            .nodes
            .iter()
            .map(|n| {
                n.children.capacity() * std::mem::size_of::<NodeId>()
                    + n.text.as_deref().map_or(0, str::len)
            })
            .sum();
        let symbols: usize = self
            .symbols
            .iter()
            .map(|(_, s)| 2 * s.len() + crate::SYMBOL_ENTRY_OVERHEAD)
            .sum();
        arena + per_node + symbols
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The symbol table holding element labels.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Intern a label (used by builders and tests).
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.symbols.intern(s)
    }

    /// Resolve a label symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The label symbol of an element node (`None` for text nodes).
    pub fn label(&self, id: NodeId) -> Option<Symbol> {
        let n = self.node(id);
        n.is_element().then_some(n.label)
    }

    /// The label string of an element node (`None` for text nodes).
    pub fn label_str(&self, id: NodeId) -> Option<&str> {
        self.label(id).map(|s| self.symbols.resolve(s))
    }

    /// The declared DOCTYPE root name, if a DOCTYPE was present.
    pub fn doctype_name(&self) -> Option<&str> {
        self.doctype_name.as_deref()
    }

    /// The parsed internal DTD subset, if present.
    pub fn dtd(&self) -> Option<&crate::dtd::Dtd> {
        self.dtd.as_ref()
    }

    /// Parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id).children.iter().copied()
    }

    /// Element children only.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(move |&c| self.node(c).is_element())
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.node(id).children.len()
    }

    /// For a text node: its content. For an element whose children are all
    /// text (at least one), the concatenated content — the "value" of an
    /// attribute-like element. Otherwise `None`.
    pub fn text_of(&self, id: NodeId) -> Option<&str> {
        let n = self.node(id);
        match n.kind {
            NodeKind::Text => n.text.as_deref(),
            NodeKind::Element => {
                if n.children.len() == 1 {
                    let c = self.node(n.children[0]);
                    if c.is_text() {
                        return c.text.as_deref();
                    }
                }
                None
            }
        }
    }

    /// Concatenated text of **all** text descendants of `id`, separated by
    /// single spaces (used by the structure-blind text baseline).
    pub fn concat_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.subtree(id) {
            if let Some(t) = self.node(n).text() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }

    /// Preorder iterator over the subtree rooted at `id`, including `id`.
    pub fn subtree(&self, id: NodeId) -> Subtree<'_> {
        Subtree { doc: self, stack: vec![id] }
    }

    /// Preorder iterator over the **element** nodes of the subtree at `id`.
    pub fn subtree_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.subtree(id).filter(move |&n| self.node(n).is_element())
    }

    /// Number of nodes in the subtree at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.subtree(id).count()
    }

    /// Iterator over strict ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, current: self.node(id).parent }
    }

    /// Iterator over `id` then its ancestors, nearest first.
    pub fn ancestors_or_self(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, current: Some(id) }
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// True iff `a` is an ancestor of `b` or equal to it.
    pub fn is_ancestor_or_self(&self, a: NodeId, b: NodeId) -> bool {
        self.ancestors_or_self(b).any(|n| n == a)
    }

    /// The Dewey order label of `id`, computed by walking to the root
    /// (O(depth)). The `extract-index` crate caches these densely.
    pub fn dewey(&self, id: NodeId) -> Dewey {
        let mut comps: Vec<u32> = self.ancestors_or_self(id).map(|n| self.node(n).rank).collect();
        comps.pop(); // drop the root's meaningless rank
        comps.reverse();
        Dewey::from_components(comps)
    }

    /// Resolve a Dewey label back to a node, if it addresses one.
    pub fn node_by_dewey(&self, dewey: &Dewey) -> Option<NodeId> {
        let mut cur = self.root;
        for &rank in dewey.components() {
            cur = *self.node(cur).children.get(rank as usize)?;
        }
        Some(cur)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let da = self.depth(a);
        let db = self.depth(b);
        let (mut x, mut y) = (a, b);
        // Lift the deeper node to the same depth, then walk up in lockstep.
        for _ in db..da {
            x = self.parent(x).expect("depth accounting");
        }
        for _ in da..db {
            y = self.parent(y).expect("depth accounting");
        }
        while x != y {
            x = self.parent(x).expect("nodes share a root");
            y = self.parent(y).expect("nodes share a root");
        }
        x
    }

    /// All element nodes with the given label, in document order.
    pub fn elements_with_label(&self, label: &str) -> Vec<NodeId> {
        let Some(sym) = self.symbols.get(label) else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_element() && n.label == sym)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// First element with the given label in document order.
    pub fn first_element_with_label(&self, label: &str) -> Option<NodeId> {
        self.elements_with_label(label).into_iter().next()
    }

    /// Iterator over every node ID in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Extract the subtree rooted at `root`, keeping only element nodes in
    /// `keep` (the set is ancestor-closed internally: ancestors of kept
    /// nodes up to `root` are always included, as is `root` itself).
    /// Text children of kept elements ride along, so attribute values are
    /// preserved. Returns the new document and the old→new ID mapping.
    pub fn project(
        &self,
        root: NodeId,
        keep: &HashSet<NodeId>,
    ) -> (Document, HashMap<NodeId, NodeId>) {
        // Close the keep set under ancestors (bounded by `root`).
        let mut closed: HashSet<NodeId> = HashSet::with_capacity(keep.len() * 2);
        closed.insert(root);
        for &n in keep {
            if !self.is_ancestor_or_self(root, n) {
                continue;
            }
            for a in self.ancestors_or_self(n) {
                if !closed.insert(a) || a == root {
                    break;
                }
            }
        }

        let mut out = Document {
            symbols: self.symbols.clone(),
            nodes: Vec::with_capacity(closed.len() * 2),
            root: NodeId(0),
            doctype_name: self.doctype_name.clone(),
            dtd: self.dtd.clone(),
        };
        let mut mapping = HashMap::with_capacity(closed.len());
        self.project_rec(root, None, &closed, &mut out, &mut mapping);
        (out, mapping)
    }

    fn project_rec(
        &self,
        node: NodeId,
        new_parent: Option<NodeId>,
        closed: &HashSet<NodeId>,
        out: &mut Document,
        mapping: &mut HashMap<NodeId, NodeId>,
    ) {
        let src = self.node(node);
        let new_id = NodeId(out.nodes.len() as u32);
        let rank = match new_parent {
            Some(p) => {
                let r = out.nodes[p.index()].children.len() as u32;
                out.nodes[p.index()].children.push(new_id);
                r
            }
            None => 0,
        };
        out.nodes.push(Node {
            kind: src.kind,
            label: src.label,
            parent: new_parent,
            rank,
            children: Vec::new(),
            text: src.text.clone(),
        });
        mapping.insert(node, new_id);
        for &c in &src.children {
            let cn = self.node(c);
            // Kept elements recurse; text children of a kept element ride
            // along so values stay attached to their attribute elements.
            if (cn.is_element() && closed.contains(&c)) || cn.is_text() {
                self.project_rec(c, Some(new_id), closed, out, mapping);
            }
        }
    }

    /// Number of element→element edges in the subtree at `root`. This is the
    /// paper's snippet size measure ("the number of edges in the tree",
    /// counting an attribute together with its value as one edge).
    pub fn element_edges(&self, root: NodeId) -> usize {
        self.subtree_elements(root).count().saturating_sub(1)
    }

    /// Check structural invariants (parent/child symmetry, preorder ID
    /// assignment, rank consistency). Used by tests and debug builds.
    pub fn debug_validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty document".into());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut order: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                return Err(format!("node {n} reachable twice"));
            }
            seen[n.index()] = true;
            order.push(n);
            let node = self.node(n);
            for (i, &c) in node.children.iter().enumerate() {
                let cn = &self.nodes[c.index()];
                if cn.parent != Some(n) {
                    return Err(format!("child {c} of {n} has parent {:?}", cn.parent));
                }
                if cn.rank as usize != i {
                    return Err(format!("child {c} of {n} has rank {} != {}", cn.rank, i));
                }
            }
            for &c in node.children.iter().rev() {
                stack.push(c);
            }
        }
        if seen.iter().any(|s| !s) {
            return Err("unreachable nodes in arena".into());
        }
        for w in order.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("IDs not in preorder: {} then {}", w[0], w[1]));
            }
        }
        Ok(())
    }
}

/// Preorder subtree iterator. See [`Document::subtree`].
pub struct Subtree<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Subtree<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        let children = &self.doc.node(n).children;
        self.stack.extend(children.iter().rev().copied());
        Some(n)
    }
}

/// Upward iterator. See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    current: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.current?;
        self.current = self.doc.node(n).parent;
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document::parse_str(
            "<retailer><name>BB</name>\
             <store><city>Houston</city><city>Austin</city></store>\
             <store><city>Dallas</city></store></retailer>",
        )
        .unwrap()
    }

    #[test]
    fn navigation_basics() {
        let d = sample();
        let root = d.root();
        assert_eq!(d.label_str(root), Some("retailer"));
        assert_eq!(d.element_children(root).count(), 3);
        assert!(d.parent(root).is_none());
        let name = d.element_children(root).next().unwrap();
        assert_eq!(d.label_str(name), Some("name"));
        assert_eq!(d.text_of(name), Some("BB"));
        assert_eq!(d.parent(name), Some(root));
    }

    #[test]
    fn ids_are_preorder() {
        let d = sample();
        d.debug_validate().unwrap();
        let ids: Vec<NodeId> = d.subtree(d.root()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "preorder must equal ID order");
    }

    #[test]
    fn dewey_round_trip() {
        let d = sample();
        for n in d.all_nodes() {
            let dw = d.dewey(n);
            assert_eq!(d.node_by_dewey(&dw), Some(n), "dewey {dw} of {n}");
        }
    }

    #[test]
    fn dewey_of_root_is_empty() {
        let d = sample();
        assert!(d.dewey(d.root()).is_root());
    }

    #[test]
    fn lca_matches_dewey_lca() {
        let d = sample();
        let nodes: Vec<NodeId> = d.all_nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                let via_tree = d.lca(a, b);
                let via_dewey = d.node_by_dewey(&d.dewey(a).lca(&d.dewey(b))).unwrap();
                assert_eq!(via_tree, via_dewey);
            }
        }
    }

    #[test]
    fn ancestor_tests_agree_with_dewey() {
        let d = sample();
        let nodes: Vec<NodeId> = d.all_nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    d.is_ancestor_or_self(a, b),
                    d.dewey(a).is_ancestor_or_self_of(&d.dewey(b))
                );
            }
        }
    }

    #[test]
    fn elements_with_label_in_document_order() {
        let d = sample();
        let stores = d.elements_with_label("store");
        assert_eq!(stores.len(), 2);
        assert!(stores[0] < stores[1]);
        assert!(d.elements_with_label("warehouse").is_empty());
    }

    #[test]
    fn concat_text_flattens() {
        let d = sample();
        assert_eq!(d.concat_text(d.root()), "BB Houston Austin Dallas");
    }

    #[test]
    fn text_of_requires_single_text_child() {
        let d = sample();
        let root = d.root();
        assert_eq!(d.text_of(root), None, "root has element children");
        let store = d.elements_with_label("store")[0];
        assert_eq!(d.text_of(store), None);
        let city = d.elements_with_label("city")[0];
        assert_eq!(d.text_of(city), Some("Houston"));
    }

    #[test]
    fn subtree_sizes() {
        let d = sample();
        let store2 = d.elements_with_label("store")[1];
        // store2 + city + text
        assert_eq!(d.subtree_size(store2), 3);
        assert_eq!(d.subtree_elements(store2).count(), 2);
        assert_eq!(d.element_edges(store2), 1);
    }

    #[test]
    fn project_keeps_requested_subset() {
        let d = sample();
        let root = d.root();
        let name = d.elements_with_label("name")[0];
        let city_dallas = d.elements_with_label("city")[2];
        let keep: HashSet<NodeId> = [name, city_dallas].into_iter().collect();
        let (snip, mapping) = d.project(root, &keep);
        snip.debug_validate().unwrap();
        // retailer, name+text, store2, city+text
        assert_eq!(snip.element_count(), 4);
        assert_eq!(snip.label_str(snip.root()), Some("retailer"));
        assert_eq!(snip.text_of(mapping[&name]), Some("BB"));
        assert_eq!(snip.text_of(mapping[&city_dallas]), Some("Dallas"));
        // Houston/Austin store was not kept.
        assert_eq!(snip.elements_with_label("store").len(), 1);
        assert_eq!(snip.elements_with_label("city").len(), 1);
    }

    #[test]
    fn project_from_inner_root_ignores_outside_nodes() {
        let d = sample();
        let store1 = d.elements_with_label("store")[0];
        let name = d.elements_with_label("name")[0]; // outside store1
        let austin = d.elements_with_label("city")[1];
        let keep: HashSet<NodeId> = [name, austin].into_iter().collect();
        let (snip, _) = d.project(store1, &keep);
        assert_eq!(snip.label_str(snip.root()), Some("store"));
        assert_eq!(snip.elements_with_label("name").len(), 0);
        assert_eq!(snip.elements_with_label("city").len(), 1);
    }

    #[test]
    fn project_empty_keep_yields_root_only() {
        let d = sample();
        let (snip, _) = d.project(d.root(), &HashSet::new());
        assert_eq!(snip.element_count(), 1);
        assert_eq!(snip.element_edges(snip.root()), 0);
    }
}
