//! Programmatic document construction.
//!
//! [`DocBuilder`] emits nodes directly into the arena in preorder, so built
//! documents satisfy the same ID-order invariant as parsed ones. The API is
//! stack-shaped (`begin`/`end`) with conveniences for the ubiquitous
//! "attribute" pattern (`leaf`) — exactly what the data generators need.
//!
//! ```
//! use extract_xml::DocBuilder;
//!
//! let mut b = DocBuilder::new("store");
//! b.leaf("name", "Levis");
//! b.begin("merchandises");
//! b.begin("clothes");
//! b.leaf("category", "jeans");
//! b.end(); // clothes
//! b.end(); // merchandises
//! let doc = b.build();
//! assert_eq!(doc.element_count(), 5);
//! ```

use crate::document::{Document, Node, NodeId, NodeKind};
use crate::symbol::SymbolTable;

/// Builds a [`Document`] top-down.
#[derive(Debug)]
pub struct DocBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocBuilder {
    /// Start a document whose root element is `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut doc = Document {
            symbols: SymbolTable::with_capacity(32),
            nodes: Vec::new(),
            root: NodeId(0),
            doctype_name: None,
            dtd: None,
        };
        let sym = doc.symbols.intern(root_label);
        doc.nodes.push(Node {
            kind: NodeKind::Element,
            label: sym,
            parent: None,
            rank: 0,
            children: Vec::new(),
            text: None,
        });
        DocBuilder { doc, stack: vec![NodeId(0)] }
    }

    /// Pre-allocate space for roughly `n` nodes.
    pub fn reserve(&mut self, n: usize) -> &mut Self {
        self.doc.nodes.reserve(n);
        self
    }

    /// Attach a parsed DTD (used by generators that also emit a DOCTYPE).
    pub fn with_dtd(&mut self, dtd: crate::dtd::Dtd, doctype_name: &str) -> &mut Self {
        self.doc.dtd = Some(dtd);
        self.doc.doctype_name = Some(doctype_name.to_string());
        self
    }

    fn current(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty until build()")
    }

    fn push_node(&mut self, kind: NodeKind, label: &str, text: Option<&str>) -> NodeId {
        let parent = self.current();
        let sym = self.doc.symbols.intern(label);
        let id = NodeId(self.doc.nodes.len() as u32);
        let rank = self.doc.nodes[parent.index()].children.len() as u32;
        self.doc.nodes[parent.index()].children.push(id);
        self.doc.nodes.push(Node {
            kind,
            label: sym,
            parent: Some(parent),
            rank,
            children: Vec::new(),
            text: text.map(Into::into),
        });
        id
    }

    /// Open a child element; subsequent nodes attach under it until
    /// [`end`](Self::end).
    pub fn begin(&mut self, label: &str) -> &mut Self {
        let id = self.push_node(NodeKind::Element, label, None);
        self.stack.push(id);
        self
    }

    /// Close the innermost open element.
    ///
    /// # Panics
    /// Panics if only the root is open.
    pub fn end(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "end() called with no open child element");
        self.stack.pop();
        self
    }

    /// Add an element with a single text child — the paper's "attribute".
    pub fn leaf(&mut self, label: &str, text: &str) -> &mut Self {
        let id = self.push_node(NodeKind::Element, label, None);
        self.stack.push(id);
        self.push_node(NodeKind::Text, "#text", Some(text));
        self.stack.pop();
        self
    }

    /// Add an empty element.
    pub fn empty(&mut self, label: &str) -> &mut Self {
        self.push_node(NodeKind::Element, label, None);
        self
    }

    /// Add a text node under the current element.
    pub fn text(&mut self, content: &str) -> &mut Self {
        self.push_node(NodeKind::Text, "#text", Some(content));
        self
    }

    /// The element currently being built (useful to remember IDs).
    pub fn current_id(&self) -> NodeId {
        self.current()
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if `begin` calls are unbalanced; use [`try_build`](Self::try_build)
    /// for a fallible variant.
    pub fn build(self) -> Document {
        self.try_build().expect("unbalanced begin()/end() in DocBuilder")
    }

    /// Finish building, returning `None` if `begin`/`end` are unbalanced.
    pub fn try_build(self) -> Option<Document> {
        if self.stack.len() != 1 {
            return None;
        }
        debug_assert_eq!(self.doc.debug_validate(), Ok(()));
        Some(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_figure_like_structure() {
        let mut b = DocBuilder::new("retailer");
        b.leaf("name", "Brook Brothers");
        b.leaf("product", "apparel");
        b.begin("store");
        b.leaf("state", "Texas");
        b.leaf("city", "Houston");
        b.end();
        let d = b.build();
        d.debug_validate().unwrap();
        assert_eq!(d.label_str(d.root()), Some("retailer"));
        let store = d.first_element_with_label("store").unwrap();
        let city = d.first_element_with_label("city").unwrap();
        assert!(d.is_ancestor_or_self(store, city));
        assert_eq!(d.text_of(city), Some("Houston"));
    }

    #[test]
    fn built_document_matches_parsed_equivalent() {
        let mut b = DocBuilder::new("a");
        b.begin("b");
        b.leaf("c", "x");
        b.end();
        b.empty("d");
        let built = b.build();
        let parsed = Document::parse_str("<a><b><c>x</c></b><d/></a>").unwrap();
        assert_eq!(built.to_xml_string(), parsed.to_xml_string());
    }

    #[test]
    fn current_id_tracks_open_element() {
        let mut b = DocBuilder::new("a");
        let root = b.current_id();
        b.begin("b");
        let bid = b.current_id();
        assert_ne!(root, bid);
        b.end();
        assert_eq!(b.current_id(), root);
    }

    #[test]
    #[should_panic(expected = "end() called")]
    fn end_at_root_panics() {
        let mut b = DocBuilder::new("a");
        b.end();
    }

    #[test]
    fn unbalanced_build_fails() {
        let mut b = DocBuilder::new("a");
        b.begin("b");
        assert!(b.try_build().is_none());
    }

    #[test]
    fn mixed_text_children() {
        let mut b = DocBuilder::new("p");
        b.text("hello ");
        b.begin("em");
        b.text("world");
        b.end();
        let d = b.build();
        assert_eq!(d.child_count(d.root()), 2);
        assert_eq!(d.to_xml_string(), "<p>hello <em>world</em></p>");
    }

    #[test]
    fn ids_are_preorder() {
        let mut b = DocBuilder::new("a");
        b.begin("b");
        b.leaf("c", "1");
        b.end();
        b.begin("d");
        b.leaf("e", "2");
        b.end();
        let d = b.build();
        let ids: Vec<NodeId> = d.subtree(d.root()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
