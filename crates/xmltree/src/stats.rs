//! Whole-document statistics, used by examples and the benchmark harness to
//! report workload sizes.

use std::collections::HashMap;
use std::fmt;

use crate::document::{Document, NodeKind};

/// Summary statistics of a document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentStats {
    /// Total nodes (elements + text).
    pub total_nodes: usize,
    /// Element nodes.
    pub elements: usize,
    /// Text nodes.
    pub text_nodes: usize,
    /// Distinct element labels.
    pub distinct_labels: usize,
    /// Maximum element depth (root = 0).
    pub max_depth: usize,
    /// Mean element depth.
    pub avg_depth: f64,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Per-label element counts, sorted by descending count then label.
    pub label_histogram: Vec<(String, usize)>,
}

impl DocumentStats {
    /// Compute statistics for `doc`.
    pub fn compute(doc: &Document) -> DocumentStats {
        let mut elements = 0usize;
        let mut text_nodes = 0usize;
        let mut text_bytes = 0usize;
        let mut depth_sum = 0usize;
        let mut max_depth = 0usize;
        let mut counts: HashMap<&str, usize> = HashMap::new();

        // Track depth during one preorder walk instead of calling
        // `Document::depth` per node (which is O(depth) each).
        let mut stack: Vec<(crate::NodeId, usize)> = vec![(doc.root(), 0)];
        while let Some((n, depth)) = stack.pop() {
            let node = doc.node(n);
            match node.kind() {
                NodeKind::Element => {
                    elements += 1;
                    depth_sum += depth;
                    max_depth = max_depth.max(depth);
                    *counts.entry(doc.resolve(node.label())).or_insert(0) += 1;
                }
                NodeKind::Text => {
                    text_nodes += 1;
                    text_bytes += node.text().map(str::len).unwrap_or(0);
                }
            }
            for &c in node.children() {
                stack.push((c, depth + 1));
            }
        }

        let mut label_histogram: Vec<(String, usize)> =
            counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        label_histogram.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        DocumentStats {
            total_nodes: elements + text_nodes,
            elements,
            text_nodes,
            distinct_labels: label_histogram.len(),
            max_depth,
            avg_depth: if elements > 0 { depth_sum as f64 / elements as f64 } else { 0.0 },
            text_bytes,
            label_histogram,
        }
    }
}

impl fmt::Display for DocumentStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} nodes ({} elements, {} text), {} labels, depth max {} avg {:.1}, {} text bytes",
            self.total_nodes,
            self.elements,
            self.text_nodes,
            self.distinct_labels,
            self.max_depth,
            self.avg_depth,
            self.text_bytes
        )?;
        for (label, count) in self.label_histogram.iter().take(12) {
            writeln!(f, "  {label:<20} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let d = Document::parse_str(
            "<retailer><name>BB</name><store><city>Houston</city></store><store><city>Austin</city></store></retailer>",
        )
        .unwrap();
        let s = DocumentStats::compute(&d);
        assert_eq!(s.elements, 6);
        assert_eq!(s.text_nodes, 3);
        assert_eq!(s.total_nodes, d.len());
        assert_eq!(s.distinct_labels, 4);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.text_bytes, "BB".len() + "Houston".len() + "Austin".len());
    }

    #[test]
    fn histogram_is_sorted_desc() {
        let d = Document::parse_str("<a><b/><b/><b/><c/><c/></a>").unwrap();
        let s = DocumentStats::compute(&d);
        assert_eq!(s.label_histogram[0], ("b".to_string(), 3));
        assert_eq!(s.label_histogram[1], ("c".to_string(), 2));
    }

    #[test]
    fn display_does_not_panic() {
        let d = Document::parse_str("<a><b>x</b></a>").unwrap();
        let text = DocumentStats::compute(&d).to_string();
        assert!(text.contains("elements"));
    }

    #[test]
    fn single_element_document() {
        let d = Document::parse_str("<a/>").unwrap();
        let s = DocumentStats::compute(&d);
        assert_eq!(s.elements, 1);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.avg_depth, 0.0);
    }
}
