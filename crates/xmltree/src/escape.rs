//! Escaping and unescaping of XML character data and entity references.

use crate::error::{Error, Position, Result};

/// Escape `s` for use as XML character data (text content).
///
/// Escapes `&`, `<`, `>`; leaves quotes alone (they are only special inside
/// attribute values).
pub fn escape_text(s: &str) -> String {
    escape_impl(s, false)
}

/// Escape `s` for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> String {
    // Fast path: nothing to escape.
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && b == b'"')) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolve a single entity or character reference body (the text between
/// `&` and `;`).
///
/// Supports the five XML predefined entities plus decimal (`#123`) and
/// hexadecimal (`#x1F`) character references.
pub fn resolve_reference(body: &str, position: Position) -> Result<char> {
    match body {
        "amp" => return Ok('&'),
        "lt" => return Ok('<'),
        "gt" => return Ok('>'),
        "quot" => return Ok('"'),
        "apos" => return Ok('\''),
        _ => {}
    }
    let bad = || Error::BadReference { reference: body.to_string(), position };
    if let Some(num) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
        let code = u32::from_str_radix(num, 16).map_err(|_| bad())?;
        return char::from_u32(code).ok_or_else(bad);
    }
    if let Some(num) = body.strip_prefix('#') {
        let code: u32 = num.parse().map_err(|_| bad())?;
        return char::from_u32(code).ok_or_else(bad);
    }
    Err(bad())
}

/// Unescape a string that may contain entity and character references.
pub fn unescape(s: &str, position: Position) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx + 1..];
        let end = rest.find(';').ok_or_else(|| Error::BadReference {
            reference: rest.chars().take(12).collect(),
            position,
        })?;
        out.push(resolve_reference(&rest[..end], position)?);
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_handles_specials() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
        // Quotes untouched in text context.
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn escape_attr_also_escapes_quotes() {
        assert_eq!(escape_attr(r#"a "b" & c"#), "a &quot;b&quot; &amp; c");
    }

    #[test]
    fn predefined_entities_resolve() {
        let p = Position::start();
        assert_eq!(resolve_reference("amp", p).unwrap(), '&');
        assert_eq!(resolve_reference("lt", p).unwrap(), '<');
        assert_eq!(resolve_reference("gt", p).unwrap(), '>');
        assert_eq!(resolve_reference("quot", p).unwrap(), '"');
        assert_eq!(resolve_reference("apos", p).unwrap(), '\'');
    }

    #[test]
    fn numeric_references_resolve() {
        let p = Position::start();
        assert_eq!(resolve_reference("#65", p).unwrap(), 'A');
        assert_eq!(resolve_reference("#x41", p).unwrap(), 'A');
        assert_eq!(resolve_reference("#x1F600", p).unwrap(), '😀');
    }

    #[test]
    fn bad_references_error() {
        let p = Position::start();
        assert!(resolve_reference("bogus", p).is_err());
        assert!(resolve_reference("#xZZ", p).is_err());
        // Surrogate code point is not a char.
        assert!(resolve_reference("#xD800", p).is_err());
    }

    #[test]
    fn unescape_round_trips_escape() {
        let p = Position::start();
        let original = r#"Brook & Brothers <"outwear">"#;
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped, p).unwrap(), original);
    }

    #[test]
    fn unescape_detects_unterminated_reference() {
        assert!(unescape("a &amp b", Position::start()).is_err());
    }
}
