//! XML substrate for the eXtract reproduction.
//!
//! This crate is a self-contained XML stack built for tree-centric keyword
//! search workloads:
//!
//! * [`tokenizer`] — a streaming XML lexer with precise error positions.
//! * [`parser`] — a well-formedness-checking tree builder with configurable
//!   handling of XML-syntax attributes and whitespace.
//! * [`Document`] — an arena DOM: nodes are stored in a flat `Vec` and
//!   addressed by [`NodeId`] (a `u32` newtype), labels are interned in a
//!   [`SymbolTable`]. This follows the index-arena idiom: no `Rc`/`RefCell`,
//!   cheap traversal, and stable IDs that downstream crates can index.
//! * [`Dewey`] — Dewey order labels (the path of child ranks from the root)
//!   with document-order comparison, ancestor tests and longest-common-prefix
//!   (LCA) computation; the workhorse of the SLCA/ELCA search algorithms.
//! * [`dtd`] — an internal-subset DTD parser. Its main product is the set of
//!   `*`-nodes (elements that may repeat under a parent), which the paper's
//!   Data Analyzer uses to classify nodes into entities / attributes /
//!   connection nodes.
//! * [`schema`] — structural summary inference for documents without a DTD:
//!   a DataGuide-style path summary recording, per label path, whether
//!   siblings with that label ever repeat.
//! * [`serialize`] — compact and pretty printers.
//! * [`path`] — a tiny path-expression language (`/a/b`, `//label`, `*`)
//!   used by tests, examples and the data generators.
//! * [`builder`] — an ergonomic programmatic document builder.
//!
//! # Quick example
//!
//! ```
//! use extract_xml::Document;
//!
//! let doc = Document::parse_str(
//!     "<store><name>Levis</name><city>Austin</city></store>",
//! ).unwrap();
//! let root = doc.root();
//! assert_eq!(doc.label_str(root), Some("store"));
//! assert_eq!(doc.children(root).count(), 2);
//! let name = doc.children(root).next().unwrap();
//! assert_eq!(doc.text_of(name), Some("Levis"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod dewey;
pub mod document;
pub mod dtd;
pub mod error;
pub mod escape;
pub mod parser;
pub mod path;
pub mod schema;
pub mod serialize;
pub mod stats;
pub mod symbol;
pub mod tokenizer;

pub use builder::DocBuilder;
pub use dewey::Dewey;
pub use document::{Document, Node, NodeId, NodeKind};
pub use dtd::Dtd;
pub use error::{Error, Position, Result};
pub use parser::ParseOptions;
pub use schema::{PathId, Schema};
pub use symbol::{Symbol, SymbolTable, SYMBOL_ENTRY_OVERHEAD};
