//! Tree construction from the token stream, with well-formedness checks.

use crate::document::{Document, Node, NodeId, NodeKind};
use crate::error::{Error, Position, Result};
use crate::symbol::SymbolTable;
use crate::tokenizer::{Token, Tokenizer};

/// Options controlling tree construction.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Materialize XML-syntax attributes (`<store city="Houston">`) as child
    /// elements with a single text child, placed before the element's other
    /// children. This matches the paper's uniform node model, where an
    /// *attribute* is an element with one text child (§2.1). Default: `true`.
    pub attributes_as_elements: bool,
    /// Keep whitespace-only text nodes. Default: `false` (they are
    /// formatting noise in data-oriented XML).
    pub keep_whitespace_text: bool,
    /// Trim leading/trailing ASCII whitespace from text content.
    /// Default: `true`.
    pub trim_text: bool,
    /// Maximum element nesting depth; guards against stack exhaustion in
    /// recursive consumers. Default: `1024`.
    pub max_depth: usize,
    /// Parse the internal DTD subset if a DOCTYPE is present.
    /// Default: `true`.
    pub parse_dtd: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            attributes_as_elements: true,
            keep_whitespace_text: false,
            trim_text: true,
            max_depth: 1024,
            parse_dtd: true,
        }
    }
}

/// Parse `source` into a [`Document`].
pub fn parse(source: &str, options: &ParseOptions) -> Result<Document> {
    let mut tokenizer = Tokenizer::new(source);
    let mut doc = Document {
        symbols: SymbolTable::with_capacity(64),
        nodes: Vec::new(),
        root: NodeId(0),
        doctype_name: None,
        dtd: None,
    };
    // Stack of open elements.
    let mut stack: Vec<NodeId> = Vec::new();
    let mut root: Option<NodeId> = None;

    while let Some(token) = tokenizer.next_token()? {
        match token {
            Token::StartTag { name, attributes, self_closing, position } => {
                if stack.is_empty() && root.is_some() {
                    return Err(Error::MultipleRoots { position });
                }
                if stack.len() >= options.max_depth {
                    return Err(Error::TooDeep { limit: options.max_depth, position });
                }
                let id = push_element(&mut doc, &name, stack.last().copied());
                if root.is_none() {
                    root = Some(id);
                }
                if options.attributes_as_elements {
                    for (attr_name, value) in &attributes {
                        let attr_id = push_element(&mut doc, attr_name, Some(id));
                        push_text(&mut doc, value, attr_id);
                    }
                }
                if !self_closing {
                    stack.push(id);
                }
            }
            Token::EndTag { name, position } => {
                let Some(open) = stack.pop() else {
                    return Err(Error::MismatchedTag {
                        expected: "(nothing open)".into(),
                        found: name,
                        position,
                    });
                };
                let open_label = doc.symbols.resolve(doc.nodes[open.index()].label);
                if open_label != name {
                    return Err(Error::MismatchedTag {
                        expected: open_label.to_string(),
                        found: name,
                        position,
                    });
                }
            }
            Token::Text { content, position } => {
                let text: &str =
                    if options.trim_text { content.trim() } else { content.as_str() };
                let effectively_blank = content.trim().is_empty();
                if effectively_blank && !options.keep_whitespace_text {
                    continue;
                }
                match stack.last() {
                    Some(&parent) => {
                        push_text(&mut doc, text, parent);
                    }
                    None => {
                        if !effectively_blank {
                            return Err(Error::syntax(
                                "character data outside the root element",
                                position,
                            ));
                        }
                    }
                }
            }
            Token::CData { content, .. } => {
                if let Some(&parent) = stack.last() {
                    push_text(&mut doc, &content, parent);
                }
            }
            Token::Comment { .. } | Token::ProcessingInstruction { .. } => {}
            Token::Doctype { name, internal, position } => {
                doc.doctype_name = Some(name);
                if options.parse_dtd && !internal.trim().is_empty() {
                    let dtd = crate::dtd::Dtd::parse(&internal).map_err(|e| match e {
                        Error::Dtd { message, .. } => Error::Dtd { message, position },
                        other => other,
                    })?;
                    doc.dtd = Some(dtd);
                }
            }
        }
    }

    if let Some(open) = stack.last() {
        let label = doc.symbols.resolve(doc.nodes[open.index()].label).to_string();
        return Err(Error::UnexpectedEof {
            expected: format!("</{label}>"),
            position: Position {
                line: u32::MAX,
                column: 0,
                offset: source.len(),
            },
        });
    }
    let root = root.ok_or(Error::NoRootElement)?;
    doc.root = root;
    debug_assert_eq!(doc.debug_validate(), Ok(()));
    Ok(doc)
}

fn push_element(doc: &mut Document, label: &str, parent: Option<NodeId>) -> NodeId {
    let sym = doc.symbols.intern(label);
    let id = NodeId(doc.nodes.len() as u32);
    let rank = match parent {
        Some(p) => {
            let r = doc.nodes[p.index()].children.len() as u32;
            doc.nodes[p.index()].children.push(id);
            r
        }
        None => 0,
    };
    doc.nodes.push(Node {
        kind: NodeKind::Element,
        label: sym,
        parent,
        rank,
        children: Vec::new(),
        text: None,
    });
    id
}

fn push_text(doc: &mut Document, content: &str, parent: NodeId) -> NodeId {
    // Merge adjacent text nodes so `text_of` sees one value.
    if let Some(&last) = doc.nodes[parent.index()].children.last() {
        if doc.nodes[last.index()].is_text() {
            let existing = doc.nodes[last.index()].text.take().unwrap_or_default();
            let mut merged = String::with_capacity(existing.len() + content.len());
            merged.push_str(&existing);
            merged.push_str(content);
            doc.nodes[last.index()].text = Some(merged.into_boxed_str());
            return last;
        }
    }
    let sym = doc.symbols.intern("#text");
    let id = NodeId(doc.nodes.len() as u32);
    let rank = doc.nodes[parent.index()].children.len() as u32;
    doc.nodes[parent.index()].children.push(id);
    doc.nodes.push(Node {
        kind: NodeKind::Text,
        label: sym,
        parent: Some(parent),
        rank,
        children: Vec::new(),
        text: Some(content.into()),
    });
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let d = Document::parse_str("<a><b><c>x</c></b><b/></a>").unwrap();
        assert_eq!(d.label_str(d.root()), Some("a"));
        assert_eq!(d.elements_with_label("b").len(), 2);
        let c = d.first_element_with_label("c").unwrap();
        assert_eq!(d.text_of(c), Some("x"));
    }

    #[test]
    fn attributes_become_child_elements_by_default() {
        let d = Document::parse_str(r#"<store city="Houston"><name>L</name></store>"#).unwrap();
        let root = d.root();
        let kids: Vec<&str> = d.element_children(root).map(|c| d.label_str(c).unwrap()).collect();
        assert_eq!(kids, vec!["city", "name"], "attribute children come first");
        let city = d.first_element_with_label("city").unwrap();
        assert_eq!(d.text_of(city), Some("Houston"));
    }

    #[test]
    fn attributes_can_be_disabled() {
        let opts = ParseOptions { attributes_as_elements: false, ..Default::default() };
        let d = Document::parse_with(r#"<store city="Houston"/>"#, &opts).unwrap();
        assert_eq!(d.element_count(), 1);
    }

    #[test]
    fn whitespace_text_is_dropped_by_default() {
        let d = Document::parse_str("<a>\n  <b>x</b>\n</a>").unwrap();
        let root = d.root();
        assert_eq!(d.child_count(root), 1);
    }

    #[test]
    fn whitespace_can_be_kept() {
        let opts = ParseOptions { keep_whitespace_text: true, ..Default::default() };
        let d = Document::parse_with("<a> <b>x</b> </a>", &opts).unwrap();
        assert_eq!(d.child_count(d.root()), 3);
    }

    #[test]
    fn text_is_trimmed_by_default() {
        let d = Document::parse_str("<a>  padded  </a>").unwrap();
        assert_eq!(d.text_of(d.root()), Some("padded"));
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let d = Document::parse_str("<a>one<![CDATA[ two]]></a>").unwrap();
        assert_eq!(d.text_of(d.root()), Some("one two"));
    }

    #[test]
    fn mismatched_tags_error() {
        let e = Document::parse_str("<a><b></a></b>").unwrap_err();
        assert!(matches!(e, Error::MismatchedTag { expected, found, .. }
            if expected == "b" && found == "a"));
    }

    #[test]
    fn unclosed_tag_errors() {
        let e = Document::parse_str("<a><b>").unwrap_err();
        assert!(matches!(e, Error::UnexpectedEof { expected, .. } if expected == "</b>"));
    }

    #[test]
    fn multiple_roots_error() {
        let e = Document::parse_str("<a/><b/>").unwrap_err();
        assert!(matches!(e, Error::MultipleRoots { .. }));
    }

    #[test]
    fn empty_input_is_no_root() {
        assert!(matches!(Document::parse_str(""), Err(Error::NoRootElement)));
        assert!(matches!(Document::parse_str("<!-- only a comment -->"), Err(Error::NoRootElement)));
    }

    #[test]
    fn text_outside_root_errors() {
        let e = Document::parse_str("<a/>stray").unwrap_err();
        assert!(matches!(e, Error::Syntax { .. }));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let mut s = String::new();
        for _ in 0..40 {
            s.push_str("<d>");
        }
        let opts = ParseOptions { max_depth: 32, ..Default::default() };
        let e = Document::parse_with(&s, &opts).unwrap_err();
        assert!(matches!(e, Error::TooDeep { limit: 32, .. }));
    }

    #[test]
    fn doctype_is_recorded_and_dtd_parsed() {
        let d = Document::parse_str(
            "<!DOCTYPE retailer [<!ELEMENT retailer (store*)><!ELEMENT store (#PCDATA)>]>\
             <retailer><store>x</store></retailer>",
        )
        .unwrap();
        assert_eq!(d.doctype_name(), Some("retailer"));
        let dtd = d.dtd().expect("dtd parsed");
        assert_eq!(dtd.is_repeatable("retailer", "store"), Some(true));
    }

    #[test]
    fn malformed_doctype_subset_fails_soft_not_fatal() {
        // A hostile internal subset must come back as Err from parse_str —
        // never a panic or stack overflow (corpus ingestion feeds whole
        // directories of unvetted files through this path).
        let deep = format!(
            "<!DOCTYPE a [<!ELEMENT a {}b{}>]><a/>",
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        assert!(matches!(Document::parse_str(&deep), Err(Error::Dtd { .. })));
        // Other malformed-input shapes keep erroring cleanly too.
        for bad in [
            "<a>&unknown;</a>",                  // bad entity reference
            "<a>&#xD800;</a>",                   // surrogate char reference
            "<a>&#xFFFFFFFFFF;</a>",             // overflowing char reference
            "<a b=c></a>",                       // unquoted attribute
            "<!DOCTYPE [<!ELEMENT a (b)>]><a/>", // DOCTYPE without a name
            "<a><![CDATA[never closed</a>",      // unterminated CDATA
        ] {
            assert!(Document::parse_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn xml_declaration_and_comments_are_ignored() {
        let d = Document::parse_str(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><!-- c --><a>v</a><!-- after -->",
        )
        .unwrap();
        assert_eq!(d.text_of(d.root()), Some("v"));
    }

    #[test]
    fn parsed_documents_validate() {
        let d = Document::parse_str(
            r#"<site><regions><africa><item id="i1"><name>gold</name></item></africa></regions></site>"#,
        )
        .unwrap();
        d.debug_validate().unwrap();
    }
}
