//! Internal-subset DTD parsing.
//!
//! The paper's Data Analyzer classifies nodes with the help of the DTD: "a
//! node is considered as an entity if it corresponds to a `*`-node in the
//! DTD" (§2.1). This module parses `<!ELEMENT ...>` declarations (content
//! models with `?`/`*`/`+`, sequences, choices, mixed content, `EMPTY`,
//! `ANY`) and `<!ATTLIST ...>` declarations, and answers the one question
//! that matters downstream: *can child label `c` occur more than once under
//! parent label `p`?* ([`Dtd::is_repeatable`]).

use std::collections::{HashMap, HashSet};

use crate::error::{Error, Position, Result};

/// Maximum nesting depth of content-model groups. Real DTDs nest a
/// handful of levels; the limit exists so a malformed internal subset
/// (`((((…))))` with thousands of parens) surfaces as [`Error::Dtd`]
/// instead of exhausting the parser's call stack.
pub const MAX_PARTICLE_DEPTH: usize = 128;

/// Occurrence indicator on a content particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// Exactly once (no indicator).
    One,
    /// `?` — zero or one.
    Optional,
    /// `*` — zero or more.
    ZeroOrMore,
    /// `+` — one or more.
    OneOrMore,
}

impl Occurrence {
    /// Whether this indicator allows more than one occurrence.
    pub fn repeats(self) -> bool {
        matches!(self, Occurrence::ZeroOrMore | Occurrence::OneOrMore)
    }
}

/// A node of a content-model expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParticleKind {
    /// A child element name.
    Name(String),
    /// `(a, b, c)` — sequence.
    Seq(Vec<ContentParticle>),
    /// `(a | b | c)` — choice.
    Choice(Vec<ContentParticle>),
}

/// A content particle with its occurrence indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentParticle {
    /// The particle body.
    pub kind: ParticleKind,
    /// The trailing `?`/`*`/`+` (or none).
    pub occurrence: Occurrence,
}

/// The content model of an element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY`.
    Empty,
    /// `ANY`.
    Any,
    /// `(#PCDATA)` or `(#PCDATA | a | b)*` — the listed element names may
    /// repeat freely.
    Mixed(Vec<String>),
    /// An element-content expression.
    Children(ContentParticle),
}

/// One `<!ATTLIST>` attribute definition (type and default are kept as raw
/// strings; only the names matter to the analyzer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type (e.g. `CDATA`, `ID`, enumeration text).
    pub att_type: String,
    /// Default declaration (`#REQUIRED`, `#IMPLIED`, `#FIXED "v"`, or a
    /// literal default).
    pub default: String,
}

/// A parsed internal DTD subset.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    elements: HashMap<String, ContentModel>,
    attlists: HashMap<String, Vec<AttDef>>,
}

impl Dtd {
    /// Parse the internal subset text (the part between `[` and `]` of a
    /// DOCTYPE declaration).
    pub fn parse(internal: &str) -> Result<Dtd> {
        DtdParser::new(internal).parse()
    }

    /// The content model declared for `element`, if any.
    pub fn content_model(&self, element: &str) -> Option<&ContentModel> {
        self.elements.get(element)
    }

    /// Attribute definitions declared for `element`.
    pub fn attributes(&self, element: &str) -> &[AttDef] {
        self.attlists.get(element).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether `element` has an `<!ELEMENT>` declaration.
    pub fn declares(&self, element: &str) -> bool {
        self.elements.contains_key(element)
    }

    /// All declared element names (unordered).
    pub fn declared_elements(&self) -> impl Iterator<Item = &str> {
        self.elements.keys().map(|s| s.as_str())
    }

    /// Can `child` occur more than once under `parent`?
    ///
    /// Returns `None` if `parent` has no declaration (the analyzer then
    /// falls back to data-driven inference), `Some(true)` if the content
    /// model admits two or more `child` children, `Some(false)` otherwise.
    pub fn is_repeatable(&self, parent: &str, child: &str) -> Option<bool> {
        let model = self.elements.get(parent)?;
        Some(match model {
            ContentModel::Empty => false,
            ContentModel::Any => true,
            ContentModel::Mixed(names) => names.iter().any(|n| n == child),
            ContentModel::Children(p) => {
                let mut count = Count::Zero;
                max_occurrences(p, child, false, &mut count);
                count == Count::Many
            }
        })
    }

    /// The set of child labels that can repeat under `parent` — the
    /// "`*`-nodes" of the paper.
    pub fn repeatable_children(&self, parent: &str) -> HashSet<String> {
        let mut out = HashSet::new();
        let Some(model) = self.elements.get(parent) else {
            return out;
        };
        match model {
            ContentModel::Empty => {}
            ContentModel::Any => {
                // Anything declared can repeat under ANY.
                out.extend(self.elements.keys().cloned());
            }
            ContentModel::Mixed(names) => out.extend(names.iter().cloned()),
            ContentModel::Children(p) => {
                let mut names = HashSet::new();
                collect_names(p, &mut names);
                for n in names {
                    if self.is_repeatable(parent, &n) == Some(true) {
                        out.insert(n);
                    }
                }
            }
        }
        out
    }
}

/// Saturating occurrence count: zero, exactly one, or more than one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Count {
    Zero,
    One,
    Many,
}

impl Count {
    fn bump(&mut self) {
        *self = match *self {
            Count::Zero => Count::One,
            _ => Count::Many,
        };
    }
}

/// Walk the particle tree tracking whether an enclosing group repeats; any
/// occurrence of `target` inside a repeated context, or with its own `*`/`+`,
/// or appearing twice in a sequence, counts as "many".
fn max_occurrences(p: &ContentParticle, target: &str, enclosing_repeats: bool, count: &mut Count) {
    let repeats = enclosing_repeats || p.occurrence.repeats();
    match &p.kind {
        ParticleKind::Name(n) => {
            if n == target {
                if repeats {
                    *count = Count::Many;
                } else {
                    count.bump();
                }
            }
        }
        ParticleKind::Seq(parts) => {
            for part in parts {
                max_occurrences(part, target, repeats, count);
            }
        }
        ParticleKind::Choice(parts) => {
            // A choice contributes the maximum over its branches; evaluate
            // each branch from the current count and keep the worst case.
            let base = *count;
            let mut best = base;
            for part in parts {
                let mut branch = base;
                max_occurrences(part, target, repeats, &mut branch);
                if matches!(branch, Count::Many) || (branch == Count::One && best == Count::Zero) {
                    if branch == Count::Many {
                        best = Count::Many;
                    } else if best != Count::Many {
                        best = Count::One;
                    }
                }
            }
            *count = best;
        }
    }
}

fn collect_names(p: &ContentParticle, out: &mut HashSet<String>) {
    match &p.kind {
        ParticleKind::Name(n) => {
            out.insert(n.clone());
        }
        ParticleKind::Seq(parts) | ParticleKind::Choice(parts) => {
            for part in parts {
                collect_names(part, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct DtdParser<'a> {
    input: &'a [u8],
    source: &'a str,
    pos: Position,
}

impl<'a> DtdParser<'a> {
    fn new(source: &'a str) -> Self {
        DtdParser { input: source.as_bytes(), source, pos: Position::start() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos.offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.advance(b);
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos.offset..].starts_with(s.as_bytes())
    }

    fn consume_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::dtd(msg, self.pos)
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos.offset;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.source[start..self.pos.offset].to_string())
    }

    fn skip_until(&mut self, delim: u8) -> Result<()> {
        loop {
            match self.bump() {
                None => return Err(self.err(format!("expected `{}`", delim as char))),
                Some(b) if b == delim => return Ok(()),
                Some(b'"') => self.skip_quoted(b'"')?,
                Some(b'\'') => self.skip_quoted(b'\'')?,
                Some(_) => {}
            }
        }
    }

    fn skip_quoted(&mut self, quote: u8) -> Result<()> {
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated quoted literal")),
                Some(b) if b == quote => return Ok(()),
                Some(_) => {}
            }
        }
    }

    fn parse(mut self) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        loop {
            self.skip_ws();
            if self.pos.offset >= self.input.len() {
                return Ok(dtd);
            }
            if self.consume_str("<!--") {
                // Comment inside the subset.
                loop {
                    if self.consume_str("-->") {
                        break;
                    }
                    if self.bump().is_none() {
                        return Err(self.err("unterminated comment"));
                    }
                }
                continue;
            }
            if self.consume_str("<!ELEMENT") {
                self.skip_ws();
                let name = self.read_name()?;
                self.skip_ws();
                let model = self.parse_content_model()?;
                self.skip_ws();
                if self.bump() != Some(b'>') {
                    return Err(self.err("expected `>` to close <!ELEMENT>"));
                }
                dtd.elements.insert(name, model);
                continue;
            }
            if self.consume_str("<!ATTLIST") {
                self.skip_ws();
                let elem = self.read_name()?;
                let defs = self.parse_attdefs()?;
                dtd.attlists.entry(elem).or_default().extend(defs);
                continue;
            }
            if self.consume_str("<!ENTITY") || self.consume_str("<!NOTATION") {
                self.skip_until(b'>')?;
                continue;
            }
            if self.consume_str("<?") {
                // Processing instruction in the subset.
                loop {
                    if self.consume_str("?>") {
                        break;
                    }
                    if self.bump().is_none() {
                        return Err(self.err("unterminated processing instruction"));
                    }
                }
                continue;
            }
            if self.peek() == Some(b'%') {
                // Parameter entity reference — skip to `;`.
                self.skip_until(b';')?;
                continue;
            }
            return Err(self.err("unrecognized declaration in internal subset"));
        }
    }

    fn parse_content_model(&mut self) -> Result<ContentModel> {
        if self.consume_str("EMPTY") {
            return Ok(ContentModel::Empty);
        }
        if self.consume_str("ANY") {
            return Ok(ContentModel::Any);
        }
        if self.peek() != Some(b'(') {
            return Err(self.err("expected `(`, EMPTY or ANY in content model"));
        }
        // Mixed content looks like `(#PCDATA ...)`; sniff ahead.
        let save = self.pos;
        self.bump(); // (
        self.skip_ws();
        if self.consume_str("#PCDATA") {
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'|') => {
                        self.bump();
                        self.skip_ws();
                        names.push(self.read_name()?);
                    }
                    Some(b')') => {
                        self.bump();
                        // Optional trailing `*` (required when names listed).
                        if self.peek() == Some(b'*') {
                            self.bump();
                        } else if !names.is_empty() {
                            return Err(self.err("mixed content with names requires `)*`"));
                        }
                        return Ok(ContentModel::Mixed(names));
                    }
                    _ => return Err(self.err("expected `|` or `)` in mixed content")),
                }
            }
        }
        // Element content: rewind and parse the particle properly.
        self.pos = save;
        let particle = self.parse_particle(0)?;
        Ok(ContentModel::Children(particle))
    }

    fn parse_particle(&mut self, depth: usize) -> Result<ContentParticle> {
        // The particle grammar is recursive; a malformed subset like
        // `((((((…))))))` with thousands of parens must come back as a DTD
        // error, not blow the stack (this is reachable from
        // `Document::parse_str` through the DOCTYPE internal subset).
        if depth > MAX_PARTICLE_DEPTH {
            return Err(self.err(format!(
                "content model nests deeper than {MAX_PARTICLE_DEPTH} groups"
            )));
        }
        self.skip_ws();
        let kind = if self.peek() == Some(b'(') {
            self.bump();
            let first = self.parse_particle(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    let mut parts = vec![first];
                    while self.peek() == Some(b',') {
                        self.bump();
                        parts.push(self.parse_particle(depth + 1)?);
                        self.skip_ws();
                    }
                    if self.bump() != Some(b')') {
                        return Err(self.err("expected `)` after sequence"));
                    }
                    ParticleKind::Seq(parts)
                }
                Some(b'|') => {
                    let mut parts = vec![first];
                    while self.peek() == Some(b'|') {
                        self.bump();
                        parts.push(self.parse_particle(depth + 1)?);
                        self.skip_ws();
                    }
                    if self.bump() != Some(b')') {
                        return Err(self.err("expected `)` after choice"));
                    }
                    ParticleKind::Choice(parts)
                }
                Some(b')') => {
                    self.bump();
                    // Single-child group `(a)` — unwrap to a sequence of one.
                    ParticleKind::Seq(vec![first])
                }
                _ => return Err(self.err("expected `,`, `|` or `)` in content model")),
            }
        } else {
            ParticleKind::Name(self.read_name()?)
        };
        let occurrence = match self.peek() {
            Some(b'?') => {
                self.bump();
                Occurrence::Optional
            }
            Some(b'*') => {
                self.bump();
                Occurrence::ZeroOrMore
            }
            Some(b'+') => {
                self.bump();
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(ContentParticle { kind, occurrence })
    }

    fn parse_attdefs(&mut self) -> Result<Vec<AttDef>> {
        let mut defs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    return Ok(defs);
                }
                None => return Err(self.err("unterminated <!ATTLIST>")),
                _ => {}
            }
            let name = self.read_name()?;
            self.skip_ws();
            // Type: a name, or an enumeration `(a|b|c)`.
            let att_type = if self.peek() == Some(b'(') {
                let start = self.pos.offset;
                self.skip_until(b')')?;
                self.source[start..self.pos.offset].to_string()
            } else {
                let t = self.read_name()?;
                if t == "NOTATION" {
                    self.skip_ws();
                    if self.peek() == Some(b'(') {
                        self.skip_until(b')')?;
                    }
                }
                t
            };
            self.skip_ws();
            // Default declaration.
            let default = if self.consume_str("#REQUIRED") {
                "#REQUIRED".to_string()
            } else if self.consume_str("#IMPLIED") {
                "#IMPLIED".to_string()
            } else if self.consume_str("#FIXED") {
                self.skip_ws();
                let lit = self.read_literal()?;
                format!("#FIXED {lit}")
            } else {
                self.read_literal()?
            };
            defs.push(AttDef { name, att_type, default });
        }
    }

    fn read_literal(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected a quoted default value")),
        };
        let start = self.pos.offset;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated default value")),
                Some(b) if b == quote => {
                    let lit = self.source[start..self.pos.offset].to_string();
                    self.bump();
                    return Ok(lit);
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    const RETAILER_DTD: &str = "\
        <!ELEMENT retailer (name, product, store*)>\n\
        <!ELEMENT store (name, state, city, merchandises)>\n\
        <!ELEMENT merchandises (clothes+)>\n\
        <!ELEMENT clothes (fitting?, situation?, category*)>\n\
        <!ELEMENT name (#PCDATA)>\n\
        <!ELEMENT product (#PCDATA)>\n\
        <!ELEMENT state (#PCDATA)>\n\
        <!ELEMENT city (#PCDATA)>\n\
        <!ELEMENT fitting (#PCDATA)>\n\
        <!ELEMENT situation (#PCDATA)>\n\
        <!ELEMENT category (#PCDATA)>";

    #[test]
    fn parses_the_retailer_dtd() {
        let dtd = Dtd::parse(RETAILER_DTD).unwrap();
        assert!(dtd.declares("retailer"));
        assert!(dtd.declares("category"));
        assert_eq!(dtd.declared_elements().count(), 11);
    }

    #[test]
    fn star_and_plus_children_are_repeatable() {
        let dtd = Dtd::parse(RETAILER_DTD).unwrap();
        assert_eq!(dtd.is_repeatable("retailer", "store"), Some(true));
        assert_eq!(dtd.is_repeatable("merchandises", "clothes"), Some(true));
        assert_eq!(dtd.is_repeatable("clothes", "category"), Some(true));
    }

    #[test]
    fn singleton_children_are_not_repeatable() {
        let dtd = Dtd::parse(RETAILER_DTD).unwrap();
        assert_eq!(dtd.is_repeatable("retailer", "name"), Some(false));
        assert_eq!(dtd.is_repeatable("store", "city"), Some(false));
        assert_eq!(dtd.is_repeatable("clothes", "fitting"), Some(false));
    }

    #[test]
    fn unknown_parent_returns_none() {
        let dtd = Dtd::parse(RETAILER_DTD).unwrap();
        assert_eq!(dtd.is_repeatable("warehouse", "anything"), None);
    }

    #[test]
    fn repeated_name_in_sequence_is_repeatable() {
        let dtd = Dtd::parse("<!ELEMENT a (b, c, b)>").unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "c"), Some(false));
    }

    #[test]
    fn repeated_group_makes_members_repeatable() {
        let dtd = Dtd::parse("<!ELEMENT a ((b | c)*, d)>").unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "c"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "d"), Some(false));
    }

    #[test]
    fn choice_does_not_double_count() {
        let dtd = Dtd::parse("<!ELEMENT a (b | b)>").unwrap();
        // Either branch yields one b; a choice is not a sequence.
        assert_eq!(dtd.is_repeatable("a", "b"), Some(false));
    }

    #[test]
    fn optional_is_not_repeatable() {
        let dtd = Dtd::parse("<!ELEMENT a (b?)>").unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(false));
    }

    #[test]
    fn mixed_content_names_are_repeatable() {
        let dtd = Dtd::parse("<!ELEMENT p (#PCDATA | em | strong)*>").unwrap();
        assert_eq!(dtd.is_repeatable("p", "em"), Some(true));
        assert_eq!(dtd.is_repeatable("p", "b"), Some(false));
    }

    #[test]
    fn pcdata_only_has_no_element_children() {
        let dtd = Dtd::parse("<!ELEMENT name (#PCDATA)>").unwrap();
        assert_eq!(dtd.is_repeatable("name", "x"), Some(false));
        assert!(matches!(dtd.content_model("name"), Some(ContentModel::Mixed(v)) if v.is_empty()));
    }

    #[test]
    fn empty_and_any() {
        let dtd = Dtd::parse("<!ELEMENT e EMPTY><!ELEMENT a ANY>").unwrap();
        assert_eq!(dtd.is_repeatable("e", "x"), Some(false));
        assert_eq!(dtd.is_repeatable("a", "x"), Some(true));
    }

    #[test]
    fn attlist_definitions_are_kept() {
        let dtd = Dtd::parse(
            "<!ELEMENT store EMPTY>\n\
             <!ATTLIST store id ID #REQUIRED\n\
                             city CDATA #IMPLIED\n\
                             kind (outlet|flagship) \"outlet\">",
        )
        .unwrap();
        let atts = dtd.attributes("store");
        assert_eq!(atts.len(), 3);
        assert_eq!(atts[0].name, "id");
        assert_eq!(atts[0].att_type, "ID");
        assert_eq!(atts[0].default, "#REQUIRED");
        assert_eq!(atts[2].default, "outlet");
        assert!(atts[2].att_type.contains("outlet|flagship"));
    }

    #[test]
    fn repeatable_children_set() {
        let dtd = Dtd::parse(RETAILER_DTD).unwrap();
        let r = dtd.repeatable_children("retailer");
        assert!(r.contains("store"));
        assert!(!r.contains("name"));
        let c = dtd.repeatable_children("clothes");
        assert!(c.contains("category"));
        assert!(!c.contains("fitting"));
    }

    #[test]
    fn comments_entities_and_pe_refs_are_skipped() {
        let dtd = Dtd::parse(
            "<!-- the model -->\n\
             <!ENTITY % common \"id CDATA #IMPLIED\">\n\
             %common;\n\
             <!ELEMENT a (b*)>\n\
             <!ELEMENT b EMPTY>",
        )
        .unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(true));
    }

    #[test]
    fn nested_groups_parse() {
        let dtd = Dtd::parse("<!ELEMENT a ((b, (c | d)+)*, e?)>").unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "c"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "d"), Some(true));
        assert_eq!(dtd.is_repeatable("a", "e"), Some(false));
    }

    #[test]
    fn pathological_group_nesting_errors_instead_of_overflowing() {
        // Regression: the particle parser recursed once per `(`, so a
        // malformed subset with tens of thousands of parens crashed the
        // process with a stack overflow instead of returning Err. This is
        // reachable from `Document::parse_str` via the DOCTYPE subset.
        let deep = format!(
            "<!ELEMENT a {}b{}>",
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        let err = Dtd::parse(&deep).unwrap_err();
        assert!(matches!(err, Error::Dtd { .. }), "{err:?}");
        assert!(err.to_string().contains("nests deeper"), "{err}");
    }

    #[test]
    fn reasonable_group_nesting_still_parses() {
        // Depth well under the limit keeps working.
        let depth = 32;
        let model = format!("{}b{}", "(".repeat(depth), ")".repeat(depth));
        let dtd = Dtd::parse(&format!("<!ELEMENT a {model}>")).unwrap();
        assert_eq!(dtd.is_repeatable("a", "b"), Some(false));
        // And just past the limit errors cleanly.
        let over = MAX_PARTICLE_DEPTH + 1;
        let model = format!("{}b{}", "(".repeat(over), ")".repeat(over));
        assert!(Dtd::parse(&format!("<!ELEMENT a {model}>")).is_err());
    }

    #[test]
    fn malformed_declarations_error() {
        assert!(Dtd::parse("<!ELEMENT a").is_err());
        assert!(Dtd::parse("<!ELEMENT a (b").is_err());
        assert!(Dtd::parse("<!BOGUS x>").is_err());
        assert!(Dtd::parse("<!ELEMENT a (#PCDATA | em)>").is_err(), "mixed with names needs )*");
    }
}
