//! Error types shared across the XML substrate.

use std::fmt;

/// A line/column position inside the input text (1-based), kept on every
/// syntax error so that malformed generated workloads are easy to debug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub column: u32,
    /// Absolute byte offset from the start of the input.
    pub offset: usize,
}

impl Position {
    /// The position of the very first byte.
    pub fn start() -> Self {
        Position { line: 1, column: 1, offset: 0 }
    }

    /// Advance the position over one byte of input.
    pub fn advance(&mut self, byte: u8) {
        self.offset += 1;
        if byte == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced by the tokenizer, parser, DTD parser and path engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error: unexpected byte or malformed construct.
    Syntax {
        /// Human-readable description of what went wrong.
        message: String,
        /// Where in the input the problem was detected.
        position: Position,
    },
    /// A close tag did not match the innermost open tag.
    MismatchedTag {
        /// The element name that was open.
        expected: String,
        /// The element name found in the close tag.
        found: String,
        /// Where the close tag appeared.
        position: Position,
    },
    /// The input ended while constructs were still open.
    UnexpectedEof {
        /// Description of what was still expected.
        expected: String,
        /// Position of the end of input.
        position: Position,
    },
    /// The document has no root element, or text outside the root.
    NoRootElement,
    /// More than one top-level element.
    MultipleRoots {
        /// Position of the second root element.
        position: Position,
    },
    /// An unknown or malformed character/entity reference.
    BadReference {
        /// The raw reference text (without `&`/`;`).
        reference: String,
        /// Where the reference appeared.
        position: Position,
    },
    /// Element nesting exceeded the configured maximum depth.
    TooDeep {
        /// The configured limit that was exceeded.
        limit: usize,
        /// Where the limit was exceeded.
        position: Position,
    },
    /// Error inside a `<!DOCTYPE ...>` internal subset.
    Dtd {
        /// Human-readable description.
        message: String,
        /// Where in the DTD text the problem was detected.
        position: Position,
    },
    /// Malformed path expression passed to [`crate::path`].
    BadPath {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, position } => {
                write!(f, "XML syntax error at {position}: {message}")
            }
            Error::MismatchedTag { expected, found, position } => write!(
                f,
                "mismatched close tag at {position}: expected </{expected}>, found </{found}>"
            ),
            Error::UnexpectedEof { expected, position } => {
                write!(f, "unexpected end of input at {position}: expected {expected}")
            }
            Error::NoRootElement => write!(f, "document has no root element"),
            Error::MultipleRoots { position } => {
                write!(f, "second root element at {position}; documents must have one root")
            }
            Error::BadReference { reference, position } => {
                write!(f, "bad entity/character reference `&{reference};` at {position}")
            }
            Error::TooDeep { limit, position } => {
                write!(f, "element nesting exceeds the limit of {limit} at {position}")
            }
            Error::Dtd { message, position } => {
                write!(f, "DTD error at {position}: {message}")
            }
            Error::BadPath { message } => write!(f, "bad path expression: {message}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl Error {
    /// Construct a syntax error at a position.
    pub fn syntax(message: impl Into<String>, position: Position) -> Self {
        Error::Syntax { message: message.into(), position }
    }

    /// Construct a DTD error at a position.
    pub fn dtd(message: impl Into<String>, position: Position) -> Self {
        Error::Dtd { message: message.into(), position }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_advances_over_newlines() {
        let mut p = Position::start();
        for b in b"ab\ncd" {
            p.advance(*b);
        }
        assert_eq!(p.line, 2);
        assert_eq!(p.column, 3);
        assert_eq!(p.offset, 5);
    }

    #[test]
    fn position_displays_line_colon_column() {
        let p = Position { line: 3, column: 14, offset: 99 };
        assert_eq!(p.to_string(), "3:14");
    }

    #[test]
    fn error_display_is_informative() {
        let e = Error::MismatchedTag {
            expected: "store".into(),
            found: "shop".into(),
            position: Position { line: 2, column: 5, offset: 40 },
        };
        let s = e.to_string();
        assert!(s.contains("</store>"), "{s}");
        assert!(s.contains("</shop>"), "{s}");
        assert!(s.contains("2:5"), "{s}");
    }

    #[test]
    fn syntax_helper_builds_variant() {
        let e = Error::syntax("oops", Position::start());
        assert!(matches!(e, Error::Syntax { .. }));
        assert!(e.to_string().contains("oops"));
    }
}
