//! Dewey order labels.
//!
//! A Dewey label encodes the path of child ranks from the document root to a
//! node: the root is the empty label `[]`, its second child is `[1]`, that
//! child's first child `[1, 0]`, and so on. Dewey labels give three things
//! the XML keyword-search algorithms need in O(depth):
//!
//! * **document order** — lexicographic comparison of labels (a prefix sorts
//!   before its extensions, i.e. ancestors precede descendants);
//! * **ancestor tests** — `a` is an ancestor-or-self of `b` iff `a` is a
//!   prefix of `b`;
//! * **lowest common ancestors** — the longest common prefix of two labels.
//!
//! These are exactly the primitives used by the SLCA algorithms of Xu &
//! Papakonstantinou (SIGMOD 2005) and the Dewey-stack ELCA algorithm of
//! XRANK (SIGMOD 2003), both implemented in the `extract-search` crate.

use std::cmp::Ordering;
use std::fmt;

/// A Dewey order label: the sequence of child ranks from the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey {
    components: Vec<u32>,
}

impl Dewey {
    /// The label of the document root (empty component list).
    pub fn root() -> Self {
        Dewey { components: Vec::new() }
    }

    /// Build a label from explicit components.
    pub fn from_components(components: Vec<u32>) -> Self {
        Dewey { components }
    }

    /// The component slice (child ranks from the root).
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Depth of the node this label addresses (root = 0).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root label.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The label of this node's `rank`-th child.
    pub fn child(&self, rank: u32) -> Dewey {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(rank);
        Dewey { components }
    }

    /// The label of this node's parent, or `None` for the root.
    pub fn parent(&self) -> Option<Dewey> {
        if self.components.is_empty() {
            None
        } else {
            Dewey { components: self.components[..self.components.len() - 1].to_vec() }.into()
        }
    }

    /// True iff `self` is an ancestor of `other` **or equal to it**
    /// (prefix test).
    pub fn is_ancestor_or_self_of(&self, other: &Dewey) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        other.components.len() > self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// Length of the longest common prefix with `other`, in components.
    pub fn common_prefix_len(&self, other: &Dewey) -> usize {
        self.components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The lowest common ancestor label of `self` and `other` — their
    /// longest common prefix.
    pub fn lca(&self, other: &Dewey) -> Dewey {
        let n = self.common_prefix_len(other);
        Dewey { components: self.components[..n].to_vec() }
    }

    /// Truncate this label to the first `len` components (an ancestor label).
    pub fn prefix(&self, len: usize) -> Dewey {
        Dewey { components: self.components[..len.min(self.components.len())].to_vec() }
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Lexicographic component comparison = document (preorder) order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "ε");
        }
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl From<Vec<u32>> for Dewey {
    fn from(components: Vec<u32>) -> Self {
        Dewey { components }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(cs: &[u32]) -> Dewey {
        Dewey::from_components(cs.to_vec())
    }

    #[test]
    fn root_is_empty_and_displays_epsilon() {
        assert!(Dewey::root().is_root());
        assert_eq!(Dewey::root().to_string(), "ε");
        assert_eq!(d(&[1, 0, 2]).to_string(), "1.0.2");
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let a = d(&[2, 5]);
        assert_eq!(a.child(3), d(&[2, 5, 3]));
        assert_eq!(a.child(3).parent().unwrap(), a);
        assert!(Dewey::root().parent().is_none());
    }

    #[test]
    fn ancestors_precede_descendants_in_order() {
        assert!(d(&[1]) < d(&[1, 0]));
        assert!(d(&[1, 0]) < d(&[1, 1]));
        assert!(d(&[1, 9]) < d(&[2]));
    }

    #[test]
    fn ancestor_tests() {
        let a = d(&[1]);
        let b = d(&[1, 3, 2]);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_or_self_of(&b));
        assert!(a.is_ancestor_or_self_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(!b.is_ancestor_of(&a));
        assert!(!d(&[2]).is_ancestor_of(&b));
        assert!(Dewey::root().is_ancestor_of(&a));
    }

    #[test]
    fn lca_is_longest_common_prefix() {
        assert_eq!(d(&[1, 3, 2]).lca(&d(&[1, 3, 5, 0])), d(&[1, 3]));
        assert_eq!(d(&[1]).lca(&d(&[2])), Dewey::root());
        let a = d(&[4, 4]);
        assert_eq!(a.lca(&a), a);
        // LCA with an ancestor is the ancestor itself.
        assert_eq!(d(&[1, 2, 3]).lca(&d(&[1, 2])), d(&[1, 2]));
    }

    #[test]
    fn prefix_truncates_and_saturates() {
        let a = d(&[7, 8, 9]);
        assert_eq!(a.prefix(2), d(&[7, 8]));
        assert_eq!(a.prefix(0), Dewey::root());
        assert_eq!(a.prefix(99), a);
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(Dewey::root().depth(), 0);
        assert_eq!(d(&[0, 0, 0, 0]).depth(), 4);
    }
}
