//! Serialization: compact XML, pretty-printed XML, and ASCII tree rendering
//! (the format used to display snippets, mirroring the paper's Figure 2).

use std::fmt::Write as _;

use crate::document::{Document, NodeId};
use crate::escape::escape_text;

impl Document {
    /// Serialize the whole document compactly (no added whitespace).
    pub fn to_xml_string(&self) -> String {
        let mut out = String::with_capacity(self.len() * 16);
        write_compact(self, self.root(), &mut out);
        out
    }

    /// Serialize the subtree at `node` compactly.
    pub fn subtree_to_xml(&self, node: NodeId) -> String {
        let mut out = String::new();
        write_compact(self, node, &mut out);
        out
    }

    /// Serialize with two-space indentation, one element per line.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::with_capacity(self.len() * 24);
        write_pretty(self, self.root(), 0, &mut out);
        out
    }

    /// Render the subtree at `node` as an ASCII tree, attribute-style
    /// elements shown as `label: value` on one line:
    ///
    /// ```text
    /// retailer
    /// ├─ name: Brook Brothers
    /// └─ store
    ///    └─ city: Houston
    /// ```
    pub fn to_ascii_tree(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.ascii_node(node, "", true, true, &mut out);
        out
    }

    fn ascii_node(&self, node: NodeId, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
        let n = self.node(node);
        let connector = if is_root {
            String::new()
        } else {
            format!("{}{} ", prefix, if is_last { "└─" } else { "├─" })
        };
        if n.is_text() {
            let _ = writeln!(out, "{}\"{}\"", connector, n.text().unwrap_or(""));
            return;
        }
        let label = self.resolve(n.label());
        match self.text_of(node) {
            Some(value) if self.child_count(node) == 1 => {
                let _ = writeln!(out, "{connector}{label}: {value}");
            }
            _ => {
                let _ = writeln!(out, "{connector}{label}");
                let children: Vec<NodeId> = self.children(node).collect();
                let child_prefix = if is_root {
                    String::new()
                } else {
                    format!("{}{}  ", prefix, if is_last { " " } else { "│" })
                };
                for (i, &c) in children.iter().enumerate() {
                    self.ascii_node(c, &child_prefix, i + 1 == children.len(), false, out);
                }
            }
        }
    }
}

fn write_compact(doc: &Document, node: NodeId, out: &mut String) {
    let n = doc.node(node);
    if n.is_text() {
        out.push_str(&escape_text(n.text().unwrap_or("")));
        return;
    }
    let label = doc.resolve(n.label());
    if n.children().is_empty() {
        let _ = write!(out, "<{label}/>");
        return;
    }
    let _ = write!(out, "<{label}>");
    for &c in n.children() {
        write_compact(doc, c, out);
    }
    let _ = write!(out, "</{label}>");
}

fn write_pretty(doc: &Document, node: NodeId, depth: usize, out: &mut String) {
    let n = doc.node(node);
    let pad = "  ".repeat(depth);
    if n.is_text() {
        let _ = writeln!(out, "{pad}{}", escape_text(n.text().unwrap_or("")));
        return;
    }
    let label = doc.resolve(n.label());
    if n.children().is_empty() {
        let _ = writeln!(out, "{pad}<{label}/>");
        return;
    }
    // Attribute-style elements print on one line.
    if let Some(value) = doc.text_of(node) {
        if doc.child_count(node) == 1 {
            let _ = writeln!(out, "{pad}<{label}>{}</{label}>", escape_text(value));
            return;
        }
    }
    let _ = writeln!(out, "{pad}<{label}>");
    for &c in n.children() {
        write_pretty(doc, c, depth + 1, out);
    }
    let _ = writeln!(out, "{pad}</{label}>");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips_structure() {
        let src = "<retailer><name>Brook Brothers</name><store><city>Houston</city></store></retailer>";
        let d = Document::parse_str(src).unwrap();
        assert_eq!(d.to_xml_string(), src);
    }

    #[test]
    fn compact_escapes_text() {
        let d = Document::parse_str("<a>x &amp; y &lt; z</a>").unwrap();
        assert_eq!(d.to_xml_string(), "<a>x &amp; y &lt; z</a>");
    }

    #[test]
    fn empty_elements_self_close() {
        let d = Document::parse_str("<a><b></b></a>").unwrap();
        assert_eq!(d.to_xml_string(), "<a><b/></a>");
    }

    #[test]
    fn reparse_of_serialization_is_identical() {
        let src = "<site><regions><item><name>gold watch</name><price>12</price></item><item><name>pen</name></item></regions></site>";
        let d1 = Document::parse_str(src).unwrap();
        let d2 = Document::parse_str(&d1.to_xml_string()).unwrap();
        assert_eq!(d1.to_xml_string(), d2.to_xml_string());
        assert_eq!(d1.len(), d2.len());
    }

    #[test]
    fn pretty_prints_attributes_inline() {
        let d = Document::parse_str("<store><name>Levis</name><m><c>jeans</c></m></store>").unwrap();
        let pretty = d.to_xml_pretty();
        assert!(pretty.contains("  <name>Levis</name>\n"), "{pretty}");
        assert!(pretty.contains("  <m>\n"), "{pretty}");
    }

    #[test]
    fn pretty_output_reparses_equal() {
        let src = "<a><b><c>x</c><c>y</c></b><d>z</d></a>";
        let d1 = Document::parse_str(src).unwrap();
        let d2 = Document::parse_str(&d1.to_xml_pretty()).unwrap();
        assert_eq!(d1.to_xml_string(), d2.to_xml_string());
    }

    #[test]
    fn ascii_tree_shows_attribute_values() {
        let d = Document::parse_str(
            "<retailer><name>BB</name><store><city>Houston</city></store></retailer>",
        )
        .unwrap();
        let tree = d.to_ascii_tree(d.root());
        assert!(tree.contains("retailer"), "{tree}");
        assert!(tree.contains("name: BB"), "{tree}");
        assert!(tree.contains("city: Houston"), "{tree}");
        assert!(tree.contains("└─"), "{tree}");
    }

    #[test]
    fn subtree_serialization() {
        let d = Document::parse_str("<a><b><c>x</c></b><d/></a>").unwrap();
        let b = d.first_element_with_label("b").unwrap();
        assert_eq!(d.subtree_to_xml(b), "<b><c>x</c></b>");
    }
}
