//! String interning for element and attribute labels.
//!
//! XML documents repeat a small set of tag names millions of times; interning
//! turns label comparisons into `u32` compares and keeps [`crate::Node`]
//! small. The table is append-only: symbols are never freed, which is the
//! right trade-off for document-lifetime label sets.

use std::collections::HashMap;
use std::fmt;

/// Estimated fixed heap overhead per interned entry, used by every
/// `memory_footprint` in the workspace that accounts for a [`SymbolTable`]
/// (the document's label table, the index crates' token tables): each
/// distinct string is stored twice (interner vector + lookup-map key) as
/// two `Box<str>` headers (16 bytes each on 64-bit) plus ~48 bytes of
/// hash-map entry overhead. Keep the estimates in one place so retuning it
/// retunes every footprint the same way.
pub const SYMBOL_ENTRY_OVERHEAD: usize = 80;

/// An interned string handle. Two symbols from the *same* [`SymbolTable`]
/// are equal iff the strings they denote are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index. The caller must ensure the
    /// index came from [`Symbol::index`] on the same table.
    pub fn from_index(index: usize) -> Self {
        Symbol(index as u32)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty table with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        SymbolTable { strings: Vec::with_capacity(n), lookup: HashMap::with_capacity(n) }
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolve a symbol, returning `None` for foreign symbols instead of
    /// panicking.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("store");
        let b = t.intern("store");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("store");
        let b = t.intern("clothes");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "store");
        assert_eq!(t.resolve(b), "clothes");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("city").is_none());
        t.intern("city");
        assert!(t.get("city").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn try_resolve_rejects_foreign_symbols() {
        let t = SymbolTable::new();
        assert!(t.try_resolve(Symbol(7)).is_none());
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let collected: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut t = SymbolTable::new();
        let e = t.intern("");
        assert_eq!(t.resolve(e), "");
    }
}
