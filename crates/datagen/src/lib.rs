//! Synthetic XML workloads for the eXtract reproduction.
//!
//! The paper's datasets (the demo site's "movies and stores" XML files) are
//! no longer available; these generators substitute them (see DESIGN.md §5):
//!
//! * [`retailer`] — the paper's running example. [`retailer::figure1_db`]
//!   embeds a "Brook Brothers" retailer whose subtree reproduces **Figure
//!   1's published statistics exactly** (city: Houston 6 / Austin 1 / 3
//!   others; fitting: man 600 / woman 360 / children 40; situation: casual
//!   700 / formal 300; category: outwear 220 / suit 120 / skirt 80 /
//!   sweaters 70 / 7 other categories totalling 580 over a domain of 11),
//!   which pins down every dominance score the paper reports.
//!   [`retailer::demo_store_db`] mirrors the Figure 5 demo scenario (query
//!   "store texas", stores *Levis* and *ESprit*). Randomized variants are
//!   parameterized by [`retailer::RetailerConfig`].
//! * [`movies`] — the demo's movie scenario (§4).
//! * [`dblp`] — a DBLP-flavoured bibliography (multi-valued authors, title
//!   keys), the classic XML-keyword-search evaluation corpus shape.
//! * [`auction`] — an XMark-flavoured auction site document with a size
//!   dial, used by the performance experiments.
//! * [`corpus`] — mixed multi-document corpora (dblp / retailer / auction
//!   rotation) yielded one document at a time for streaming ingestion.
//! * [`vocab`] / [`rng`] — word pools and deterministic sampling helpers.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auction;
pub mod corpus;
pub mod dblp;
pub mod movies;
pub mod retailer;
pub mod rng;
pub mod vocab;
