//! Multi-document corpus workloads.
//!
//! The paper evaluates on whole collections; the single-document
//! generators in this crate top out around 10^5 nodes per document. This
//! module composes them into **corpora**: many documents of mixed flavour
//! (bibliography / retail / auction), each sized by a per-document node
//! target, yielded **one at a time** so the corpus builder's streaming
//! ingestion never holds more than one pending document — DBLP-scale runs
//! (10^6–10^7 nodes across hundreds of documents) fit in CI memory.
//!
//! ```
//! use extract_datagen::corpus::CorpusConfig;
//!
//! let cfg = CorpusConfig { documents: 6, target_nodes_per_doc: 400, seed: 7 };
//! let mut total = 0usize;
//! for (name, doc) in cfg.documents() {
//!     assert!(!name.is_empty());
//!     total += doc.len();
//! }
//! assert!(total > 6 * 200, "documents are near their node target");
//! ```

use extract_xml::Document;

use crate::auction::AuctionConfig;
use crate::dblp::DblpConfig;
use crate::retailer::RetailerConfig;

/// Approximate nodes contributed by one generated DBLP paper (elements +
/// text across title/year/venue/authors/pages).
const NODES_PER_PAPER: usize = 16;

/// Approximate nodes per generated retailer subtree at the store/clothes
/// ranges [`CorpusConfig`] uses.
const NODES_PER_RETAILER: usize = 190;

/// The three document flavours a mixed corpus rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocFlavor {
    /// A `<dblp>` bibliography ([`crate::dblp`]).
    Dblp,
    /// A `<retailers>` retail database ([`crate::retailer`]).
    Retailer,
    /// An XMark-flavoured `<site>` auction document ([`crate::auction`]).
    Auction,
}

impl DocFlavor {
    /// The rotation order of a mixed corpus.
    pub const ALL: [DocFlavor; 3] = [DocFlavor::Dblp, DocFlavor::Retailer, DocFlavor::Auction];

    /// Short name used in generated document names.
    pub fn name(self) -> &'static str {
        match self {
            DocFlavor::Dblp => "dblp",
            DocFlavor::Retailer => "retailer",
            DocFlavor::Auction => "auction",
        }
    }
}

/// Parameters of a mixed multi-document corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents.
    pub documents: usize,
    /// Node target per document (elements + text, within roughly ±40%).
    pub target_nodes_per_doc: usize,
    /// Base RNG seed; document `i` derives its own seed from it.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { documents: 24, target_nodes_per_doc: 2_000, seed: 0xC0D }
    }
}

impl CorpusConfig {
    /// The flavour of document `i` (rotating through [`DocFlavor::ALL`]).
    pub fn flavor_of(&self, i: usize) -> DocFlavor {
        DocFlavor::ALL[i % DocFlavor::ALL.len()]
    }

    /// Generate document `i` of the corpus: `(name, document)`.
    /// Deterministic given `(self, i)`.
    pub fn document(&self, i: usize) -> (String, Document) {
        let flavor = self.flavor_of(i);
        let seed = self.seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let target = self.target_nodes_per_doc;
        let doc = match flavor {
            DocFlavor::Dblp => DblpConfig {
                papers: (target / NODES_PER_PAPER).max(1),
                authors_per_paper: (1, 4),
                venue_skew: 1.2,
                seed,
            }
            .generate(),
            DocFlavor::Retailer => RetailerConfig {
                retailers: (target / NODES_PER_RETAILER).max(1),
                stores_per_retailer: (2, 4),
                clothes_per_store: (5, 10),
                category_skew: 1.0,
                seed,
            }
            .generate(),
            DocFlavor::Auction => AuctionConfig::with_target_nodes(target, seed).generate(),
        };
        (format!("{}-{:04}", flavor.name(), i), doc)
    }

    /// Lazily yield every document of the corpus in order — the streaming
    /// ingestion path: at most one generated document is alive between
    /// iterator steps, so the corpus builder's fold is the only thing that
    /// accumulates.
    pub fn documents(&self) -> impl Iterator<Item = (String, Document)> + '_ {
        (0..self.documents).map(|i| self.document(i))
    }

    /// A mixed-document query workload for this corpus shape: per-flavour
    /// rare anchors, cross-flavour broad terms, and guaranteed misses.
    pub fn query_mix() -> Vec<&'static str> {
        vec![
            // dblp-flavoured
            "keyword search xml",
            "paper sigmod",
            "author vldb",
            // retailer-flavoured
            "houston jeans",
            "store texas",
            "woman outwear",
            // auction-flavoured
            "open auction item",
            "gold watch seller",
            // cross-flavour broad terms ("name" spans all three flavours)
            "name",
            "search name",
            // guaranteed miss
            "zzz missing everywhere",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_and_names_are_stable() {
        let cfg = CorpusConfig { documents: 7, target_nodes_per_doc: 300, seed: 1 };
        let names: Vec<String> = cfg.documents().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 7);
        assert!(names[0].starts_with("dblp-"));
        assert!(names[1].starts_with("retailer-"));
        assert!(names[2].starts_with("auction-"));
        assert!(names[3].starts_with("dblp-"));
        // Deterministic across runs.
        let again: Vec<String> = cfg.documents().map(|(n, _)| n).collect();
        assert_eq!(names, again);
    }

    #[test]
    fn documents_are_deterministic_and_sized() {
        let cfg = CorpusConfig { documents: 6, target_nodes_per_doc: 1_500, seed: 42 };
        for i in 0..cfg.documents {
            let (name_a, doc_a) = cfg.document(i);
            let (name_b, doc_b) = cfg.document(i);
            assert_eq!(name_a, name_b);
            assert_eq!(doc_a.to_xml_string(), doc_b.to_xml_string(), "doc {i}");
            let nodes = doc_a.len();
            assert!(
                nodes > cfg.target_nodes_per_doc / 3 && nodes < cfg.target_nodes_per_doc * 2,
                "doc {i}: {nodes} nodes vs target {}",
                cfg.target_nodes_per_doc
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusConfig { seed: 1, ..Default::default() }.document(0).1;
        let b = CorpusConfig { seed: 2, ..Default::default() }.document(0).1;
        assert_ne!(a.to_xml_string(), b.to_xml_string());
    }

    #[test]
    fn query_mix_covers_every_flavor() {
        let qs = CorpusConfig::query_mix();
        assert!(qs.len() >= 8);
        assert!(qs.iter().any(|q| q.contains("sigmod")));
        assert!(qs.iter().any(|q| q.contains("houston")));
        assert!(qs.iter().any(|q| q.contains("auction")));
        assert!(qs.iter().any(|q| q.contains("zzz")));
    }
}
