//! Deterministic randomness helpers shared by the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG; every generator takes one of these so workloads are
/// reproducible bit-for-bit.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Pick a uniformly random element of a non-empty slice.
pub fn pick<'a, T>(rng: &mut impl Rng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

/// A precomputed Zipf-like sampler over ranks `0..n` with exponent `s`
/// (`s = 0` is uniform; larger `s` is more skewed). Used to give attribute
/// values realistic, dominance-friendly distributions.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero ranks");
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.random_range(0.0..1.0);
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is over zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u32> = (0..8).map(|_| a.random_range(0..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random_range(0..1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn pick_stays_in_bounds() {
        let mut rng = seeded(7);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(pick(&mut rng, &items)));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = seeded(11);
        let z = Zipf::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = seeded(13);
        let z = Zipf::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_samples_cover_all_ranks() {
        let mut rng = seeded(17);
        let z = Zipf::new(5, 0.5);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
