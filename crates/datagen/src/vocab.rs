//! Word pools for value generation.

/// US city names (Texas-heavy, matching the paper's scenario).
pub const CITIES: &[&str] = &[
    "Houston", "Austin", "Dallas", "San Antonio", "El Paso", "Fort Worth", "Plano", "Laredo",
    "Lubbock", "Irving", "Phoenix", "Denver", "Seattle", "Portland", "Chicago", "Boston",
];

/// US state names.
pub const STATES: &[&str] = &[
    "Texas", "California", "Ohio", "Arizona", "Colorado", "Washington", "Oregon", "Illinois",
];

/// Store name fragments.
pub const STORE_NAMES: &[&str] = &[
    "Galleria", "West Village", "Uptown", "Midtown", "Riverside", "Lakeside", "Bayview",
    "Sunset", "Hillcrest", "Parkway", "Northgate", "Southpoint", "Eastfield", "Westland",
    "Old Town", "Market Square", "Crossroads", "Pinewood", "Oakridge", "Maple Court",
];

/// Clothing categories.
pub const CATEGORIES: &[&str] = &[
    "outwear", "suit", "skirt", "sweaters", "jeans", "shirts", "dresses", "jackets", "pants",
    "hats", "socks", "scarves", "gloves", "belts", "shoes",
];

/// Clothing fitting values.
pub const FITTINGS: &[&str] = &["man", "woman", "children"];

/// Clothing situations.
pub const SITUATIONS: &[&str] = &["casual", "formal"];

/// Movie titles.
pub const MOVIE_TITLES: &[&str] = &[
    "The Last Summer", "Midnight Express", "Broken Arrow", "Silent River", "Golden Hour",
    "Desert Storm", "Crimson Tide", "Paper Moon", "Iron Valley", "Night Train",
    "Blue Canyon", "Second Chance", "The Long Road", "Winter Light", "Falling Star",
    "Harbor Town", "Lost Horizon", "Morning Glory", "Silver City", "The Visitor",
];

/// Movie genres.
pub const GENRES: &[&str] =
    &["drama", "comedy", "action", "thriller", "romance", "documentary", "western"];

/// Person names (directors, actors, bidders, sellers).
pub const PERSON_NAMES: &[&str] = &[
    "Alice Johnson", "Bob Smith", "Carol White", "David Brown", "Emma Davis", "Frank Miller",
    "Grace Wilson", "Henry Moore", "Irene Taylor", "Jack Anderson", "Karen Thomas",
    "Leo Jackson", "Mona Harris", "Nate Martin", "Olivia Thompson", "Paul Garcia",
    "Quinn Martinez", "Rosa Robinson", "Sam Clark", "Tina Rodriguez",
];

/// Auction item names.
pub const ITEM_NAMES: &[&str] = &[
    "gold watch", "antique vase", "oil painting", "leather satchel", "silver coin",
    "oak bookshelf", "vintage camera", "porcelain doll", "brass telescope", "wool rug",
    "jade figurine", "mahogany desk", "crystal decanter", "copper kettle", "ivory chess set",
];

/// Filler words for description paragraphs.
pub const LOREM: &[&str] = &[
    "fine", "rare", "classic", "pristine", "original", "handmade", "restored", "authentic",
    "limited", "edition", "excellent", "condition", "collector", "estate", "quality",
    "craftsmanship", "heritage", "timeless", "elegant", "genuine",
];

/// Auction region labels (XMark-style continents).
pub const REGIONS: &[&str] = &["africa", "asia", "australia", "europe", "namerica", "samerica"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_non_empty_and_distinct() {
        for pool in [
            CITIES, STATES, STORE_NAMES, CATEGORIES, FITTINGS, SITUATIONS, MOVIE_TITLES,
            GENRES, PERSON_NAMES, ITEM_NAMES, LOREM, REGIONS,
        ] {
            assert!(!pool.is_empty());
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len(), "duplicate entries in a pool");
        }
    }

    #[test]
    fn figure1_values_are_present() {
        assert!(CITIES.contains(&"Houston"));
        assert!(CITIES.contains(&"Austin"));
        assert!(STATES.contains(&"Texas"));
        for c in ["outwear", "suit", "skirt", "sweaters"] {
            assert!(CATEGORIES.contains(&c));
        }
    }
}
