//! The demo's movie scenario (§4: "we will show various example scenarios,
//! such as movies and stores").

use extract_xml::{DocBuilder, Document};
use rand::Rng;

use crate::rng::{seeded, Zipf};
use crate::vocab;

/// Parameters for movie databases.
#[derive(Debug, Clone)]
pub struct MoviesConfig {
    /// Number of movie entities.
    pub movies: usize,
    /// Inclusive range of actors per movie.
    pub actors_per_movie: (usize, usize),
    /// Zipf exponent for genres.
    pub genre_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        MoviesConfig { movies: 24, actors_per_movie: (1, 5), genre_skew: 1.0, seed: 0x707 }
    }
}

impl MoviesConfig {
    /// Generate a `<movies>` database.
    pub fn generate(&self) -> Document {
        let mut rng = seeded(self.seed);
        let genre_zipf = Zipf::new(vocab::GENRES.len(), self.genre_skew);
        let mut b = DocBuilder::new("movies");
        for i in 0..self.movies {
            let base = vocab::MOVIE_TITLES[i % vocab::MOVIE_TITLES.len()];
            let title = if i < vocab::MOVIE_TITLES.len() {
                base.to_string()
            } else {
                format!("{base} {}", i / vocab::MOVIE_TITLES.len() + 1)
            };
            b.begin("movie");
            b.leaf("title", &title);
            b.leaf("year", &format!("{}", 1970 + (i * 7) % 50));
            b.leaf("genre", vocab::GENRES[genre_zipf.sample(&mut rng)]);
            b.leaf("director", vocab::PERSON_NAMES[rng.random_range(0..vocab::PERSON_NAMES.len())]);
            b.begin("cast");
            let actors = rng.random_range(self.actors_per_movie.0..=self.actors_per_movie.1);
            for _ in 0..actors {
                b.begin("actor");
                b.leaf("name", vocab::PERSON_NAMES[rng.random_range(0..vocab::PERSON_NAMES.len())]);
                b.leaf("role", if rng.random_range(0..3) == 0 { "lead" } else { "supporting" });
                b.end();
            }
            b.end(); // cast
            b.leaf("studio", ["Summit", "Apex", "Meridian", "Pioneer"][rng.random_range(0..4usize)]);
            b.end(); // movie
        }
        b.build()
    }
}

/// A small, fixed movie database used by examples and integration tests:
/// three westerns by the same director (one a clear match for "western
/// texas"), plus unrelated movies.
pub fn sample() -> Document {
    let mut b = DocBuilder::new("movies");

    b.begin("movie");
    b.leaf("title", "Lone Star Trail");
    b.leaf("year", "1998");
    b.leaf("genre", "western");
    b.leaf("director", "Alice Johnson");
    b.begin("cast");
    b.begin("actor");
    b.leaf("name", "Sam Clark");
    b.leaf("role", "lead");
    b.end();
    b.begin("actor");
    b.leaf("name", "Tina Rodriguez");
    b.leaf("role", "supporting");
    b.end();
    b.begin("actor");
    b.leaf("name", "Leo Jackson");
    b.leaf("role", "supporting");
    b.end();
    b.end();
    b.leaf("studio", "Pioneer");
    b.leaf("setting", "Texas");
    b.end();

    b.begin("movie");
    b.leaf("title", "Desert Storm");
    b.leaf("year", "2001");
    b.leaf("genre", "western");
    b.leaf("director", "Alice Johnson");
    b.begin("cast");
    b.begin("actor");
    b.leaf("name", "Sam Clark");
    b.leaf("role", "lead");
    b.end();
    b.end();
    b.leaf("studio", "Summit");
    b.leaf("setting", "Arizona");
    b.end();

    b.begin("movie");
    b.leaf("title", "Harbor Town");
    b.leaf("year", "2010");
    b.leaf("genre", "drama");
    b.leaf("director", "Bob Smith");
    b.begin("cast");
    b.begin("actor");
    b.leaf("name", "Emma Davis");
    b.leaf("role", "lead");
    b.end();
    b.begin("actor");
    b.leaf("name", "Frank Miller");
    b.leaf("role", "supporting");
    b.end();
    b.end();
    b.leaf("studio", "Meridian");
    b.leaf("setting", "Maine");
    b.end();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_shape() {
        let doc = sample();
        doc.debug_validate().unwrap();
        assert_eq!(doc.elements_with_label("movie").len(), 3);
        assert_eq!(doc.elements_with_label("actor").len(), 6);
        let titles: Vec<&str> = doc
            .elements_with_label("title")
            .into_iter()
            .map(|n| doc.text_of(n).unwrap())
            .collect();
        assert!(titles.contains(&"Lone Star Trail"));
    }

    #[test]
    fn generated_movies_are_deterministic() {
        let cfg = MoviesConfig::default();
        assert_eq!(cfg.generate().to_xml_string(), cfg.generate().to_xml_string());
    }

    #[test]
    fn titles_are_unique_for_key_mining() {
        let cfg = MoviesConfig { movies: 60, ..Default::default() };
        let doc = cfg.generate();
        let mut titles: Vec<String> = doc
            .elements_with_label("title")
            .into_iter()
            .map(|n| doc.text_of(n).unwrap().to_string())
            .collect();
        let before = titles.len();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), before);
    }

    #[test]
    fn movie_count_matches_config() {
        let doc = MoviesConfig { movies: 7, ..Default::default() }.generate();
        assert_eq!(doc.elements_with_label("movie").len(), 7);
    }
}
