//! An XMark-flavoured auction-site document with a size dial.
//!
//! XMark (the standard XML benchmark generator) is the usual scalability
//! workload for XML keyword search; this module generates documents with
//! the same flavour — `site/regions/<continent>/item*`, `site/people/
//! person*`, `site/open_auctions/open_auction*` — whose total node count is
//! controllable, for the performance experiments (E5–E7, E10, E11).

use extract_xml::{DocBuilder, Document};
use rand::Rng;

use crate::rng::{seeded, Zipf};
use crate::vocab;

/// Parameters for auction documents.
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    /// Number of item entities (spread across the regions).
    pub items: usize,
    /// Number of person entities.
    pub people: usize,
    /// Number of open auctions.
    pub open_auctions: usize,
    /// Words per item description.
    pub description_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            items: 60,
            people: 40,
            open_auctions: 30,
            description_words: 6,
            seed: 0xA0C,
        }
    }
}

/// Approximate nodes (elements + text) contributed by one entity of each
/// kind, used by [`AuctionConfig::with_target_nodes`].
const NODES_PER_ITEM: usize = 15;
const NODES_PER_PERSON: usize = 16;
const NODES_PER_AUCTION: usize = 19;

impl AuctionConfig {
    /// Build a config whose generated document has roughly `target` nodes
    /// (within ~±20%), splitting the budget 40/30/30 across items, people
    /// and auctions.
    pub fn with_target_nodes(target: usize, seed: u64) -> AuctionConfig {
        let items = (target * 2 / 5) / NODES_PER_ITEM;
        let people = (target * 3 / 10) / NODES_PER_PERSON;
        let open_auctions = (target * 3 / 10) / NODES_PER_AUCTION;
        AuctionConfig {
            items: items.max(1),
            people: people.max(1),
            open_auctions: open_auctions.max(1),
            description_words: 6,
            seed,
        }
    }

    /// Generate the document.
    pub fn generate(&self) -> Document {
        let mut rng = seeded(self.seed);
        let item_zipf = Zipf::new(vocab::ITEM_NAMES.len(), 0.9);
        let city_zipf = Zipf::new(vocab::CITIES.len(), 1.1);
        let mut b = DocBuilder::new("site");
        b.reserve(self.items * NODES_PER_ITEM + self.people * NODES_PER_PERSON);

        // Regions and items.
        b.begin("regions");
        let per_region = self.items.div_ceil(vocab::REGIONS.len());
        let mut emitted = 0usize;
        for &region in vocab::REGIONS {
            if emitted >= self.items {
                break;
            }
            b.begin(region);
            for _ in 0..per_region.min(self.items - emitted) {
                let id = emitted;
                emitted += 1;
                b.begin("item");
                b.leaf("id", &format!("item{id}"));
                b.leaf("name", vocab::ITEM_NAMES[item_zipf.sample(&mut rng)]);
                b.leaf("payment", ["cash", "credit", "check"][rng.random_range(0..3usize)]);
                b.leaf("location", vocab::CITIES[city_zipf.sample(&mut rng)]);
                b.leaf("quantity", &format!("{}", rng.random_range(1..5)));
                let mut description = String::new();
                for w in 0..self.description_words {
                    if w > 0 {
                        description.push(' ');
                    }
                    description
                        .push_str(vocab::LOREM[rng.random_range(0..vocab::LOREM.len())]);
                }
                b.leaf("description", &description);
                b.end();
            }
            b.end();
        }
        b.end(); // regions

        // People.
        b.begin("people");
        for i in 0..self.people {
            b.begin("person");
            b.leaf("id", &format!("person{i}"));
            b.leaf(
                "name",
                vocab::PERSON_NAMES[rng.random_range(0..vocab::PERSON_NAMES.len())],
            );
            b.leaf("emailaddress", &format!("user{i}@example.com"));
            b.begin("address");
            b.leaf("street", &format!("{} Main St", rng.random_range(1..999)));
            b.leaf("city", vocab::CITIES[city_zipf.sample(&mut rng)]);
            b.leaf("state", vocab::STATES[rng.random_range(0..vocab::STATES.len())]);
            b.end();
            b.end();
        }
        b.end(); // people

        // Open auctions.
        b.begin("open_auctions");
        for i in 0..self.open_auctions {
            b.begin("open_auction");
            b.leaf("id", &format!("auction{i}"));
            b.leaf("itemref", &format!("item{}", rng.random_range(0..self.items.max(1))));
            b.leaf("seller", &format!("person{}", rng.random_range(0..self.people.max(1))));
            b.leaf("initial", &format!("{}", rng.random_range(5..500)));
            b.leaf("current", &format!("{}", rng.random_range(5..2000)));
            let bidders = rng.random_range(0..4);
            for _ in 0..bidders {
                b.begin("bidder");
                b.leaf("date", &format!("2008-0{}-1{}", rng.random_range(1..9), rng.random_range(0..9)));
                b.leaf("increase", &format!("{}", rng.random_range(1..50)));
                b.end();
            }
            b.end();
        }
        b.end(); // open_auctions

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_documents() {
        let doc = AuctionConfig::default().generate();
        doc.debug_validate().unwrap();
        assert_eq!(doc.label_str(doc.root()), Some("site"));
        assert_eq!(doc.elements_with_label("item").len(), 60);
        assert_eq!(doc.elements_with_label("person").len(), 40);
        assert_eq!(doc.elements_with_label("open_auction").len(), 30);
    }

    #[test]
    fn deterministic() {
        let cfg = AuctionConfig::default();
        assert_eq!(cfg.generate().to_xml_string(), cfg.generate().to_xml_string());
    }

    #[test]
    fn target_nodes_is_roughly_honoured() {
        for target in [2_000usize, 20_000, 100_000] {
            let doc = AuctionConfig::with_target_nodes(target, 1).generate();
            let actual = doc.len();
            let lo = target * 7 / 10;
            let hi = target * 13 / 10;
            assert!(
                (lo..hi).contains(&actual),
                "target {target} produced {actual} nodes"
            );
        }
    }

    #[test]
    fn items_spread_across_regions() {
        let doc = AuctionConfig { items: 12, ..Default::default() }.generate();
        let populated = vocab::REGIONS
            .iter()
            .filter(|&&r| !doc.elements_with_label(r).is_empty())
            .count();
        assert!(populated >= 3, "items should span several regions");
    }

    #[test]
    fn ids_are_unique() {
        let doc = AuctionConfig::default().generate();
        let mut ids: Vec<String> = doc
            .elements_with_label("id")
            .into_iter()
            .map(|n| doc.text_of(n).unwrap().to_string())
            .collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
