//! A DBLP-flavoured bibliography generator.
//!
//! Bibliography data exercises a different shape from the retail scenario:
//! a broad, shallow forest of `paper` records where `author` is
//! **multi-valued** (hence classified as an entity by the `*`-node rule,
//! not an attribute), `title` is a natural unique key, and venues/years are
//! low-cardinality attributes that produce dominant features. XML keyword
//! search papers (including XSeek and the SLCA line) evaluate on DBLP; this
//! stands in for it.

use extract_xml::{DocBuilder, Document};
use rand::Rng;

use crate::rng::{seeded, Zipf};
use crate::vocab;

/// Title word pool (combined into multi-word titles).
const TITLE_WORDS: &[&str] = &[
    "keyword", "search", "xml", "snippet", "query", "ranking", "indexing", "semantics",
    "efficient", "adaptive", "scalable", "distributed", "semantic", "structured", "holistic",
];

/// Venue pool, skewed so one venue dominates.
const VENUES: &[&str] = &["SIGMOD", "VLDB", "ICDE", "CIKM", "EDBT", "WWW"];

/// Parameters for bibliography databases.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of paper entities.
    pub papers: usize,
    /// Inclusive range of authors per paper.
    pub authors_per_paper: (usize, usize),
    /// Zipf exponent for venues (higher ⇒ one venue dominates).
    pub venue_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig { papers: 50, authors_per_paper: (1, 4), venue_skew: 1.2, seed: 0xDB1 }
    }
}

impl DblpConfig {
    /// Generate a `<dblp>` database.
    pub fn generate(&self) -> Document {
        let mut rng = seeded(self.seed);
        let venue_zipf = Zipf::new(VENUES.len(), self.venue_skew);
        let mut b = DocBuilder::new("dblp");
        b.reserve(self.papers * 14);
        for i in 0..self.papers {
            b.begin("paper");
            // Unique multi-word titles (the mined key).
            let w1 = TITLE_WORDS[i % TITLE_WORDS.len()];
            let w2 = TITLE_WORDS[(i / TITLE_WORDS.len() + i + 3) % TITLE_WORDS.len()];
            b.leaf("title", &format!("{w1} {w2} {i}"));
            b.leaf("year", &format!("{}", 2000 + (i * 3) % 10));
            b.leaf("venue", VENUES[venue_zipf.sample(&mut rng)]);
            let n_authors =
                rng.random_range(self.authors_per_paper.0..=self.authors_per_paper.1);
            for _ in 0..n_authors {
                b.begin("author");
                b.leaf(
                    "name",
                    vocab::PERSON_NAMES[rng.random_range(0..vocab::PERSON_NAMES.len())],
                );
                b.end();
            }
            b.leaf("pages", &format!("{}-{}", i * 12 + 1, i * 12 + 12));
            b.end();
        }
        b.build()
    }
}

/// A small fixed bibliography for examples and tests: three XML-search
/// papers sharing an author, plus an unrelated one.
pub fn sample() -> Document {
    let mut b = DocBuilder::new("dblp");
    for (title, year, venue, authors) in [
        ("snippet generation for xml search", "2008", "VLDB", vec!["Yu Huang", "Ziyang Liu", "Yi Chen"]),
        ("identifying return information for xml keyword search", "2007", "SIGMOD", vec!["Ziyang Liu", "Yi Chen"]),
        ("efficient smallest lca computation", "2005", "SIGMOD", vec!["Yu Xu"]),
        ("join processing on modern hardware", "2006", "VLDB", vec!["Alice Johnson"]),
    ] {
        b.begin("paper");
        b.leaf("title", title);
        b.leaf("year", year);
        b.leaf("venue", venue);
        for a in authors {
            b.begin("author");
            b.leaf("name", a);
            b.end();
        }
        b.end();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_shape() {
        let doc = sample();
        doc.debug_validate().unwrap();
        assert_eq!(doc.elements_with_label("paper").len(), 4);
        assert_eq!(doc.elements_with_label("author").len(), 7);
    }

    #[test]
    fn generated_is_deterministic() {
        let cfg = DblpConfig::default();
        assert_eq!(cfg.generate().to_xml_string(), cfg.generate().to_xml_string());
    }

    #[test]
    fn titles_are_unique() {
        let doc = DblpConfig { papers: 120, ..Default::default() }.generate();
        let mut titles: Vec<String> = doc
            .elements_with_label("title")
            .into_iter()
            .map(|n| doc.text_of(n).unwrap().to_string())
            .collect();
        let before = titles.len();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), before);
    }

    #[test]
    fn authors_are_multi_valued() {
        let doc = DblpConfig { papers: 40, authors_per_paper: (2, 4), ..Default::default() }
            .generate();
        let papers = doc.elements_with_label("paper");
        assert!(papers.iter().any(|&p| {
            doc.element_children(p)
                .filter(|&c| doc.label_str(c) == Some("author"))
                .count()
                >= 2
        }));
    }

    #[test]
    fn venue_skew_creates_a_dominant_venue() {
        let doc = DblpConfig { papers: 100, venue_skew: 1.5, ..Default::default() }.generate();
        let venues: Vec<&str> = doc
            .elements_with_label("venue")
            .into_iter()
            .map(|n| doc.text_of(n).unwrap())
            .collect();
        let sigmod = venues.iter().filter(|&&v| v == "SIGMOD").count();
        assert!(
            sigmod * VENUES.len() > venues.len(),
            "top venue should exceed the uniform share: {sigmod}/{}",
            venues.len()
        );
    }
}
