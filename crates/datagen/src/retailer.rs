//! The paper's running example: retailer / store / clothes data.
//!
//! [`figure1_db`] builds a database whose "Brook Brothers" retailer subtree
//! reproduces the value-occurrence statistics published in Figure 1 of the
//! paper **exactly**. Those statistics pin down every dominance score the
//! paper reports (§2.3):
//!
//! ```text
//! DS(Houston) = 6 / (10/5)      = 3.0
//! DS(outwear) = 220 / (1070/11) ≈ 2.26   (reported as 2.2)
//! DS(man)     = 600 / (1000/3)  = 1.8
//! DS(casual)  = 700 / (1000/2)  = 1.4
//! DS(suit)    = 120 / (1070/11) ≈ 1.23   (reported as 1.2)
//! DS(woman)   = 360 / (1000/3)  ≈ 1.08   (reported as 1.1)
//! ```
//!
//! Note `N(clothes, category) = 220+120+80+70+580 = 1070` while
//! `N(clothes, fitting) = N(clothes, situation) = 1000`: the paper's
//! numbers imply 1070 clothes of which 70 lack `fitting` and 70 lack
//! `situation`. The first clothes of the first store is `(man, –, suit)`
//! and the third is `(woman, casual, outwear)` so the greedy instance
//! selector reproduces the Figure 2 snippet verbatim.
//!
//! [`demo_store_db`] mirrors the Figure 5 demo session: a store database
//! where the query "store texas" yields the *Levis* store (jeans, man) and
//! the *ESprit* store (outwear, woman).

use extract_xml::{DocBuilder, Document, NodeId};
use rand::Rng;

use crate::rng::{seeded, Zipf};
use crate::vocab;

/// Fitting / situation / category of one clothes entity (absent values are
/// omitted from the XML).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClothesSpec {
    /// `fitting` value, if present.
    pub fitting: Option<&'static str>,
    /// `situation` value, if present.
    pub situation: Option<&'static str>,
    /// `category` value (always present).
    pub category: &'static str,
}

/// The exact clothes population of the Figure 1 query result: 1070 specs
/// with fitting = man 600 / woman 360 / children 40 / absent 70; situation
/// = casual 700 / formal 300 / absent 70; category = outwear 220, suit 120,
/// skirt 80, sweaters 70 and seven other categories totalling 580.
pub fn figure1_clothes_specs() -> Vec<ClothesSpec> {
    const TOTAL: usize = 1070;
    let fittings: &[(Option<&str>, usize)] =
        &[(Some("man"), 600), (Some("woman"), 360), (Some("children"), 40), (None, 70)];
    let situations: &[(Option<&str>, usize)] =
        &[(Some("casual"), 700), (Some("formal"), 300), (None, 70)];
    // 220+120+80+70 + (90+88+86+84+82+80+70 = 580) = 1070; every "other"
    // category stays below the 1070/11 ≈ 97.3 average, so exactly the four
    // named categories can be dominant and only two (outwear, suit) are.
    let categories: &[(&str, usize)] = &[
        ("outwear", 220),
        ("suit", 120),
        ("skirt", 80),
        ("sweaters", 70),
        ("jeans", 90),
        ("shirts", 88),
        ("dresses", 86),
        ("jackets", 84),
        ("pants", 82),
        ("hats", 80),
        ("socks", 70),
    ];

    fn expand<T: Copy>(counts: &[(T, usize)], total: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(total);
        for &(v, n) in counts {
            out.extend(std::iter::repeat_n(v, n));
        }
        assert_eq!(out.len(), total, "count table must sum to {total}");
        out
    }

    // Decorrelate the three fields with stride permutations (strides
    // coprime to 1070 = 2·5·107), keeping everything deterministic.
    fn stride_permute<T: Copy>(values: &[T], stride: usize) -> Vec<T> {
        let n = values.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(values[(i * stride + 1) % n]);
        }
        out
    }

    let fit = expand(fittings, TOTAL);
    let sit = stride_permute(&expand(situations, TOTAL), 7);
    let cat = stride_permute(&expand(categories, TOTAL), 13);

    let mut specs: Vec<ClothesSpec> = (0..TOTAL)
        .map(|i| ClothesSpec { fitting: fit[i], situation: sit[i], category: cat[i] })
        .collect();

    // Pin the three clothes the Figure 2 snippet walk relies on (value
    // swaps preserve all per-field counts). Positions 0..3 are the first
    // clothes of store 1 (Galleria, Houston).
    force_fitting(&mut specs, 0, Some("man"));
    force_situation(&mut specs, 0, None);
    force_category(&mut specs, 0, "suit");
    force_fitting(&mut specs, 1, Some("man"));
    force_situation(&mut specs, 1, Some("formal"));
    force_category(&mut specs, 1, "jeans");
    force_fitting(&mut specs, 2, Some("woman"));
    force_situation(&mut specs, 2, Some("casual"));
    force_category(&mut specs, 2, "outwear");
    specs
}

const PINNED: usize = 3;

fn force_fitting(specs: &mut [ClothesSpec], at: usize, want: Option<&'static str>) {
    if specs[at].fitting == want {
        return;
    }
    let j = (PINNED..specs.len())
        .find(|&j| specs[j].fitting == want)
        .expect("a donor spec with the wanted fitting exists");
    let tmp = specs[at].fitting;
    specs[at].fitting = specs[j].fitting;
    specs[j].fitting = tmp;
}

fn force_situation(specs: &mut [ClothesSpec], at: usize, want: Option<&'static str>) {
    if specs[at].situation == want {
        return;
    }
    let j = (PINNED..specs.len())
        .find(|&j| specs[j].situation == want)
        .expect("a donor spec with the wanted situation exists");
    let tmp = specs[at].situation;
    specs[at].situation = specs[j].situation;
    specs[j].situation = tmp;
}

fn force_category(specs: &mut [ClothesSpec], at: usize, want: &'static str) {
    if specs[at].category == want {
        return;
    }
    let j = (PINNED..specs.len())
        .find(|&j| specs[j].category == want)
        .expect("a donor spec with the wanted category exists");
    let tmp = specs[at].category;
    specs[at].category = specs[j].category;
    specs[j].category = tmp;
}

/// The ten Brook Brothers stores of Figure 1: `(name, city, clothes
/// count)`. Six Houston stores, one Austin store, three other cities;
/// clothes counts sum to 1070. Store 1 is Galleria/Houston as in the
/// figure.
pub const FIGURE1_STORES: &[(&str, &str, usize)] = &[
    ("Galleria", "Houston", 110),
    ("West Village", "Austin", 107),
    ("Uptown", "Houston", 110),
    ("Midtown", "Houston", 110),
    ("Riverside", "Houston", 110),
    ("Lakeside", "Houston", 110),
    ("Bayview", "Houston", 110),
    ("Sunset", "Dallas", 101),
    ("Hillcrest", "San Antonio", 101),
    ("Parkway", "El Paso", 101),
];

/// Build the Figure 1 database: a `<retailers>` root holding the Brook
/// Brothers retailer (the query result of "Texas apparel retailer") plus
/// two distractor retailers that must *not* match the query.
pub fn figure1_db() -> Document {
    let mut b = DocBuilder::new("retailers");
    b.reserve(12_000);

    // The Brook Brothers retailer — the Figure 1 query result.
    b.begin("retailer");
    b.leaf("name", "Brook Brothers");
    b.leaf("product", "apparel");
    let specs = figure1_clothes_specs();
    let mut next = 0usize;
    for &(name, city, clothes) in FIGURE1_STORES {
        b.begin("store");
        b.leaf("name", name);
        b.leaf("state", "Texas");
        b.leaf("city", city);
        b.begin("merchandises");
        for spec in &specs[next..next + clothes] {
            b.begin("clothes");
            if let Some(f) = spec.fitting {
                b.leaf("fitting", f);
            }
            if let Some(s) = spec.situation {
                b.leaf("situation", s);
            }
            b.leaf("category", spec.category);
            b.end();
        }
        next += clothes;
        b.end(); // merchandises
        b.end(); // store
    }
    assert_eq!(next, specs.len(), "every clothes spec is placed");
    b.end(); // retailer

    // Distractor 1: Texas retailer, wrong product (no "apparel" match).
    b.begin("retailer");
    b.leaf("name", "Circuit Town");
    b.leaf("product", "electronics");
    b.begin("store");
    b.leaf("name", "Northgate");
    b.leaf("state", "Texas");
    b.leaf("city", "Plano");
    b.begin("merchandises");
    b.begin("clothes");
    b.leaf("category", "hats");
    b.end();
    b.end();
    b.end();
    b.end();

    // Distractor 2: apparel retailer outside Texas (no "texas" match).
    b.begin("retailer");
    b.leaf("name", "Golden Gate Apparel");
    b.leaf("product", "apparel");
    b.begin("store");
    b.leaf("name", "Market Square");
    b.leaf("state", "California");
    b.leaf("city", "Portland");
    b.begin("merchandises");
    b.begin("clothes");
    b.leaf("fitting", "man");
    b.leaf("situation", "casual");
    b.leaf("category", "shirts");
    b.end();
    b.end();
    b.end();
    b.end();

    b.build()
}

/// The Brook Brothers retailer node inside [`figure1_db`]'s output — the
/// root of the Figure 1 query result.
pub fn figure1_result_root(doc: &Document) -> NodeId {
    doc.elements_with_label("retailer")
        .into_iter()
        .find(|&r| {
            doc.element_children(r)
                .any(|c| doc.text_of(c) == Some("Brook Brothers"))
        })
        .expect("figure1_db contains Brook Brothers")
}

/// The IList the paper reports for the Figure 1 result (Figure 3), in
/// order: keywords, entity names, result key, dominant features by
/// decreasing dominance score.
pub fn figure1_expected_ilist() -> Vec<&'static str> {
    vec![
        "texas", "apparel", "retailer", "clothes", "store", "Brook Brothers", "Houston",
        "outwear", "man", "casual", "suit", "woman",
    ]
}

/// Clothes mix of one demo store: `(fitting, situation, category)` triples.
fn demo_clothes(b: &mut DocBuilder, specs: &[(&str, &str, &str)]) {
    b.begin("merchandises");
    for &(fitting, situation, category) in specs {
        b.begin("clothes");
        b.leaf("fitting", fitting);
        b.leaf("situation", situation);
        b.leaf("category", category);
        b.end();
    }
    b.end();
}

/// The Figure 5 demo database: querying it for "store texas" with snippet
/// size bound 6 produces snippets showing that *Levis* features jeans for
/// man while *ESprit* focuses on outwear for woman.
pub fn demo_store_db() -> Document {
    let mut b = DocBuilder::new("stores");

    // Levis: jeans (6/12 of a 4-category domain ⇒ DS 2.0) and man (8/12 of
    // a 3-fitting domain ⇒ DS 2.0) are dominant; casual is mildly dominant
    // (7/12, DS 1.17) but does not fit within bound 6.
    b.begin("store");
    b.leaf("name", "Levis");
    b.leaf("state", "Texas");
    b.leaf("city", "Austin");
    demo_clothes(
        &mut b,
        &[
            ("man", "casual", "jeans"),
            ("man", "casual", "jeans"),
            ("man", "formal", "jeans"),
            ("man", "casual", "jeans"),
            ("man", "formal", "jeans"),
            ("man", "casual", "jeans"),
            ("man", "formal", "shirts"),
            ("man", "casual", "shirts"),
            ("woman", "casual", "shirts"),
            ("woman", "formal", "hats"),
            ("woman", "casual", "hats"),
            ("children", "formal", "socks"),
        ],
    );
    b.end();

    // ESprit: outwear (6/12 of 4 ⇒ DS 2.0) and woman (9/12 of 3 ⇒ DS 2.25).
    b.begin("store");
    b.leaf("name", "ESprit");
    b.leaf("state", "Texas");
    b.leaf("city", "Houston");
    demo_clothes(
        &mut b,
        &[
            ("woman", "casual", "outwear"),
            ("woman", "casual", "outwear"),
            ("woman", "formal", "outwear"),
            ("woman", "casual", "outwear"),
            ("woman", "casual", "outwear"),
            ("woman", "formal", "outwear"),
            ("woman", "casual", "dresses"),
            ("woman", "casual", "dresses"),
            ("woman", "formal", "dresses"),
            ("man", "casual", "skirt"),
            ("man", "casual", "skirt"),
            ("man", "formal", "hats"),
        ],
    );
    b.end();

    // Distractors outside Texas.
    b.begin("store");
    b.leaf("name", "Gap");
    b.leaf("state", "Ohio");
    b.leaf("city", "Chicago");
    demo_clothes(&mut b, &[("man", "casual", "shirts"), ("woman", "formal", "dresses")]);
    b.end();

    b.begin("store");
    b.leaf("name", "Macy");
    b.leaf("state", "California");
    b.leaf("city", "Seattle");
    demo_clothes(&mut b, &[("children", "casual", "socks")]);
    b.end();

    b.build()
}

/// Parameters for randomized retailer databases (performance workloads).
#[derive(Debug, Clone)]
pub struct RetailerConfig {
    /// Number of retailer entities.
    pub retailers: usize,
    /// Inclusive range of stores per retailer.
    pub stores_per_retailer: (usize, usize),
    /// Inclusive range of clothes per store.
    pub clothes_per_store: (usize, usize),
    /// Zipf exponent for category values (higher ⇒ more dominance).
    pub category_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailerConfig {
    fn default() -> Self {
        RetailerConfig {
            retailers: 4,
            stores_per_retailer: (3, 8),
            clothes_per_store: (5, 30),
            category_skew: 1.0,
            seed: 0xEB,
        }
    }
}

impl RetailerConfig {
    /// Generate a database.
    pub fn generate(&self) -> Document {
        let mut rng = seeded(self.seed);
        let mut b = DocBuilder::new("retailers");
        let cat_zipf = Zipf::new(vocab::CATEGORIES.len(), self.category_skew);
        let city_zipf = Zipf::new(vocab::CITIES.len(), 1.2);
        let mut store_serial = 0usize;
        for r in 0..self.retailers {
            b.begin("retailer");
            b.leaf("name", &format!("Retailer {r}"));
            b.leaf("product", if r % 2 == 0 { "apparel" } else { "electronics" });
            let stores =
                rng.random_range(self.stores_per_retailer.0..=self.stores_per_retailer.1);
            for _ in 0..stores {
                store_serial += 1;
                b.begin("store");
                let base = vocab::STORE_NAMES[store_serial % vocab::STORE_NAMES.len()];
                b.leaf("name", &format!("{base} #{store_serial}"));
                let state = vocab::STATES[if rng.random_range(0..10) < 6 {
                    0 // Texas-heavy, like the paper's scenario
                } else {
                    rng.random_range(1..vocab::STATES.len())
                }];
                b.leaf("state", state);
                b.leaf("city", vocab::CITIES[city_zipf.sample(&mut rng)]);
                b.begin("merchandises");
                let clothes =
                    rng.random_range(self.clothes_per_store.0..=self.clothes_per_store.1);
                for _ in 0..clothes {
                    b.begin("clothes");
                    b.leaf("fitting", vocab::FITTINGS[rng.random_range(0..3usize)]);
                    b.leaf("situation", vocab::SITUATIONS[rng.random_range(0..2usize)]);
                    b.leaf("category", vocab::CATEGORIES[cat_zipf.sample(&mut rng)]);
                    b.end();
                }
                b.end();
                b.end();
            }
            b.end();
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn clothes_specs_have_exact_counts() {
        let specs = figure1_clothes_specs();
        assert_eq!(specs.len(), 1070);
        let mut fit: HashMap<Option<&str>, usize> = HashMap::new();
        let mut sit: HashMap<Option<&str>, usize> = HashMap::new();
        let mut cat: HashMap<&str, usize> = HashMap::new();
        for s in &specs {
            *fit.entry(s.fitting).or_insert(0) += 1;
            *sit.entry(s.situation).or_insert(0) += 1;
            *cat.entry(s.category).or_insert(0) += 1;
        }
        assert_eq!(fit[&Some("man")], 600);
        assert_eq!(fit[&Some("woman")], 360);
        assert_eq!(fit[&Some("children")], 40);
        assert_eq!(fit[&None], 70);
        assert_eq!(sit[&Some("casual")], 700);
        assert_eq!(sit[&Some("formal")], 300);
        assert_eq!(sit[&None], 70);
        assert_eq!(cat["outwear"], 220);
        assert_eq!(cat["suit"], 120);
        assert_eq!(cat["skirt"], 80);
        assert_eq!(cat["sweaters"], 70);
        assert_eq!(cat.len(), 11, "domain size D(clothes, category) = 11");
        let named: usize = 220 + 120 + 80 + 70;
        let others: usize = cat.values().sum::<usize>() - named;
        assert_eq!(others, 580, "other categories (7): 580");
    }

    #[test]
    fn pinned_specs_drive_figure2() {
        let specs = figure1_clothes_specs();
        assert_eq!(
            specs[0],
            ClothesSpec { fitting: Some("man"), situation: None, category: "suit" }
        );
        assert_eq!(
            specs[1],
            ClothesSpec { fitting: Some("man"), situation: Some("formal"), category: "jeans" }
        );
        assert_eq!(
            specs[2],
            ClothesSpec { fitting: Some("woman"), situation: Some("casual"), category: "outwear" }
        );
    }

    #[test]
    fn no_other_category_is_dominant() {
        let specs = figure1_clothes_specs();
        let mut cat: HashMap<&str, usize> = HashMap::new();
        for s in &specs {
            *cat.entry(s.category).or_insert(0) += 1;
        }
        let avg = 1070.0 / 11.0;
        for (&c, &n) in &cat {
            let dominant = n as f64 > avg;
            let expected = matches!(c, "outwear" | "suit");
            assert_eq!(dominant, expected, "category {c} has {n} occurrences");
        }
    }

    #[test]
    fn store_table_matches_figure1() {
        let houston = FIGURE1_STORES.iter().filter(|&&(_, c, _)| c == "Houston").count();
        let austin = FIGURE1_STORES.iter().filter(|&&(_, c, _)| c == "Austin").count();
        let cities: std::collections::HashSet<&str> =
            FIGURE1_STORES.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(FIGURE1_STORES.len(), 10);
        assert_eq!(houston, 6);
        assert_eq!(austin, 1);
        assert_eq!(cities.len(), 5, "D(store, city) = 5");
        assert_eq!(FIGURE1_STORES.iter().map(|&(_, _, n)| n).sum::<usize>(), 1070);
        assert_eq!(FIGURE1_STORES[0], ("Galleria", "Houston", 110));
    }

    #[test]
    fn figure1_db_builds_and_validates() {
        let doc = figure1_db();
        doc.debug_validate().unwrap();
        assert_eq!(doc.elements_with_label("retailer").len(), 3);
        let bb = figure1_result_root(&doc);
        assert_eq!(doc.elements_with_label("clothes").len(), 1072); // 1070 + 2 distractors
        // BB's own stores.
        let stores_in_bb = doc
            .subtree_elements(bb)
            .filter(|&n| doc.label_str(n) == Some("store"))
            .count();
        assert_eq!(stores_in_bb, 10);
    }

    #[test]
    fn figure1_result_root_is_brook_brothers() {
        let doc = figure1_db();
        let bb = figure1_result_root(&doc);
        assert_eq!(doc.label_str(bb), Some("retailer"));
        let name = doc.element_children(bb).next().unwrap();
        assert_eq!(doc.text_of(name), Some("Brook Brothers"));
    }

    #[test]
    fn demo_store_db_shape() {
        let doc = demo_store_db();
        doc.debug_validate().unwrap();
        let stores = doc.elements_with_label("store");
        assert_eq!(stores.len(), 4);
        // Texas stores: Levis and ESprit.
        let texan: Vec<&str> = stores
            .iter()
            .filter(|&&s| {
                doc.element_children(s).any(|c| doc.text_of(c) == Some("Texas"))
            })
            .map(|&s| {
                doc.element_children(s)
                    .find_map(|c| {
                        (doc.label_str(c) == Some("name")).then(|| doc.text_of(c).unwrap())
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(texan, vec!["Levis", "ESprit"]);
    }

    #[test]
    fn demo_levis_has_jeans_and_man_dominant() {
        let doc = demo_store_db();
        let levis = doc.elements_with_label("store")[0];
        let clothes: Vec<_> = doc
            .subtree_elements(levis)
            .filter(|&n| doc.label_str(n) == Some("clothes"))
            .collect();
        assert_eq!(clothes.len(), 12);
        let jeans = doc
            .subtree_elements(levis)
            .filter(|&n| doc.label_str(n) == Some("category") && doc.text_of(n) == Some("jeans"))
            .count();
        assert_eq!(jeans, 6);
        let man = doc
            .subtree_elements(levis)
            .filter(|&n| doc.label_str(n) == Some("fitting") && doc.text_of(n) == Some("man"))
            .count();
        assert_eq!(man, 8);
    }

    #[test]
    fn random_config_is_deterministic_and_scales() {
        let cfg = RetailerConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.to_xml_string(), b.to_xml_string());
        let bigger = RetailerConfig { retailers: 8, ..RetailerConfig::default() }.generate();
        assert!(bigger.len() > a.len());
    }

    #[test]
    fn random_store_names_are_unique() {
        let doc = RetailerConfig::default().generate();
        let mut names: Vec<String> = doc
            .elements_with_label("name")
            .into_iter()
            .filter(|&n| {
                doc.parent(n)
                    .map(|p| doc.label_str(p) == Some("store"))
                    .unwrap_or(false)
            })
            .map(|n| doc.text_of(n).unwrap().to_string())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "store names must be unique for key mining");
    }
}
