//! Criterion registration of the PR-2 query-path workload: cold vs cached
//! vs threaded end-to-end answering on the retailer corpus (the
//! `query_throughput` binary covers the full matrix and emits JSON).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract::prelude::*;
use extract_bench::throughput::retailer_corpus;
use std::hint::black_box;

fn bench_query_throughput(c: &mut Criterion) {
    let corpus = retailer_corpus();
    let config = ExtractConfig::with_bound(10);
    let extract = Extract::new(&corpus.doc);
    let session = QuerySession::with_options(&corpus.doc, 4, extract_bench::throughput::CACHE_CAPACITY);
    for q in &corpus.queries {
        session.answer(q, &config); // warm the cache
    }
    let batch: Vec<&str> =
        corpus.queries.iter().cycle().take(corpus.queries.len() * 4).copied().collect();

    let mut group = c.benchmark_group("query_throughput");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("cold", corpus.name), &(), |b, _| {
        b.iter(|| {
            for q in &corpus.queries {
                black_box(extract.snippets_for_query(q, &config));
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("cached", corpus.name), &(), |b, _| {
        b.iter(|| {
            for q in &corpus.queries {
                black_box(session.answer(q, &config));
            }
        });
    });
    // Pure pool speedup: caches disabled so every batched query computes.
    let uncached = QuerySession::with_options(&corpus.doc, 4, 0);
    group.bench_with_input(BenchmarkId::new("threaded-x4", corpus.name), &(), |b, _| {
        b.iter(|| black_box(uncached.answer_batch(&batch, &config)));
    });
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
