//! E6 — snippet generation time vs. snippet size bound.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract_bench::{scaled_retailer_db, scaled_retailer_root};
use extract_core::{Extract, ExtractConfig};
use extract_search::{KeywordQuery, QueryResult};
use std::hint::black_box;

fn bench_size_bound(c: &mut Criterion) {
    let doc = scaled_retailer_db(20_000);
    let extract = Extract::new(&doc);
    let root = scaled_retailer_root(&doc);
    let query = KeywordQuery::parse("texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, root);

    let mut group = c.benchmark_group("e6_generation_vs_size_bound");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    for bound in [4usize, 8, 16, 32, 64, 100] {
        let config = ExtractConfig::with_bound(bound);
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, _| {
            b.iter(|| black_box(extract.snippet(&query, &result, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_bound);
criterion_main!(benches);
