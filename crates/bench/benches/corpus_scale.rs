//! Criterion registration of the PR-3 corpus workload: streaming corpus
//! build, sharded candidate routing vs the flat scan, and corpus query
//! answering (the `corpus_scale` binary covers the full matrix and emits
//! JSON).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract::prelude::*;
use extract_bench::corpus_scale::{build_corpus, quick_corpus_config};
use extract_datagen::corpus::CorpusConfig;

fn bench_corpus_scale(c: &mut Criterion) {
    let cfg = quick_corpus_config();
    let corpus = build_corpus(&cfg, extract::corpus::MAX_LABEL_SHARDS);
    let unsharded = build_corpus(&cfg, 0);
    let queries: Vec<&str> = CorpusConfig::query_mix()
        .into_iter()
        .filter(|q| !q.contains("name"))
        .collect();
    let resolve = |corpus: &Corpus| -> Vec<Vec<extract::index::TokenId>> {
        queries
            .iter()
            .filter_map(|q| {
                KeywordQuery::parse(q)
                    .keywords()
                    .iter()
                    .map(|k| corpus.postings().token_id(k))
                    .collect()
            })
            .collect()
    };
    let resolved = resolve(&corpus);
    let resolved_flat = resolve(&unsharded);

    let mut group = c.benchmark_group("corpus_scale");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(15);

    group.bench_with_input(BenchmarkId::new("build-streaming", cfg.documents), &(), |b, _| {
        b.iter(|| black_box(build_corpus(&cfg, extract::corpus::MAX_LABEL_SHARDS)));
    });
    group.bench_with_input(BenchmarkId::new("route-sharded", cfg.documents), &(), |b, _| {
        b.iter(|| {
            let mut docs = Vec::new();
            let mut fanin = FanIn::default();
            for ids in &resolved {
                corpus.postings().candidate_docs(ids, &mut docs, &mut fanin);
                black_box(docs.len());
            }
            black_box(fanin.total())
        });
    });
    group.bench_with_input(BenchmarkId::new("route-flat-scan", cfg.documents), &(), |b, _| {
        b.iter(|| {
            let mut docs = Vec::new();
            let mut fanin = FanIn::default();
            for ids in &resolved_flat {
                unsharded.postings().candidate_docs_by_scan(ids, &mut docs, &mut fanin);
                black_box(docs.len());
            }
            black_box(fanin.total())
        });
    });
    let session = QuerySession::from_corpus_with_options(&corpus, 4, 4096);
    let config = ExtractConfig::with_bound(8);
    session.answer_corpus_batch(&queries, &config); // warm caches + engines
    group.bench_with_input(BenchmarkId::new("answer-corpus-cached", cfg.documents), &(), |b, _| {
        b.iter(|| {
            for q in &queries {
                black_box(session.answer_corpus(q, &config));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_corpus_scale);
criterion_main!(benches);
