//! E11 — search engine latency: SLCA (indexed lookup vs scan eager), ELCA
//! and XSeek result-root construction.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract_analyzer::EntityModel;
use extract_datagen::auction::AuctionConfig;
use extract_index::XmlIndex;
use extract_search::elca::elca_stack;
use extract_search::slca::{slca_indexed_lookup, slca_scan_eager};
use extract_search::xseek::{self, RootPolicy};
use extract_search::KeywordQuery;
use extract_xml::NodeId;
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let doc = AuctionConfig::with_target_nodes(100_000, 5).generate();
    let index = XmlIndex::build(&doc);
    let model = EntityModel::analyze(&doc);

    let mut group = c.benchmark_group("e11_search_algorithms");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(30);
    for query_str in ["gold watch", "person houston texas", "item cash painting"] {
        let query = KeywordQuery::parse(query_str);
        let lists: Vec<Vec<NodeId>> =
            query.keywords().iter().map(|k| index.postings(k).to_vec()).collect();
        group.bench_with_input(
            BenchmarkId::new("slca-ile", query_str),
            &query_str,
            |b, _| {
                b.iter(|| black_box(slca_indexed_lookup(&doc, index.dewey_store(), &lists)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("slca-se", query_str),
            &query_str,
            |b, _| {
                b.iter(|| black_box(slca_scan_eager(&doc, index.dewey_store(), &lists)));
            },
        );
        group.bench_with_input(BenchmarkId::new("elca", query_str), &query_str, |b, _| {
            b.iter(|| black_box(elca_stack(&doc, &lists)));
        });
        group.bench_with_input(BenchmarkId::new("xseek", query_str), &query_str, |b, _| {
            b.iter(|| {
                black_box(xseek::result_roots(&doc, &index, &model, &query, RootPolicy::Entity))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
