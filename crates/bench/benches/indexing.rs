//! E10 — index build time vs. document size.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use extract_datagen::auction::AuctionConfig;
use extract_index::XmlIndex;
use std::hint::black_box;

fn bench_indexing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_index_build");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for target in [10_000usize, 50_000, 200_000] {
        let doc = AuctionConfig::with_target_nodes(target, 3).generate();
        let nodes = doc.len();
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(XmlIndex::build(&doc)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
