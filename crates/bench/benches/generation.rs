//! E5 — snippet generation time vs. query result size.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use extract_bench::{scaled_retailer_db, scaled_retailer_root};
use extract_core::{Extract, ExtractConfig};
use extract_search::{KeywordQuery, QueryResult};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_generation_vs_result_size");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    let query = KeywordQuery::parse("texas apparel retailer");
    for target in [1_000usize, 5_000, 20_000, 80_000] {
        let doc = scaled_retailer_db(target);
        let extract = Extract::new(&doc);
        let root = scaled_retailer_root(&doc);
        let result = QueryResult::build(extract.index(), &query, root);
        let nodes = doc.subtree_size(root);
        let config = ExtractConfig::with_bound(20);
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(extract.snippet(&query, &result, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
