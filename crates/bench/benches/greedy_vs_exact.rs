//! E8 — greedy vs. exact instance selection on a small result.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract_core::selector::{exact_select, greedy_select, ExactLimits};
use extract_core::{Extract, ExtractConfig};
use extract_datagen::retailer::demo_store_db;
use extract_search::{Algorithm, Engine, KeywordQuery};
use std::hint::black_box;

fn bench_selectors(c: &mut Criterion) {
    let doc = demo_store_db();
    let extract = Extract::new(&doc);
    let engine = Engine::new(&doc);
    let query = KeywordQuery::parse("store texas");
    let result = engine.search(&query, Algorithm::XSeek).remove(0);
    let ilist = extract.ilist(&query, &result, &ExtractConfig::default());

    let mut group = c.benchmark_group("e8_greedy_vs_exact");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for bound in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("greedy", bound), &bound, |b, &bound| {
            b.iter(|| black_box(greedy_select(&doc, &ilist, result.root, bound)));
        });
        group.bench_with_input(BenchmarkId::new("exact", bound), &bound, |b, &bound| {
            b.iter(|| {
                black_box(exact_select(
                    &doc,
                    &ilist,
                    result.root,
                    bound,
                    ExactLimits::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
