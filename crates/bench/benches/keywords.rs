//! E7 — snippet generation time vs. number of query keywords.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extract_bench::{scaled_retailer_db, scaled_retailer_root};
use extract_core::{Extract, ExtractConfig};
use extract_search::{KeywordQuery, QueryResult};
use std::hint::black_box;

fn bench_keywords(c: &mut Criterion) {
    let doc = scaled_retailer_db(20_000);
    let extract = Extract::new(&doc);
    let root = scaled_retailer_root(&doc);
    let all = ["retailer", "apparel", "texas", "houston", "man", "casual", "outwear", "store"];

    let mut group = c.benchmark_group("e7_generation_vs_keywords");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    for k in [1usize, 2, 4, 6, 8] {
        let query = KeywordQuery::from_keywords(all[..k].to_vec());
        let result = QueryResult::build(extract.index(), &query, root);
        let config = ExtractConfig::with_bound(20);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(extract.snippet(&query, &result, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_keywords);
criterion_main!(benches);
