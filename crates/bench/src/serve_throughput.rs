//! The serve-throughput workload: loopback load generation against a
//! **live daemon** — real sockets, real HTTP parsing, real JSON
//! rendering — not an in-process shortcut.
//!
//! Scenarios (all over the mixed datagen corpus):
//!
//! * `serve_cold` / `serve_hot` — one fresh TCP connection per request
//!   (the PR-4 client model): the end-to-end cost of connect + routing +
//!   search + rank + top-k snippets + JSON + teardown, against cold and
//!   warmed caches;
//! * `serve_cold_keepalive` / `serve_hot_keepalive` — the same request
//!   sets over **persistent connections** (one socket per client, PR-5):
//!   what the fresh-connection scenarios pay in connect/teardown is the
//!   delta between the pairs;
//! * `serve_overload` — a worker pool of 1 with a small admission queue
//!   under 2× its concurrency capacity: reports the shed rate (the
//!   fraction of requests answered `503` instead of queued unboundedly).
//!
//! Shared by the `serve_throughput` binary (which writes
//! `BENCH_PR5.json`) so the committed numbers and the CLI runs measure
//! exactly the same work.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use extract::prelude::*;
use extract::serve::{SearchApp, SearchAppConfig};
use extract_datagen::corpus::CorpusConfig;
use extract_serve::testing::KeepAliveClient;
use extract_serve::{ServeConfig, Server};

use crate::throughput::ScenarioResult;

/// Workload shape: corpus size, client pressure, overload geometry.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Documents in the generated corpus.
    pub documents: usize,
    /// Target nodes per document.
    pub target_nodes_per_doc: usize,
    /// Generator seed.
    pub seed: u64,
    /// Concurrent load-generator clients for the throughput scenarios.
    pub clients: usize,
    /// Requests each client issues per scenario.
    pub requests_per_client: usize,
    /// Admission queue depth of the overload scenario (workers are fixed
    /// at 1, so capacity is `1 + depth` and the generator runs twice
    /// that many concurrent clients).
    pub overload_queue_depth: usize,
}

/// The committed-numbers configuration.
pub fn full_workload() -> ServeWorkload {
    ServeWorkload {
        documents: 24,
        target_nodes_per_doc: 2_000,
        seed: 0xC0D,
        clients: 4,
        requests_per_client: 64,
        overload_queue_depth: 4,
    }
}

/// A fast smoke configuration.
pub fn quick_workload() -> ServeWorkload {
    ServeWorkload {
        documents: 9,
        target_nodes_per_doc: 800,
        seed: 0xC0D,
        clients: 2,
        requests_per_client: 12,
        overload_queue_depth: 2,
    }
}

fn build_corpus(workload: &ServeWorkload) -> Corpus {
    let config = CorpusConfig {
        documents: workload.documents,
        target_nodes_per_doc: workload.target_nodes_per_doc,
        seed: workload.seed,
    };
    let mut builder = CorpusBuilder::new();
    for (name, doc) in config.documents() {
        builder.add_parsed(&name, doc);
    }
    builder.finish()
}

/// The request mix: the corpus query mix crossed with page sizes, so
/// every entry is a distinct `(q, k)` page key.
fn targets(workload: &ServeWorkload) -> Vec<String> {
    let mix = CorpusConfig::query_mix();
    (0..workload.clients * workload.requests_per_client)
        .map(|i| {
            let q = mix[i % mix.len()].replace(' ', "+");
            let k = 1 + (i / mix.len()) % 10;
            format!("/search?q={q}&k={k}")
        })
        .collect()
}

/// One raw HTTP GET over a fresh connection; returns the status code.
fn get_status(addr: SocketAddr, target: &str) -> u16 {
    extract_serve::testing::fetch(addr, "GET", target).0
}

/// How each load-generator client talks to the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientMode {
    /// One fresh TCP connection per request (`Connection: close`).
    FreshPerRequest,
    /// One persistent keep-alive connection per client, reconnecting
    /// only if the server closes it.
    Persistent,
}

/// The serving config for the throughput scenarios (generous caps so
/// the measurement is the request path, not the limits).
fn throughput_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 64,
        per_client_inflight: 1024,
        io_timeout: Duration::from_secs(30),
        max_requests_per_connection: 0, // persistent clients never rotate
        ..Default::default()
    }
}

/// Drive `targets`, split across `clients` threads, against a fresh
/// daemon over `corpus`. Returns `(wall, ok, shed, other)`.
fn drive(
    corpus: &Corpus,
    serve_config: ServeConfig,
    cache_capacity: usize,
    clients: usize,
    targets: &[String],
    warmup: bool,
    mode: ClientMode,
) -> (Duration, u64, u64, u64) {
    let server = Server::bind("127.0.0.1:0", serve_config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let session = QuerySession::from_corpus_with_options(corpus, 1, cache_capacity);
    let mut app = SearchApp::new(session, SearchAppConfig::default());
    app.attach_server(handle.clone());

    let mut wall = Duration::ZERO;
    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(|request| app.handle(request)));
        if warmup {
            for target in targets {
                get_status(addr, target);
            }
        }
        let start = Instant::now();
        let chunk = targets.len().div_ceil(clients.max(1));
        let counters: Vec<_> = targets
            .chunks(chunk)
            .map(|mine| {
                scope.spawn(move || {
                    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
                    let mut conn: Option<KeepAliveClient> = None;
                    for target in mine {
                        let status = match mode {
                            ClientMode::FreshPerRequest => get_status(addr, target),
                            ClientMode::Persistent => {
                                let client = conn
                                    .get_or_insert_with(|| KeepAliveClient::connect(addr));
                                let response = client.request("GET", target);
                                if !response.keep_alive {
                                    conn = None; // server closed: reconnect next time
                                }
                                response.status
                            }
                        };
                        match status {
                            200 => ok += 1,
                            503 | 429 => shed += 1,
                            _ => other += 1,
                        }
                    }
                    (ok, shed, other)
                })
            })
            .collect();
        for counter in counters {
            let (o, s, x) = counter.join().expect("client");
            ok += o;
            shed += s;
            other += x;
        }
        wall = start.elapsed();
        handle.shutdown();
    });
    (wall, ok, shed, other)
}

/// Run the scenarios; results use ns-per-request (`request` unit) for
/// the throughput pairs and shed percent (`pct` unit) for overload.
pub fn run_all(workload: &ServeWorkload) -> Vec<ScenarioResult> {
    let corpus = build_corpus(workload);
    let targets = targets(workload);
    let mut out = Vec::new();

    let throughput = |scenario: &'static str,
                          cache: usize,
                          warmup: bool,
                          mode: ClientMode,
                          out: &mut Vec<ScenarioResult>| {
        let (wall, ok, _, other) =
            drive(&corpus, throughput_config(), cache, workload.clients, &targets, warmup, mode);
        assert_eq!(other, 0, "{scenario} must not produce errors");
        out.push(ScenarioResult {
            corpus: "mixed",
            scenario,
            median_ns: wall.as_nanos() as f64 / ok.max(1) as f64,
            unit: "request",
        });
    };

    // Cold: caches off, every page computed end to end.
    throughput("serve_cold", 0, false, ClientMode::FreshPerRequest, &mut out);
    throughput("serve_cold_keepalive", 0, false, ClientMode::Persistent, &mut out);
    // Hot: warmed page cache, same request set.
    let cache = crate::throughput::CACHE_CAPACITY;
    throughput("serve_hot", cache, true, ClientMode::FreshPerRequest, &mut out);
    throughput("serve_hot_keepalive", cache, true, ClientMode::Persistent, &mut out);

    // Overload: capacity 1 + Q, pressure 2 × capacity concurrent
    // clients, each on a fresh connection so admission geometry is
    // exactly the PR-4 contract.
    let capacity = 1 + workload.overload_queue_depth;
    let overload_clients = 2 * capacity;
    let overload_targets = &targets[..targets.len().min(overload_clients * 8)];
    let (_, ok, shed, other) = drive(
        &corpus,
        ServeConfig {
            workers: 1,
            queue_depth: workload.overload_queue_depth,
            per_client_inflight: 1024,
            io_timeout: Duration::from_secs(30),
            ..Default::default()
        },
        crate::throughput::CACHE_CAPACITY,
        overload_clients,
        overload_targets,
        false,
        ClientMode::FreshPerRequest,
    );
    let total = ok + shed + other;
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_overload_shed",
        median_ns: 100.0 * shed as f64 / total.max(1) as f64,
        unit: "pct",
    });
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_overload_served",
        median_ns: 100.0 * ok as f64 / total.max(1) as f64,
        unit: "pct",
    });
    out
}

/// Derived ratios: hot-vs-cold and keep-alive-vs-fresh speedups,
/// requests/s for every throughput scenario.
pub fn derived(results: &[ScenarioResult]) -> Vec<(String, f64)> {
    let get = |scenario: &str| {
        results.iter().find(|r| r.scenario == scenario).map(|r| r.median_ns)
    };
    let mut out = Vec::new();
    if let (Some(cold), Some(hot)) = (get("serve_cold"), get("serve_hot")) {
        if hot > 0.0 {
            out.push(("serve_hot_vs_cold".to_string(), cold / hot));
        }
        out.push(("serve_cold_req_per_s".to_string(), 1e9 / cold));
        out.push(("serve_hot_req_per_s".to_string(), 1e9 / hot));
    }
    if let (Some(fresh), Some(ka)) = (get("serve_hot"), get("serve_hot_keepalive")) {
        if ka > 0.0 {
            out.push(("serve_hot_keepalive_vs_fresh".to_string(), fresh / ka));
            out.push(("serve_hot_keepalive_req_per_s".to_string(), 1e9 / ka));
        }
    }
    if let (Some(fresh), Some(ka)) = (get("serve_cold"), get("serve_cold_keepalive")) {
        if ka > 0.0 {
            out.push(("serve_cold_keepalive_vs_fresh".to_string(), fresh / ka));
            out.push(("serve_cold_keepalive_req_per_s".to_string(), 1e9 / ka));
        }
    }
    if let Some(shed) = get("serve_overload_shed") {
        out.push(("serve_overload_shed_pct".to_string(), shed));
    }
    out
}

/// Serialize as the committed `BENCH_PR5.json` payload.
pub fn to_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"serve_throughput\",\n  \"pr\": 5,\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"scenario\": \"{}\", \"median_ns_per_op\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.corpus,
            r.scenario,
            r.median_ns,
            r.unit,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"derived\": {\n");
    let d = derived(results);
    for (i, (name, x)) in d.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {x:.2}{}\n",
            if i + 1 == d.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// A deterministic keep-alive probe for CI (`bench.sh --check`): boot a
/// tiny daemon, issue a few requests over one socket, and verify — via
/// the server's own counters — that the connection was actually reused.
/// Returns `false` (after printing why) instead of panicking so the
/// caller can exit non-zero.
pub fn check_keepalive() -> bool {
    let config = CorpusConfig { documents: 3, target_nodes_per_doc: 200, seed: 7 };
    let mut builder = CorpusBuilder::new();
    for (name, doc) in config.documents() {
        builder.add_parsed(&name, doc);
    }
    let corpus = builder.finish();
    let server = Server::bind("127.0.0.1:0", throughput_config()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let session = QuerySession::from_corpus_with_options(&corpus, 1, 64);
    let mut app = SearchApp::new(session, SearchAppConfig::default());
    app.attach_server(handle.clone());

    let mut ok = true;
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(|request| app.handle(request)));
        let mut client = KeepAliveClient::connect(addr);
        for i in 0..3 {
            let response = client.request("GET", "/search?q=texas&k=2");
            if response.status != 200 || !response.keep_alive {
                eprintln!("check_keepalive: request {i}: {response:?}");
                ok = false;
            }
        }
        let stats = handle.stats();
        if stats.accepted != 1 || stats.reused_requests < 2 {
            eprintln!("check_keepalive: no reuse observed: {stats:?}");
            ok = false;
        }
        handle.shutdown();
    });
    if ok {
        eprintln!("check_keepalive: 3 requests over 1 socket, reuse confirmed");
    }
    ok
}

/// The cache-hot instrumentation overhead guard (`bench.sh --check`):
/// A/B the same keep-alive request loop with stage timing + histogram
/// recording globally off, then on, in one process. The per-request
/// delta must stay under 5% of the larger of the measured off-cost and
/// the committed `serve_hot_keepalive` baseline (24.6 µs/request,
/// `BENCH_PR5.json`) — the baseline floor keeps a fast machine's noise
/// from failing a genuinely cheap instrumentation path. Returns `false`
/// (after printing the numbers) instead of panicking so the caller can
/// exit non-zero.
pub fn check_obs_overhead() -> bool {
    /// `serve_hot_keepalive` median from the committed BENCH_PR5.json.
    const BASELINE_NS_PER_REQUEST: f64 = 24_608.2;
    const ROUNDS: usize = 5;
    const REQUESTS_PER_ROUND: usize = 300;

    let config = CorpusConfig { documents: 6, target_nodes_per_doc: 400, seed: 0xC0D };
    let mut builder = CorpusBuilder::new();
    for (name, doc) in config.documents() {
        builder.add_parsed(&name, doc);
    }
    let corpus = builder.finish();
    let server = Server::bind("127.0.0.1:0", throughput_config()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let session = QuerySession::from_corpus_with_options(&corpus, 1, 64);
    let mut app = SearchApp::new(session, SearchAppConfig::default());
    app.attach_server(handle.clone());

    let mut ok = true;
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(|request| app.handle(request)));
        let mut client = KeepAliveClient::connect(addr);
        let target = "/search?q=texas&k=3";
        // Warm the page cache so both arms measure the same cached path.
        for _ in 0..16 {
            let response = client.request("GET", target);
            assert_eq!(response.status, 200, "warmup must serve");
        }
        // Interleave off/on rounds and keep each arm's *minimum* — the
        // noise-robust estimate of its true cost on this machine.
        let mut measure = |enabled: bool| -> f64 {
            extract_obs::set_enabled(enabled);
            let mut best = f64::INFINITY;
            for _ in 0..ROUNDS {
                let start = Instant::now();
                for _ in 0..REQUESTS_PER_ROUND {
                    let response = client.request("GET", target);
                    if response.status != 200 {
                        eprintln!("check_obs_overhead: non-200: {response:?}");
                    }
                }
                let per_request =
                    start.elapsed().as_nanos() as f64 / REQUESTS_PER_ROUND as f64;
                best = best.min(per_request);
            }
            best
        };
        let off = measure(false);
        let on = measure(true);
        extract_obs::set_enabled(true);
        let overhead = on - off;
        let budget = (0.05 * off).max(0.05 * BASELINE_NS_PER_REQUEST);
        eprintln!(
            "check_obs_overhead: off={off:.0} ns/req on={on:.0} ns/req \
             overhead={overhead:.0} ns budget={budget:.0} ns \
             (5% of max(off, {BASELINE_NS_PER_REQUEST:.0} baseline))"
        );
        if overhead > budget {
            eprintln!("check_obs_overhead: instrumentation overhead exceeds the 5% budget");
            ok = false;
        }
        handle.shutdown();
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_runs_and_serializes() {
        let workload = ServeWorkload {
            documents: 4,
            target_nodes_per_doc: 300,
            seed: 7,
            clients: 2,
            requests_per_client: 3,
            overload_queue_depth: 1,
        };
        let results = run_all(&workload);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.median_ns >= 0.0));
        let json = to_json(&results);
        extract_serve::json::parse(&json).expect("payload is valid JSON");
    }

    #[test]
    fn keepalive_check_is_green() {
        assert!(check_keepalive());
    }
}
