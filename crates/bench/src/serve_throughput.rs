//! The PR-4 serve-throughput workload: loopback load generation against
//! a **live daemon** — real sockets, real HTTP parsing, real JSON
//! rendering — not an in-process shortcut.
//!
//! Scenarios (all over the mixed datagen corpus):
//!
//! * `serve_cold` — every request is a distinct `(query, k)` page against
//!   a caches-off session: the end-to-end cost of routing + search +
//!   rank + top-k snippets + JSON + the socket round-trip;
//! * `serve_hot` — the same request set against warmed caches: the
//!   steady-state cost of a result page that is one hash lookup away;
//! * `serve_overload` — a worker pool of 1 with a small admission queue
//!   under 2× its concurrency capacity: reports the shed rate (the
//!   fraction of requests answered `503` instead of queued unboundedly).
//!
//! Shared by the `serve_throughput` binary (which writes
//! `BENCH_PR4.json`) so the committed numbers and the CLI runs measure
//! exactly the same work.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use extract::prelude::*;
use extract::serve::{SearchApp, SearchAppConfig};
use extract_datagen::corpus::CorpusConfig;
use extract_serve::{ServeConfig, Server};

use crate::throughput::ScenarioResult;

/// Workload shape: corpus size, client pressure, overload geometry.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// Documents in the generated corpus.
    pub documents: usize,
    /// Target nodes per document.
    pub target_nodes_per_doc: usize,
    /// Generator seed.
    pub seed: u64,
    /// Concurrent load-generator clients for the throughput scenarios.
    pub clients: usize,
    /// Requests each client issues per scenario.
    pub requests_per_client: usize,
    /// Admission queue depth of the overload scenario (workers are fixed
    /// at 1, so capacity is `1 + depth` and the generator runs twice
    /// that many concurrent clients).
    pub overload_queue_depth: usize,
}

/// The committed-numbers configuration.
pub fn full_workload() -> ServeWorkload {
    ServeWorkload {
        documents: 24,
        target_nodes_per_doc: 2_000,
        seed: 0xC0D,
        clients: 4,
        requests_per_client: 64,
        overload_queue_depth: 4,
    }
}

/// A fast smoke configuration.
pub fn quick_workload() -> ServeWorkload {
    ServeWorkload {
        documents: 9,
        target_nodes_per_doc: 800,
        seed: 0xC0D,
        clients: 2,
        requests_per_client: 12,
        overload_queue_depth: 2,
    }
}

fn build_corpus(workload: &ServeWorkload) -> Corpus {
    let config = CorpusConfig {
        documents: workload.documents,
        target_nodes_per_doc: workload.target_nodes_per_doc,
        seed: workload.seed,
    };
    let mut builder = CorpusBuilder::new();
    for (name, doc) in config.documents() {
        builder.add_parsed(&name, doc);
    }
    builder.finish()
}

/// The request mix: the corpus query mix crossed with page sizes, so
/// every entry is a distinct `(q, k)` page key.
fn targets(workload: &ServeWorkload) -> Vec<String> {
    let mix = CorpusConfig::query_mix();
    (0..workload.clients * workload.requests_per_client)
        .map(|i| {
            let q = mix[i % mix.len()].replace(' ', "+");
            let k = 1 + (i / mix.len()) % 10;
            format!("/search?q={q}&k={k}")
        })
        .collect()
}

/// One raw HTTP GET; returns the status code.
fn get_status(addr: SocketAddr, target: &str) -> u16 {
    extract_serve::testing::fetch(addr, "GET", target).0
}

/// Drive `targets`, split across `clients` threads, against a fresh
/// daemon over `corpus`. Returns `(wall, status counts as (ok, shed,
/// other))`.
fn drive(
    corpus: &Corpus,
    serve_config: ServeConfig,
    cache_capacity: usize,
    clients: usize,
    targets: &[String],
    warmup: bool,
) -> (Duration, u64, u64, u64) {
    let server = Server::bind("127.0.0.1:0", serve_config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let session = QuerySession::from_corpus_with_options(corpus, 1, cache_capacity);
    let mut app = SearchApp::new(session, SearchAppConfig::default());
    app.attach_server(handle.clone());

    let mut wall = Duration::ZERO;
    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(|request| app.handle(request)));
        if warmup {
            for target in targets {
                get_status(addr, target);
            }
        }
        let start = Instant::now();
        let chunk = targets.len().div_ceil(clients.max(1));
        let counters: Vec<_> = targets
            .chunks(chunk)
            .map(|mine| {
                scope.spawn(move || {
                    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
                    for target in mine {
                        match get_status(addr, target) {
                            200 => ok += 1,
                            503 | 429 => shed += 1,
                            _ => other += 1,
                        }
                    }
                    (ok, shed, other)
                })
            })
            .collect();
        for counter in counters {
            let (o, s, x) = counter.join().expect("client");
            ok += o;
            shed += s;
            other += x;
        }
        wall = start.elapsed();
        handle.shutdown();
    });
    (wall, ok, shed, other)
}

/// Run the three scenarios; results use ns-per-request (`request` unit)
/// for the throughput pair and shed percent (`pct` unit) for overload.
pub fn run_all(workload: &ServeWorkload) -> Vec<ScenarioResult> {
    let corpus = build_corpus(workload);
    let targets = targets(workload);
    let serving = ServeConfig {
        workers: 2,
        queue_depth: 64,
        per_client_inflight: 1024,
        io_timeout: Duration::from_secs(30),
    };
    let mut out = Vec::new();

    // Cold: caches off, every page computed end to end.
    let (wall, ok, _, other) =
        drive(&corpus, serving.clone(), 0, workload.clients, &targets, false);
    assert_eq!(other, 0, "cold run must not produce errors");
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_cold",
        median_ns: wall.as_nanos() as f64 / ok.max(1) as f64,
        unit: "request",
    });

    // Hot: warmed page cache, same request set.
    let (wall, ok, _, other) =
        drive(&corpus, serving.clone(), crate::throughput::CACHE_CAPACITY, workload.clients, &targets, true);
    assert_eq!(other, 0, "hot run must not produce errors");
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_hot",
        median_ns: wall.as_nanos() as f64 / ok.max(1) as f64,
        unit: "request",
    });

    // Overload: capacity 1 + Q, pressure 2 × capacity concurrent clients.
    let capacity = 1 + workload.overload_queue_depth;
    let overload_clients = 2 * capacity;
    let overload_targets = &targets[..targets.len().min(overload_clients * 8)];
    let (_, ok, shed, other) = drive(
        &corpus,
        ServeConfig {
            workers: 1,
            queue_depth: workload.overload_queue_depth,
            per_client_inflight: 1024,
            io_timeout: Duration::from_secs(30),
        },
        crate::throughput::CACHE_CAPACITY,
        overload_clients,
        overload_targets,
        false,
    );
    let total = ok + shed + other;
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_overload_shed",
        median_ns: 100.0 * shed as f64 / total.max(1) as f64,
        unit: "pct",
    });
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "serve_overload_served",
        median_ns: 100.0 * ok as f64 / total.max(1) as f64,
        unit: "pct",
    });
    out
}

/// Derived ratios: hot-vs-cold speedup and requests/s for both.
pub fn derived(results: &[ScenarioResult]) -> Vec<(String, f64)> {
    let get = |scenario: &str| {
        results.iter().find(|r| r.scenario == scenario).map(|r| r.median_ns)
    };
    let mut out = Vec::new();
    if let (Some(cold), Some(hot)) = (get("serve_cold"), get("serve_hot")) {
        if hot > 0.0 {
            out.push(("serve_hot_vs_cold".to_string(), cold / hot));
        }
        out.push(("serve_cold_req_per_s".to_string(), 1e9 / cold));
        out.push(("serve_hot_req_per_s".to_string(), 1e9 / hot));
    }
    if let Some(shed) = get("serve_overload_shed") {
        out.push(("serve_overload_shed_pct".to_string(), shed));
    }
    out
}

/// Serialize as the committed `BENCH_PR4.json` payload.
pub fn to_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"serve_throughput\",\n  \"pr\": 4,\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"scenario\": \"{}\", \"median_ns_per_op\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.corpus,
            r.scenario,
            r.median_ns,
            r.unit,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"derived\": {\n");
    let d = derived(results);
    for (i, (name, x)) in d.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {x:.2}{}\n",
            if i + 1 == d.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_runs_and_serializes() {
        let workload = ServeWorkload {
            documents: 4,
            target_nodes_per_doc: 300,
            seed: 7,
            clients: 2,
            requests_per_client: 3,
            overload_queue_depth: 1,
        };
        let results = run_all(&workload);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.median_ns >= 0.0));
        let json = to_json(&results);
        extract_serve::json::parse(&json).expect("payload is valid JSON");
    }
}
