//! PR-7 router throughput workload: the scatter-gather router over two
//! shard daemons versus a single daemon over the union corpus, plus a
//! degraded scenario where one shard misbehaves (a 500 window followed
//! by stalls) so the retry, hedge and breaker machinery is exercised
//! under load. Everything runs over real sockets: two shard servers,
//! one router server, keep-alive load-generator clients.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use extract::prelude::*;
use extract::serve::{serve_corpus, SearchAppConfig};
use extract_corpus::CorpusBuilder;
use extract_datagen::corpus::CorpusConfig;
use extract_router::{serve_router, HedgeConfig, RouterConfig};
use extract_serve::fault::FaultPlan;
use extract_serve::json::{self, Value};
use extract_serve::testing::KeepAliveClient;
use extract_serve::{ClientConfig, ServeConfig, ServerHandle};

use crate::throughput::ScenarioResult;

/// Knobs for one router bench run.
#[derive(Debug, Clone)]
pub struct RouterWorkload {
    /// Documents per shard (the union daemon serves `2 ×` this).
    pub documents_per_shard: usize,
    /// Target node count per generated document.
    pub target_nodes_per_doc: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Concurrent load-generator clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
}

/// The committed-baseline configuration.
pub fn full_workload() -> RouterWorkload {
    RouterWorkload {
        documents_per_shard: 48,
        target_nodes_per_doc: 8_000,
        seed: 0xC0D,
        clients: 4,
        requests_per_client: 64,
    }
}

/// A fast smoke configuration.
pub fn quick_workload() -> RouterWorkload {
    RouterWorkload {
        documents_per_shard: 3,
        target_nodes_per_doc: 800,
        seed: 0xC0D,
        clients: 2,
        requests_per_client: 12,
    }
}

/// Build the union corpus and its two-way partition. One generator run
/// produces `2 × documents_per_shard` documents; the first half becomes
/// shard 0, the second shard 1, and all of them (same names, same
/// order) the single-daemon union — so the comparison is over exactly
/// the same data.
fn build_corpora(workload: &RouterWorkload) -> (Corpus, Corpus, Corpus) {
    let config = CorpusConfig {
        documents: workload.documents_per_shard * 2,
        target_nodes_per_doc: workload.target_nodes_per_doc,
        seed: workload.seed,
    };
    let mut union = CorpusBuilder::new();
    let mut left = CorpusBuilder::new();
    let mut right = CorpusBuilder::new();
    for (i, (name, doc)) in config.documents().enumerate() {
        if i < workload.documents_per_shard {
            left.add_parsed(&name, doc.clone());
        } else {
            right.add_parsed(&name, doc.clone());
        }
        union.add_parsed(&name, doc);
    }
    (union.finish(), left.finish(), right.finish())
}

/// The request mix: the corpus query mix crossed with page sizes.
fn targets(workload: &RouterWorkload) -> Vec<String> {
    let mix = CorpusConfig::query_mix();
    (0..workload.clients * workload.requests_per_client)
        .map(|i| {
            let q = mix[i % mix.len()].replace(' ', "+");
            let k = 1 + (i / mix.len()) % 10;
            format!("/search?q={q}&k={k}")
        })
        .collect()
}

/// Shard/daemon serving config: generous caps so the measurement is the
/// request path, not admission limits.
fn shard_config(fault: Option<Arc<FaultPlan>>) -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_depth: 64,
        per_client_inflight: 1024,
        io_timeout: Duration::from_secs(30),
        max_requests_per_connection: 0,
        fault,
        ..Default::default()
    }
}

/// Router counters scraped from `/stats` after a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterCounterSnapshot {
    /// Shard attempts beyond the first per request.
    pub retries: u64,
    /// Hedged second requests launched.
    pub hedges_fired: u64,
    /// Hedges whose response was used.
    pub hedge_wins: u64,
    /// Fresh Closed→Open breaker transitions.
    pub breaker_opens: u64,
    /// `200` responses flagged `"partial": true`.
    pub partial_responses: u64,
}

fn counter(router: &Value, key: &str) -> u64 {
    router.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn scrape_counters(addr: SocketAddr) -> RouterCounterSnapshot {
    let (status, body) = extract_serve::testing::fetch(addr, "GET", "/stats");
    if status != 200 {
        return RouterCounterSnapshot::default();
    }
    let Some(stats) = json::parse(&body).ok() else {
        return RouterCounterSnapshot::default();
    };
    let Some(router) = stats.get("router") else {
        return RouterCounterSnapshot::default();
    };
    RouterCounterSnapshot {
        retries: counter(router, "retries"),
        hedges_fired: counter(router, "hedges_fired"),
        hedge_wins: counter(router, "hedge_wins"),
        breaker_opens: counter(router, "breaker_opens"),
        partial_responses: counter(router, "partial_responses"),
    }
}

/// Outcome of driving one target set against one front door.
struct DriveOutcome {
    wall: Duration,
    ok: u64,
    other: u64,
}

/// How a scenario is driven: client count, shard/daemon page-cache
/// size, and whether a serial warmup pass precedes the measured run.
#[derive(Debug, Clone, Copy)]
struct DrivePlan {
    clients: usize,
    cache_capacity: usize,
    warmup: bool,
}

/// Split `targets` across `clients` persistent keep-alive connections
/// against `addr`; returns wall time and status tallies.
fn drive_clients(
    addr: SocketAddr,
    clients: usize,
    targets: &[String],
    warmup: bool,
) -> DriveOutcome {
    if warmup {
        let mut conn = KeepAliveClient::connect(addr);
        for target in targets {
            conn.request("GET", target);
        }
    }
    let start = Instant::now();
    let chunk = targets.len().div_ceil(clients.max(1));
    let (mut ok, mut other) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let counters: Vec<_> = targets
            .chunks(chunk)
            .map(|mine| {
                scope.spawn(move || {
                    let (mut ok, mut other) = (0u64, 0u64);
                    let mut conn: Option<KeepAliveClient> = None;
                    for target in mine {
                        let client =
                            conn.get_or_insert_with(|| KeepAliveClient::connect(addr));
                        let response = client.request("GET", target);
                        if !response.keep_alive {
                            conn = None;
                        }
                        match response.status {
                            200 => ok += 1,
                            _ => other += 1,
                        }
                    }
                    (ok, other)
                })
            })
            .collect();
        for counter in counters {
            let (o, x) = counter.join().expect("client");
            ok += o;
            other += x;
        }
    });
    DriveOutcome { wall: start.elapsed(), ok, other }
}

/// Drive `targets` against a single daemon over `corpus`.
fn drive_single(corpus: &Corpus, targets: &[String], plan: DrivePlan) -> DriveOutcome {
    let (ready_tx, ready_rx) = mpsc::channel();
    let mut outcome = DriveOutcome { wall: Duration::ZERO, ok: 0, other: 0 };
    std::thread::scope(|scope| {
        scope.spawn(|| {
            serve_corpus(
                corpus,
                "127.0.0.1:0",
                shard_config(None),
                SearchAppConfig::default(),
                plan.cache_capacity,
                |addr, handle| drop(ready_tx.send((addr, handle))),
            )
            .expect("bind single daemon");
        });
        let (addr, handle): (SocketAddr, ServerHandle) =
            ready_rx.recv().expect("single daemon ready");
        outcome = drive_clients(addr, plan.clients, targets, plan.warmup);
        handle.shutdown();
    });
    outcome
}

/// Drive `targets` through a router over two shards (the second with an
/// optional fault plan). Returns the outcome plus the router's own
/// counters.
fn drive_router(
    left: &Corpus,
    right: &Corpus,
    right_fault: Option<Arc<FaultPlan>>,
    router_config: impl FnOnce(Vec<SocketAddr>) -> RouterConfig,
    targets: &[String],
    plan: DrivePlan,
) -> (DriveOutcome, RouterCounterSnapshot) {
    let (shard_tx, shard_rx) = mpsc::channel();
    let (router_tx, router_rx) = mpsc::channel();
    let mut outcome = DriveOutcome { wall: Duration::ZERO, ok: 0, other: 0 };
    let mut counters = RouterCounterSnapshot::default();
    std::thread::scope(|scope| {
        for (index, (corpus, fault)) in
            [(left, None), (right, right_fault)].into_iter().enumerate()
        {
            let shard_tx = shard_tx.clone();
            scope.spawn(move || {
                serve_corpus(
                    corpus,
                    "127.0.0.1:0",
                    shard_config(fault),
                    SearchAppConfig::default(),
                    plan.cache_capacity,
                    |addr, handle| drop(shard_tx.send((index, addr, handle))),
                )
                .expect("bind shard");
            });
        }
        // Restore partition order regardless of readiness arrival order.
        let mut slots: [Option<(SocketAddr, ServerHandle)>; 2] = [None, None];
        for _ in 0..2 {
            let (index, addr, handle) = shard_rx.recv().expect("shard ready");
            slots[index] = Some((addr, handle));
        }
        let shards: Vec<(SocketAddr, ServerHandle)> =
            slots.into_iter().map(|s| s.expect("both shards ready")).collect();
        let config = router_config(shards.iter().map(|(a, _)| *a).collect());
        scope.spawn(move || {
            serve_router(
                "127.0.0.1:0",
                shard_config(None),
                config,
                |addr, handle| drop(router_tx.send((addr, handle))),
            )
            .expect("bind router");
        });
        let (addr, handle): (SocketAddr, ServerHandle) =
            router_rx.recv().expect("router ready");
        outcome = drive_clients(addr, plan.clients, targets, plan.warmup);
        counters = scrape_counters(addr);
        handle.shutdown();
        for (_, shard) in &shards {
            shard.shutdown();
        }
    });
    (outcome, counters)
}

/// The healthy-path router config: defaults, short probe cadence, a
/// hedge policy that stays quiet while the shards are fast.
fn healthy_router_config(shards: Vec<SocketAddr>) -> RouterConfig {
    RouterConfig {
        shards,
        request_deadline: Duration::from_secs(10),
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The degraded-path config: tight hedge ceiling and small backoffs so
/// the run spends its time in the machinery under test, not sleeping.
/// The breaker threshold is set above anything the fault plan can
/// produce: a bench run is far shorter than any realistic cooldown, so
/// an opened breaker would simply skip the shard for the rest of the
/// run and measure nothing — breaker open/heal behavior is covered by
/// the integration tests and the smoke script instead.
fn degraded_router_config(shards: Vec<SocketAddr>) -> RouterConfig {
    RouterConfig {
        retry_budget: 2,
        retry_backoff_base: Duration::from_millis(2),
        retry_backoff_max: Duration::from_millis(10),
        hedge: Some(HedgeConfig {
            percentile: 0.9,
            min_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
            min_samples: 4,
        }),
        breaker_threshold: 64,
        ..healthy_router_config(shards)
    }
}

/// The fault plan for the degraded scenario: shard 1 answers its first
/// six `/search` hits with `500` (burning retries and costing the two
/// unluckiest requests their shard-1 results), then stalls a window of
/// requests by 30 ms (firing hedges until the window drains), then
/// behaves.
fn degraded_fault(targets: usize) -> Arc<FaultPlan> {
    let stall_window = (targets / 2).max(8);
    let plan = FaultPlan::from_specs(&[
        "status:/search:code=500:count=6".to_string(),
        format!("stall:/search:ms=30:after=6:count={stall_window}"),
    ])
    .expect("valid fault specs");
    Arc::new(plan)
}

/// One run of all three scenarios. Throughput rows are ns-per-request;
/// the returned snapshot holds the degraded run's router counters.
pub fn run_all(
    workload: &RouterWorkload,
) -> (Vec<ScenarioResult>, RouterCounterSnapshot) {
    let (union, left, right) = build_corpora(workload);
    let targets = targets(workload);
    let cache = crate::throughput::CACHE_CAPACITY;
    let mut out = Vec::new();
    let per_request = |o: &DriveOutcome| o.wall.as_nanos() as f64 / o.ok.max(1) as f64;

    // Cold: page caches disabled, every request pays the full per-shard
    // search — the scatter's parallelism has real work to overlap.
    let cold_plan = DrivePlan { clients: workload.clients, cache_capacity: 0, warmup: false };
    let hot_plan = DrivePlan { clients: workload.clients, cache_capacity: cache, warmup: true };

    let single_cold = drive_single(&union, &targets, cold_plan);
    assert_eq!(single_cold.other, 0, "single daemon (cold) must not produce errors");
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "single_daemon_cold",
        median_ns: per_request(&single_cold),
        unit: "request",
    });
    let (router_cold, cold_counters) =
        drive_router(&left, &right, None, healthy_router_config, &targets, cold_plan);
    assert_eq!(router_cold.other, 0, "cold router must not produce errors");
    assert_eq!(
        cold_counters.partial_responses, 0,
        "cold router must not degrade to partial results"
    );
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "router_2shard_cold",
        median_ns: per_request(&router_cold),
        unit: "request",
    });

    // Hot: warmed page caches — the per-request floor, where the extra
    // hop and fan-out overhead dominate.
    let single = drive_single(&union, &targets, hot_plan);
    assert_eq!(single.other, 0, "single daemon must not produce errors");
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "single_daemon_hot",
        median_ns: per_request(&single),
        unit: "request",
    });

    let (healthy, healthy_counters) =
        drive_router(&left, &right, None, healthy_router_config, &targets, hot_plan);
    assert_eq!(healthy.other, 0, "healthy router must not produce errors");
    assert_eq!(
        healthy_counters.partial_responses, 0,
        "healthy router must not degrade to partial results"
    );
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "router_2shard_hot",
        median_ns: per_request(&healthy),
        unit: "request",
    });

    // No warmup pass: the fault windows must land inside the measured
    // run, so this number is genuinely "latency while one shard is
    // misbehaving" (including its cold caches).
    let (degraded, counters) = drive_router(
        &left,
        &right,
        Some(degraded_fault(targets.len())),
        degraded_router_config,
        &targets,
        DrivePlan { clients: workload.clients, cache_capacity: cache, warmup: false },
    );
    assert_eq!(
        degraded.other, 0,
        "degraded router must stay 200 (partial results, never 5xx)"
    );
    out.push(ScenarioResult {
        corpus: "mixed",
        scenario: "router_degraded_shard",
        median_ns: per_request(&degraded),
        unit: "request",
    });
    for (name, value) in [
        ("router_degraded_retries", counters.retries),
        ("router_degraded_hedges_fired", counters.hedges_fired),
        ("router_degraded_hedge_wins", counters.hedge_wins),
        ("router_degraded_breaker_opens", counters.breaker_opens),
        ("router_degraded_partial_responses", counters.partial_responses),
    ] {
        out.push(ScenarioResult {
            corpus: "mixed",
            scenario: name,
            median_ns: value as f64,
            unit: "count",
        });
    }
    (out, counters)
}

/// Derived ratios: router overhead vs the single daemon, requests/s,
/// and the degraded run's resilience counters restated.
pub fn derived(results: &[ScenarioResult]) -> Vec<(String, f64)> {
    let get = |scenario: &str| {
        results.iter().find(|r| r.scenario == scenario).map(|r| r.median_ns)
    };
    let mut out = Vec::new();
    if let (Some(single), Some(router)) =
        (get("single_daemon_cold"), get("router_2shard_cold"))
    {
        if router > 0.0 {
            out.push(("router_cold_speedup_vs_single".to_string(), single / router));
        }
        out.push(("single_daemon_cold_req_per_s".to_string(), 1e9 / single));
        out.push(("router_2shard_cold_req_per_s".to_string(), 1e9 / router));
    }
    if let (Some(single), Some(router)) =
        (get("single_daemon_hot"), get("router_2shard_hot"))
    {
        if single > 0.0 {
            out.push(("router_hot_overhead_vs_single".to_string(), router / single));
        }
        out.push(("single_daemon_hot_req_per_s".to_string(), 1e9 / single));
        out.push(("router_2shard_hot_req_per_s".to_string(), 1e9 / router));
    }
    if let Some(degraded) = get("router_degraded_shard") {
        if degraded > 0.0 {
            out.push(("router_degraded_req_per_s".to_string(), 1e9 / degraded));
        }
    }
    out
}

/// Serialize as the committed `BENCH_PR7.json` payload.
pub fn to_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"router_throughput\",\n  \"pr\": 7,\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"scenario\": \"{}\", \"median_ns_per_op\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.corpus,
            r.scenario,
            r.median_ns,
            r.unit,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"derived\": {\n");
    let d = derived(results);
    for (i, (name, x)) in d.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {x:.2}{}\n",
            if i + 1 == d.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// A deterministic router probe for CI (`bench.sh --check`): two tiny
/// shards behind a router, a handful of requests, verify 200s with
/// `"partial": false` and zero degraded counters. Returns `false`
/// (after printing why) instead of panicking so the caller can exit
/// non-zero.
pub fn check_router() -> bool {
    let workload = RouterWorkload {
        documents_per_shard: 2,
        target_nodes_per_doc: 200,
        seed: 7,
        clients: 1,
        requests_per_client: 4,
    };
    let (_, left, right) = build_corpora(&workload);
    let targets = targets(&workload);
    let (outcome, counters) = drive_router(
        &left,
        &right,
        None,
        healthy_router_config,
        &targets,
        DrivePlan {
            clients: workload.clients,
            cache_capacity: crate::throughput::CACHE_CAPACITY,
            warmup: false,
        },
    );
    let mut ok = true;
    if outcome.other != 0 {
        eprintln!("check_router: {} non-200 responses", outcome.other);
        ok = false;
    }
    if counters.partial_responses != 0 || counters.breaker_opens != 0 {
        eprintln!("check_router: unexpected degradation: {counters:?}");
        ok = false;
    }
    if ok {
        eprintln!(
            "check_router: {} requests scattered over 2 shards, all 200, no degradation",
            outcome.ok
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_runs_and_serializes() {
        let workload = RouterWorkload {
            documents_per_shard: 2,
            target_nodes_per_doc: 300,
            seed: 7,
            clients: 2,
            requests_per_client: 4,
        };
        let (results, counters) = run_all(&workload);
        // 4 cold/hot throughput rows + the degraded row + 5 counter rows.
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.median_ns >= 0.0));
        // The 500 window guarantees retries were spent.
        assert!(counters.retries > 0, "degraded run must record retries");
        let json = to_json(&results);
        extract_serve::json::parse(&json).expect("payload is valid JSON");
    }

    #[test]
    fn router_check_is_green() {
        assert!(check_router());
    }
}
