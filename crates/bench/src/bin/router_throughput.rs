//! The router-throughput benchmark: the scatter-gather router over two
//! shard daemons versus a single daemon over the union corpus (see
//! `extract_bench::router_throughput` for the scenarios), plus a
//! degraded run where one shard serves a 500 window and then stalls so
//! the retry/hedge/breaker counters have something to say.
//!
//! ```text
//! router_throughput [--json PATH] [--quick] [--check-router]
//! ```
//!
//! `--json PATH` writes the machine-readable payload committed as
//! `BENCH_PR7.json`; `--quick` shrinks the corpus and request counts;
//! `--check-router` runs only the deterministic two-shard scatter probe
//! (a CI gate, exits non-zero on failure).

use std::time::Duration;

use extract_bench::router_throughput::{
    check_router, derived, full_workload, quick_workload, run_all, to_json,
};
use extract_bench::{fmt_duration, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut workload = full_workload();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--quick" => workload = quick_workload(),
            "--check-router" => {
                std::process::exit(if check_router() { 0 } else { 1 });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: router_throughput [--json PATH] [--quick] [--check-router]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "running router_throughput (2 × {} docs × ~{} nodes, {}×{} requests)…",
        workload.documents_per_shard,
        workload.target_nodes_per_doc,
        workload.clients,
        workload.requests_per_client
    );
    let (results, counters) = run_all(&workload);

    let mut table = Table::new(["corpus", "scenario", "value", "unit"]);
    for r in &results {
        let rendered = match r.unit {
            "count" => format!("{:.0}", r.median_ns),
            _ => fmt_duration(Duration::from_nanos(r.median_ns as u64)),
        };
        table.row([r.corpus.to_string(), r.scenario.to_string(), rendered, r.unit.to_string()]);
    }
    println!("{}", table.render());

    let mut dt = Table::new(["derived", "value"]);
    for (name, x) in derived(&results) {
        dt.row([name, format!("{x:.2}")]);
    }
    println!("{}", dt.render());
    eprintln!("degraded-run counters: {counters:?}");

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
