//! Experiment driver: regenerates every figure of the paper (E1–E4) and
//! the performance/quality axes modeled on the companion paper (E5–E11).
//!
//! ```sh
//! cargo run --release -p extract-bench --bin experiments            # all
//! cargo run --release -p extract-bench --bin experiments -- e3 e8   # some
//! ```
//!
//! Each experiment prints paper-expected vs. measured values; the results
//! are recorded in EXPERIMENTS.md.

use std::collections::HashMap;
use std::time::Instant;

use extract_analyzer::{EntityModel, FeatureType, ResultStats};
use extract_bench::{fmt_duration, median_time, scaled_retailer_db, scaled_retailer_root, Table};
use extract_core::baselines::{BaselineStrategy, BfsPrefix, PathToMatches, TextWindows};
use extract_core::dominance::{dominance_score, dominant_features, features_by_raw_frequency};
use extract_core::quality::{distinguishability, evaluate_baseline, evaluate_snippet};
use extract_core::selector::{exact_select, greedy_select, greedy_select_with_policy, ExactLimits, InstancePolicy};
use extract_core::{Extract, ExtractConfig};
use extract_datagen::auction::AuctionConfig;
use extract_datagen::{movies, retailer};
use extract_index::XmlIndex;
use extract_search::elca::elca_stack;
use extract_search::slca::{slca_indexed_lookup, slca_scan_eager};
use extract_search::xseek::{self, RootPolicy};
use extract_search::{Algorithm, Engine, KeywordQuery, QueryResult};
use extract_xml::Document;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);

    println!("eXtract experiment suite — paper figures and evaluation axes\n");
    if want("e1") {
        e1_figure1_statistics();
    }
    if want("e2") {
        e2_figure2_snippet();
    }
    if want("e3") {
        e3_figure3_ilist();
    }
    if want("e4") {
        e4_figure5_demo();
    }
    if want("e5") {
        e5_time_vs_result_size();
    }
    if want("e6") {
        e6_time_vs_size_bound();
    }
    if want("e7") {
        e7_time_vs_keywords();
    }
    if want("e8") {
        e8_greedy_vs_exact();
    }
    if want("e9") {
        e9_quality_vs_baselines();
    }
    if want("e10") {
        e10_index_build();
    }
    if want("e11") {
        e11_search_engines();
    }
    if want("e12") {
        e12_ablation_dominance_normalization();
    }
    if want("e13") {
        e13_ablation_instance_policy();
    }
}

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "PASS" } else { "FAIL" });
}

fn ft(doc: &Document, e: &str, a: &str) -> FeatureType {
    FeatureType {
        entity: doc.symbols().get(e).unwrap(),
        attribute: doc.symbols().get(a).unwrap(),
    }
}

// ---------------------------------------------------------------------
// E1 — Figure 1
// ---------------------------------------------------------------------
fn e1_figure1_statistics() {
    println!("== E1 · Figure 1: query result statistics of \"Texas apparel retailer\" ==");
    let doc = retailer::figure1_db();
    let model = EntityModel::analyze(&doc);
    let engine = Engine::new(&doc);
    let results = engine.search_str("Texas apparel retailer", Algorithm::XSeek);
    check("exactly one query result (the Brook Brothers retailer)", results.len() == 1);
    let bb = retailer::figure1_result_root(&doc);
    let stats = ResultStats::compute(&doc, &model, bb);

    let mut t = Table::new(["attribute", "value", "paper", "measured", "ok"]);
    let expected: &[(&str, &str, &str, u32)] = &[
        ("store", "city", "Houston", 6),
        ("store", "city", "Austin", 1),
        ("clothes", "fitting", "man", 600),
        ("clothes", "fitting", "woman", 360),
        ("clothes", "fitting", "children", 40),
        ("clothes", "situation", "casual", 700),
        ("clothes", "situation", "formal", 300),
        ("clothes", "category", "outwear", 220),
        ("clothes", "category", "suit", 120),
        ("clothes", "category", "skirt", 80),
        ("clothes", "category", "sweaters", 70),
    ];
    let mut all_ok = true;
    for &(e, a, v, paper) in expected {
        let measured = stats.n_value(ft(&doc, e, a), v);
        all_ok &= measured == paper;
        t.row([
            format!("({e}, {a})"),
            v.to_string(),
            paper.to_string(),
            measured.to_string(),
            if measured == paper { "✓".to_string() } else { "✗".to_string() },
        ]);
    }
    print!("{}", t.render());
    check("all Figure 1 occurrence counts match", all_ok);
    check(
        "other cities (3): 3",
        stats.n_type(ft(&doc, "store", "city")) == 10
            && stats.d_type(ft(&doc, "store", "city")) == 5,
    );
    check(
        "other categories (7): 580 over a domain of 11",
        stats.n_type(ft(&doc, "clothes", "category")) == 1070
            && stats.d_type(ft(&doc, "clothes", "category")) == 11,
    );
    println!();
}

// ---------------------------------------------------------------------
// E2 — Figure 2
// ---------------------------------------------------------------------
fn e2_figure2_snippet() {
    println!("== E2 · Figure 2: the snippet of the Figure 1 result (bound 13) ==");
    let doc = retailer::figure1_db();
    let extract = Extract::new(&doc);
    let bb = retailer::figure1_result_root(&doc);
    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, bb);
    let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(13));
    print!("{}", out.snippet.to_ascii_tree());
    check("snippet uses exactly 13 edges", out.snippet.edges == 13);
    check("all 12 IList items covered", out.snippet.coverage() == 12);
    let xml = out.snippet.to_xml();
    for needle in [
        "Brook Brothers",
        "apparel",
        "<state>Texas</state>",
        "<city>Houston</city>",
        "<category>suit</category>",
        "<fitting>man</fitting>",
        "<category>outwear</category>",
        "<fitting>woman</fitting>",
        "<situation>casual</situation>",
    ] {
        check(&format!("snippet contains {needle}"), xml.contains(needle));
    }

    let mut t = Table::new(["bound", "edges used", "items covered (of 12)"]);
    for bound in [2usize, 4, 6, 8, 10, 13, 20] {
        let out = extract.snippet(&query, &result, &ExtractConfig::with_bound(bound));
        t.row([
            bound.to_string(),
            out.snippet.edges.to_string(),
            out.snippet.coverage().to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
}

// ---------------------------------------------------------------------
// E3 — Figure 3
// ---------------------------------------------------------------------
fn e3_figure3_ilist() {
    println!("== E3 · Figure 3: the IList and the published dominance scores ==");
    let doc = retailer::figure1_db();
    let model = EntityModel::analyze(&doc);
    let extract = Extract::new(&doc);
    let bb = retailer::figure1_result_root(&doc);
    let stats = ResultStats::compute(&doc, &model, bb);

    let mut t = Table::new(["feature", "paper DS", "measured DS", "ok"]);
    let expected: &[(&str, &str, &str, f64)] = &[
        ("store", "city", "Houston", 3.0),
        ("clothes", "category", "outwear", 2.26),
        ("clothes", "fitting", "man", 1.8),
        ("clothes", "situation", "casual", 1.4),
        ("clothes", "category", "suit", 1.23),
        ("clothes", "fitting", "woman", 1.08),
    ];
    let mut all_ok = true;
    for &(e, a, v, paper) in expected {
        let ds = dominance_score(&stats, ft(&doc, e, a), v).unwrap();
        let ok = (ds - paper).abs() < 0.01;
        all_ok &= ok;
        t.row([
            v.to_string(),
            format!("{paper:.2}"),
            format!("{ds:.3}"),
            if ok { "✓".to_string() } else { "✗".to_string() },
        ]);
    }
    print!("{}", t.render());
    check("all published dominance scores reproduced", all_ok);

    let query = KeywordQuery::parse("Texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, bb);
    let ilist = extract.ilist(&query, &result, &ExtractConfig::default());
    let measured = ilist.display(&doc);
    let expected = retailer::figure1_expected_ilist();
    println!("paper IList    : {}", expected.join(", "));
    println!("measured IList : {}", measured.join(", "));
    check("IList matches Figure 3 exactly", measured == expected);
    println!();
}

// ---------------------------------------------------------------------
// E4 — Figure 5
// ---------------------------------------------------------------------
fn e4_figure5_demo() {
    println!("== E4 · Figure 5: demo session — query \"store texas\", bound 6 ==");
    let doc = retailer::demo_store_db();
    let extract = Extract::new(&doc);
    let out = extract.snippets_for_query("store texas", &ExtractConfig::with_bound(6));
    check("two results (Levis and ESprit)", out.len() == 2);
    let mut rendered = Vec::new();
    for s in &out {
        println!("{}", s.snippet.summary_line(&doc));
        print!("{}", s.snippet.to_ascii_tree());
        rendered.push(s.snippet.to_xml());
    }
    let levis = rendered.iter().find(|x| x.contains("Levis"));
    let esprit = rendered.iter().find(|x| x.contains("ESprit"));
    check(
        "Levis features jeans, especially for man",
        levis.map(|x| x.contains("jeans") && x.contains("man")).unwrap_or(false),
    );
    check(
        "ESprit focuses on outwear, mostly for woman",
        esprit.map(|x| x.contains("outwear") && x.contains("woman")).unwrap_or(false),
    );
    check("snippets are fully distinguishable", distinguishability(&rendered) == 1.0);
    check("all snippets within the bound", out.iter().all(|s| s.snippet.edges <= 6));
    println!();
}

// ---------------------------------------------------------------------
// E5 — generation time vs result size
// ---------------------------------------------------------------------
fn e5_time_vs_result_size() {
    println!("== E5 · snippet generation time vs. query result size (expect ~linear) ==");
    let mut t = Table::new(["result nodes", "ilist items", "snippet time", "ns/node"]);
    let query = KeywordQuery::parse("texas apparel retailer");
    let mut prev: Option<(usize, f64)> = None;
    let mut shape_ok = true;
    for target in [1_000usize, 5_000, 20_000, 80_000, 200_000] {
        let doc = scaled_retailer_db(target);
        let extract = Extract::new(&doc);
        let root = scaled_retailer_root(&doc);
        let result = QueryResult::build(extract.index(), &query, root);
        let nodes = doc.subtree_size(root);
        let config = ExtractConfig::with_bound(20);
        let ilist_len = extract.ilist(&query, &result, &config).len();
        let d = median_time(5, || {
            std::hint::black_box(extract.snippet(&query, &result, &config));
        });
        let per_node = d.as_nanos() as f64 / nodes as f64;
        if let Some((pn, pt)) = prev {
            // Sub-quadratic: time ratio should not wildly exceed node ratio.
            let node_ratio = nodes as f64 / pn as f64;
            let time_ratio = d.as_nanos() as f64 / pt;
            shape_ok &= time_ratio < node_ratio * 3.0;
        }
        prev = Some((nodes, d.as_nanos() as f64));
        t.row([
            nodes.to_string(),
            ilist_len.to_string(),
            fmt_duration(d),
            format!("{per_node:.0}"),
        ]);
    }
    print!("{}", t.render());
    check("growth is near-linear in result size", shape_ok);
    println!();
}

// ---------------------------------------------------------------------
// E6 — generation time vs snippet size bound
// ---------------------------------------------------------------------
fn e6_time_vs_size_bound() {
    println!("== E6 · snippet generation time vs. size bound (fixed ~20k-node result) ==");
    let doc = scaled_retailer_db(20_000);
    let extract = Extract::new(&doc);
    let root = scaled_retailer_root(&doc);
    let query = KeywordQuery::parse("texas apparel retailer");
    let result = QueryResult::build(extract.index(), &query, root);
    let mut t = Table::new(["bound (edges)", "edges used", "items covered", "time"]);
    let bounds = [4usize, 8, 16, 32, 64, 100];
    let mut coverages = Vec::new();
    for bound in bounds {
        let config = ExtractConfig::with_bound(bound);
        let out = extract.snippet(&query, &result, &config);
        let d = median_time(5, || {
            std::hint::black_box(extract.snippet(&query, &result, &config));
        });
        coverages.push(out.snippet.coverage());
        t.row([
            bound.to_string(),
            out.snippet.edges.to_string(),
            format!("{}/{}", out.snippet.coverage(), out.ilist.len()),
            fmt_duration(d),
        ]);
    }
    print!("{}", t.render());
    check(
        "coverage grows with the bound (monotone)",
        coverages.windows(2).all(|w| w[0] <= w[1]),
    );
    println!();
}

// ---------------------------------------------------------------------
// E7 — generation time vs number of keywords
// ---------------------------------------------------------------------
fn e7_time_vs_keywords() {
    println!("== E7 · snippet generation time vs. number of query keywords ==");
    let doc = scaled_retailer_db(20_000);
    let extract = Extract::new(&doc);
    let root = scaled_retailer_root(&doc);
    let all = ["retailer", "apparel", "texas", "houston", "man", "casual", "outwear", "store"];
    let mut t = Table::new(["keywords", "ilist items", "time"]);
    for k in 1..=all.len() {
        let query = KeywordQuery::from_keywords(all[..k].to_vec());
        let result = QueryResult::build(extract.index(), &query, root);
        let config = ExtractConfig::with_bound(20);
        let items = extract.ilist(&query, &result, &config).len();
        let d = median_time(5, || {
            std::hint::black_box(extract.snippet(&query, &result, &config));
        });
        t.row([k.to_string(), items.to_string(), fmt_duration(d)]);
    }
    print!("{}", t.render());
    println!();
}

// ---------------------------------------------------------------------
// E8 — greedy vs exact
// ---------------------------------------------------------------------
fn e8_greedy_vs_exact() {
    println!("== E8 · greedy vs. exact coverage (NP-hard optimum on small results) ==");
    let mut t = Table::new([
        "workload", "bound", "greedy", "optimal", "ratio", "greedy time", "exact time",
    ]);
    let mut worst: f64 = 1.0;
    let mut cases: Vec<(&str, Document)> = Vec::new();
    cases.push(("demo-store", retailer::demo_store_db()));
    cases.push(("movies", movies::sample()));
    let small = retailer::RetailerConfig {
        retailers: 2,
        stores_per_retailer: (2, 3),
        clothes_per_store: (2, 5),
        ..Default::default()
    }
    .generate();
    cases.push(("retailer-rand", small));

    for (name, doc) in &cases {
        let extract = Extract::new(doc);
        let engine = Engine::new(doc);
        let query = KeywordQuery::parse(match *name {
            "movies" => "western",
            "retailer-rand" => "retailer apparel",
            _ => "store texas",
        });
        let results = engine.search(&query, Algorithm::XSeek);
        let Some(result) = results.first() else { continue };
        for bound in [4usize, 8, 12, 16] {
            let ilist = extract.ilist(&query, result, &ExtractConfig::default());
            let g_time = median_time(5, || {
                std::hint::black_box(greedy_select(doc, &ilist, result.root, bound));
            });
            let greedy = greedy_select(doc, &ilist, result.root, bound);
            let e_start = Instant::now();
            let exact = exact_select(doc, &ilist, result.root, bound, ExactLimits::default());
            let e_time = e_start.elapsed();
            let Some(exact) = exact else {
                t.row([
                    name.to_string(),
                    bound.to_string(),
                    greedy.coverage().to_string(),
                    "(search cap)".to_string(),
                    "-".to_string(),
                    fmt_duration(g_time),
                    fmt_duration(e_time),
                ]);
                continue;
            };
            let ratio = if exact.coverage() == 0 {
                1.0
            } else {
                greedy.coverage() as f64 / exact.coverage() as f64
            };
            worst = worst.min(ratio);
            t.row([
                name.to_string(),
                bound.to_string(),
                greedy.coverage().to_string(),
                exact.coverage().to_string(),
                format!("{ratio:.2}"),
                fmt_duration(g_time),
                fmt_duration(e_time),
            ]);
        }
    }
    print!("{}", t.render());
    check(
        &format!("greedy stays within 75% of the optimum (worst ratio {worst:.2})"),
        worst >= 0.75,
    );
    println!();
}

// ---------------------------------------------------------------------
// E9 — quality vs baselines
// ---------------------------------------------------------------------
fn e9_quality_vs_baselines() {
    println!("== E9 · snippet quality vs. baselines (user-study proxy) ==");
    let workloads: Vec<(&str, Document, &str)> = vec![
        ("figure1", retailer::figure1_db(), "texas apparel retailer"),
        ("demo-store", retailer::demo_store_db(), "store texas"),
        (
            "movies",
            movies::MoviesConfig { movies: 60, ..Default::default() }.generate(),
            "movie western",
        ),
    ];
    let bound = 10usize;
    let mut t = Table::new([
        "workload", "strategy", "coverage", "weighted", "key", "feat-recall", "annotated",
    ]);
    // Aggregates across workloads, per strategy: (Σweighted, Σkey, count).
    let mut agg: HashMap<&str, (f64, f64, usize)> = HashMap::new();
    for (name, doc, query_str) in &workloads {
        let extract = Extract::new(doc);
        let out = extract.snippets_for_query(query_str, &ExtractConfig::with_bound(bound));
        let baselines: Vec<Box<dyn BaselineStrategy>> =
            vec![Box::new(BfsPrefix), Box::new(PathToMatches), Box::new(TextWindows)];
        let mut rows: Vec<(&str, f64, f64, f64, f64, f64)> = Vec::new();
        let n = out.len().max(1) as f64;
        let mut ex = (0.0, 0.0, 0.0, 0.0, 0.0);
        for s in &out {
            let q = evaluate_snippet(doc, &s.ilist, &s.snippet);
            ex.0 += q.coverage / n;
            ex.1 += q.weighted_coverage / n;
            ex.2 += (q.key_present as usize) as f64 / n;
            ex.3 += q.feature_recall / n;
            ex.4 += q.entity_annotation / n;
        }
        rows.push(("eXtract", ex.0, ex.1, ex.2, ex.3, ex.4));
        for b in &baselines {
            let mut m = (0.0, 0.0, 0.0, 0.0, 0.0);
            for s in &out {
                let content = b.generate(doc, &s.result, bound);
                let q = evaluate_baseline(doc, &s.ilist, &content);
                m.0 += q.coverage / n;
                m.1 += q.weighted_coverage / n;
                m.2 += (q.key_present as usize) as f64 / n;
                m.3 += q.feature_recall / n;
                m.4 += q.entity_annotation / n;
            }
            rows.push((b.name(), m.0, m.1, m.2, m.3, m.4));
        }
        for (strategy, c, w, k, f, a) in rows {
            let e = agg.entry(strategy).or_insert((0.0, 0.0, 0));
            e.0 += w;
            e.1 += k;
            e.2 += 1;
            t.row([
                name.to_string(),
                strategy.to_string(),
                format!("{:.0}%", c * 100.0),
                format!("{:.0}%", w * 100.0),
                format!("{:.0}%", k * 100.0),
                format!("{:.0}%", f * 100.0),
                format!("{:.0}%", a * 100.0),
            ]);
        }
    }
    print!("{}", t.render());
    let score = |s: &str| {
        let (w, k, n) = agg[s];
        (w / n as f64, k / n as f64)
    };
    let (ex_w, ex_k) = score("eXtract");
    let mut wins = true;
    for b in ["bfs-prefix", "match-paths", "text-windows"] {
        let (bw, bk) = score(b);
        wins &= ex_w >= bw && ex_k >= bk;
    }
    check("eXtract ≥ every baseline on weighted coverage and key presence", wins);
    println!();
}

// ---------------------------------------------------------------------
// E10 — index build
// ---------------------------------------------------------------------
fn e10_index_build() {
    println!("== E10 · index build time and size vs. document size (expect ~linear) ==");
    let mut t = Table::new(["doc nodes", "build time", "index KiB", "ns/node"]);
    let mut shape_ok = true;
    let mut prev: Option<(usize, f64)> = None;
    for target in [10_000usize, 50_000, 200_000, 600_000] {
        let doc = AuctionConfig::with_target_nodes(target, 3).generate();
        let nodes = doc.len();
        let d = median_time(3, || {
            std::hint::black_box(XmlIndex::build(&doc));
        });
        let index = XmlIndex::build(&doc);
        if let Some((pn, pt)) = prev {
            let node_ratio = nodes as f64 / pn as f64;
            let time_ratio = d.as_nanos() as f64 / pt;
            shape_ok &= time_ratio < node_ratio * 3.0;
        }
        prev = Some((nodes, d.as_nanos() as f64));
        t.row([
            nodes.to_string(),
            fmt_duration(d),
            (index.memory_footprint() / 1024).to_string(),
            format!("{:.0}", d.as_nanos() as f64 / nodes as f64),
        ]);
    }
    print!("{}", t.render());
    check("index build is near-linear in document size", shape_ok);
    println!();
}

// ---------------------------------------------------------------------
// E11 — search engines
// ---------------------------------------------------------------------
fn e11_search_engines() {
    println!("== E11 · search engine latency: SLCA (ILE vs SE), ELCA, XSeek ==");
    let mut t =
        Table::new(["doc nodes", "query", "slca-ile", "slca-se", "elca", "xseek", "results"]);
    for target in [20_000usize, 100_000, 400_000] {
        let doc = AuctionConfig::with_target_nodes(target, 5).generate();
        let index = XmlIndex::build(&doc);
        let model = EntityModel::analyze(&doc);
        for query_str in ["gold watch", "person houston texas", "item cash painting"] {
            let query = KeywordQuery::parse(query_str);
            let lists: Vec<Vec<_>> =
                query.keywords().iter().map(|k| index.postings(k).to_vec()).collect();
            let ile = median_time(5, || {
                std::hint::black_box(slca_indexed_lookup(&doc, index.dewey_store(), &lists));
            });
            let se = median_time(5, || {
                std::hint::black_box(slca_scan_eager(&doc, index.dewey_store(), &lists));
            });
            let el = median_time(5, || {
                std::hint::black_box(elca_stack(&doc, &lists));
            });
            let xs = median_time(5, || {
                std::hint::black_box(xseek::result_roots(
                    &doc,
                    &index,
                    &model,
                    &query,
                    RootPolicy::Entity,
                ));
            });
            let n_results =
                xseek::result_roots(&doc, &index, &model, &query, RootPolicy::Entity).len();
            t.row([
                doc.len().to_string(),
                query_str.to_string(),
                fmt_duration(ile),
                fmt_duration(se),
                fmt_duration(el),
                fmt_duration(xs),
                n_results.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!("  (expected shape: all grow with document size; ILE wins when one");
    println!("   keyword is rare; ELCA ≥ SLCA cost; XSeek adds lifting on top)");
    println!();
}

// ---------------------------------------------------------------------
// E12 — ablation: dominance normalization vs raw frequency
// ---------------------------------------------------------------------
fn e12_ablation_dominance_normalization() {
    println!("== E12 · ablation: dominance normalization (paper §2.3 argument) ==");
    println!("  The paper: \"though the number of occurrences of feature Houston is");
    println!("  much less than that of children, it should be considered as more");
    println!("  dominant\". Raw-frequency ranking buries Houston; DS surfaces it.");
    let doc = retailer::figure1_db();
    let model = EntityModel::analyze(&doc);
    let bb = retailer::figure1_result_root(&doc);
    let stats = ResultStats::compute(&doc, &model, bb);

    let ds = dominant_features(&doc, &stats);
    let ds_top: Vec<String> = ds
        .iter()
        .filter(|d| !d.trivial)
        .take(6)
        .map(|d| format!("{} ({:.2})", d.value, d.score))
        .collect();
    let raw = features_by_raw_frequency(&doc, &stats);
    let raw_top: Vec<String> = raw
        .iter()
        .take(6)
        .map(|d| format!("{} ({})", d.value, d.score as u64))
        .collect();

    let mut t = Table::new(["rank", "dominance score (paper)", "raw frequency (ablation)"]);
    for i in 0..6 {
        t.row([
            (i + 1).to_string(),
            ds_top.get(i).cloned().unwrap_or_default(),
            raw_top.get(i).cloned().unwrap_or_default(),
        ]);
    }
    print!("{}", t.render());

    let ds_values: Vec<&str> =
        ds.iter().filter(|d| !d.trivial).take(6).map(|d| d.value.as_str()).collect();
    let raw_values: Vec<&str> = raw.iter().take(6).map(|d| d.value.as_str()).collect();
    check("DS ranks Houston first", ds_values.first() == Some(&"Houston"));
    check("raw frequency drops Houston from the top 6", !raw_values.contains(&"Houston"));
    check(
        "raw frequency surfaces the non-dominant `children`-style bulk values",
        raw_values.contains(&"casual") && raw_values.contains(&"man"),
    );
    check(
        "raw top-6 even includes non-dominant `formal`",
        raw_values.contains(&"formal"),
    );
    println!();
}

// ---------------------------------------------------------------------
// E13 — ablation: instance selection policy
// ---------------------------------------------------------------------
fn e13_ablation_instance_policy() {
    println!("== E13 · ablation: cheapest-instance vs first-instance selection (§2.4) ==");
    println!("  The paper: \"we should select instances of each item such that they");
    println!("  are close to each other, so as to occupy a small space\". The ablation");
    println!("  always takes the first instance in document order instead.");
    let doc = extract_bench::scattered_anchor_db();
    let extract = Extract::new(&doc);
    let engine = Engine::new(&doc);
    let query = KeywordQuery::parse("retailer texas bayview");
    let results = engine.search(&query, Algorithm::XSeek);
    check("one query result (the retailer)", results.len() == 1);
    let result = &results[0];
    let ilist = extract.ilist(&query, result, &ExtractConfig::default());
    println!("  IList ({} items): {}", ilist.len(), ilist.display(&doc).join(", "));

    let mut t = Table::new(["bound", "cheapest (paper)", "first-instance", "exact optimum"]);
    let mut separated = false;
    for bound in [6usize, 9, 12, 15, 30] {
        let cheapest = greedy_select_with_policy(
            &doc,
            &ilist,
            result.root,
            bound,
            InstancePolicy::CheapestInstance,
        );
        let first = greedy_select_with_policy(
            &doc,
            &ilist,
            result.root,
            bound,
            InstancePolicy::FirstInstance,
        );
        let exact = exact_select(&doc, &ilist, result.root, bound, ExactLimits::default());
        separated |= cheapest.coverage() > first.coverage();
        t.row([
            bound.to_string(),
            format!("{}/{}", cheapest.coverage(), ilist.len()),
            format!("{}/{}", first.coverage(), ilist.len()),
            exact
                .map(|e| format!("{}/{}", e.coverage(), ilist.len()))
                .unwrap_or_else(|| "(cap)".to_string()),
        ]);
    }
    print!("{}", t.render());
    check("cheapest-instance strictly beats first-instance at tight bounds", separated);
    println!();
}
