//! The PR-2 query-path throughput benchmark.
//!
//! Measures, per corpus (retailer / dblp):
//!
//! * inverted-index construction — flat arena vs the pre-PR `HashMap`
//!   design;
//! * posting lookups — by string on both, plus hash-free `TokenId` hits;
//! * SLCA — Indexed Lookup vs Scan Eager vs the automatic heuristic;
//! * end-to-end query answering — cold (no cache), cached (warm
//!   `SnippetCache`), and threaded (a 4-worker `QuerySession` batch).
//!
//! ```text
//! query_throughput [--json PATH] [--quick]
//! ```
//!
//! `--json PATH` writes the machine-readable payload committed as
//! `BENCH_PR2.json`; `--quick` cuts the sample counts for smoke runs.

use extract_bench::throughput::{run_all, speedups, to_json, Effort};
use extract_bench::{fmt_duration, Table};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut effort = Effort::full();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--quick" => effort = Effort::quick(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: query_throughput [--json PATH] [--quick]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("running query_throughput (samples={})…", effort.samples);
    let results = run_all(effort);

    let mut table = Table::new(["corpus", "scenario", "median/op", "unit"]);
    for r in &results {
        let rendered = if r.unit == "bytes" {
            format!("{:.0} B", r.median_ns)
        } else {
            fmt_duration(Duration::from_nanos(r.median_ns as u64))
        };
        table.row([r.corpus.to_string(), r.scenario.to_string(), rendered, r.unit.to_string()]);
    }
    println!("{}", table.render());

    let mut sp = Table::new(["speedup", "x"]);
    for (name, x) in speedups(&results) {
        sp.row([name, format!("{x:.2}")]);
    }
    println!("{}", sp.render());

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
