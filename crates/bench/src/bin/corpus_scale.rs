//! The PR-3 corpus-scale benchmark.
//!
//! Builds a 200-document mixed corpus (~10^6 nodes) through the streaming
//! path and measures:
//!
//! * corpus construction — label-sharded vs unsharded-arena builds;
//! * **SLCA candidate fan-in** — index entries touched to route the query
//!   mix: sharded doc-directory intersection vs the flat-arena posting
//!   scan (the acceptance metric);
//! * per-document posting extraction with shard-bitmap probing;
//! * end-to-end `QuerySession::answer_corpus` batches — cold vs cached.
//!
//! ```text
//! corpus_scale [--json PATH] [--quick]
//! ```
//!
//! `--json PATH` writes the machine-readable payload committed as
//! `BENCH_PR3.json`; `--quick` shrinks the corpus and sample counts.

use std::time::Duration;

use extract_bench::corpus_scale::{corpus_config, quick_corpus_config, reductions, run_all, to_json};
use extract_bench::throughput::Effort;
use extract_bench::{fmt_duration, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut effort = Effort::full();
    let mut cfg = corpus_config();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--quick" => {
                effort = Effort::quick();
                cfg = quick_corpus_config();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: corpus_scale [--json PATH] [--quick]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "running corpus_scale ({} docs × ~{} nodes, samples={})…",
        cfg.documents, cfg.target_nodes_per_doc, effort.samples
    );
    let results = run_all(&cfg, effort);

    let mut table = Table::new(["corpus", "scenario", "median/op", "unit"]);
    for r in &results {
        let rendered = match r.unit {
            "bytes" => format!("{:.1} MiB", r.median_ns / (1024.0 * 1024.0)),
            "count" | "entries" => format!("{:.0}", r.median_ns),
            _ => fmt_duration(Duration::from_nanos(r.median_ns as u64)),
        };
        table.row([r.corpus.to_string(), r.scenario.to_string(), rendered, r.unit.to_string()]);
    }
    println!("{}", table.render());

    let mut sp = Table::new(["reduction", "x"]);
    for (name, x) in reductions(&results) {
        sp.row([name, format!("{x:.2}")]);
    }
    println!("{}", sp.render());

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
