//! The serve-throughput benchmark: loopback load generation against the
//! live daemon (see `extract_bench::serve_throughput` for the
//! scenarios), fresh-connection and persistent keep-alive client modes
//! side by side.
//!
//! ```text
//! serve_throughput [--json PATH] [--quick] [--check-keepalive] [--check-obs-overhead]
//! ```
//!
//! `--json PATH` writes the machine-readable payload committed as
//! `BENCH_PR5.json`; `--quick` shrinks the corpus and request counts;
//! `--check-keepalive` runs only the deterministic connection-reuse
//! probe; `--check-obs-overhead` runs only the cache-hot
//! instrumentation-overhead A/B guard (both are CI gates, exiting
//! non-zero on failure).

use std::time::Duration;

use extract_bench::serve_throughput::{
    check_keepalive, check_obs_overhead, derived, full_workload, quick_workload, run_all,
    to_json,
};
use extract_bench::{fmt_duration, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut workload = full_workload();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--quick" => workload = quick_workload(),
            "--check-keepalive" => {
                std::process::exit(if check_keepalive() { 0 } else { 1 });
            }
            "--check-obs-overhead" => {
                std::process::exit(if check_obs_overhead() { 0 } else { 1 });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: serve_throughput [--json PATH] [--quick] \
                     [--check-keepalive] [--check-obs-overhead]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "running serve_throughput ({} docs × ~{} nodes, {}×{} requests)…",
        workload.documents,
        workload.target_nodes_per_doc,
        workload.clients,
        workload.requests_per_client
    );
    let results = run_all(&workload);

    let mut table = Table::new(["corpus", "scenario", "value", "unit"]);
    for r in &results {
        let rendered = match r.unit {
            "pct" => format!("{:.1} %", r.median_ns),
            _ => fmt_duration(Duration::from_nanos(r.median_ns as u64)),
        };
        table.row([r.corpus.to_string(), r.scenario.to_string(), rendered, r.unit.to_string()]);
    }
    println!("{}", table.render());

    let mut dt = Table::new(["derived", "value"]);
    for (name, x) in derived(&results) {
        dt.row([name, format!("{x:.2}")]);
    }
    println!("{}", dt.render());

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
