//! The `corpus_scale` workload (PR 3): streaming corpus builds, sharded vs
//! unsharded SLCA candidate fan-in, and corpus query throughput over a
//! DBLP-scale generated collection (200 documents, ~10^6 nodes).
//!
//! Shared by the `corpus_scale` binary (which emits `BENCH_PR3.json`) and
//! the Criterion bench of the same name, so both measure the same work.

use std::time::Instant;

use extract::prelude::*;
use extract_corpus::{CorpusOptions, TokenId};
use extract_datagen::corpus::CorpusConfig;

use crate::throughput::{Effort, ScenarioResult};
use crate::median_time;

/// The corpus shape of the committed numbers: 200 mixed-flavour documents,
/// ~5.4k nodes each (≥ 10^6 total), matching the acceptance test in
/// `tests/corpus.rs`.
pub fn corpus_config() -> CorpusConfig {
    CorpusConfig { documents: 200, target_nodes_per_doc: 5_400, seed: 0xBEEF }
}

/// A scaled-down shape for smoke runs and the Criterion registration.
pub fn quick_corpus_config() -> CorpusConfig {
    CorpusConfig { documents: 48, target_nodes_per_doc: 2_000, seed: 0xBEEF }
}

/// Build a corpus from `cfg` through the streaming path.
pub fn build_corpus(cfg: &CorpusConfig, max_label_shards: usize) -> Corpus {
    let mut b = CorpusBuilder::with_options(CorpusOptions {
        max_label_shards,
        ..Default::default()
    });
    for (name, doc) in cfg.documents() {
        b.add_parsed(&name, doc);
    }
    b.finish()
}

/// Resolve a query's keywords against a corpus (`None` if any keyword is
/// absent corpus-wide — candidate generation short-circuits to empty).
fn resolve(corpus: &Corpus, query: &str) -> Option<Vec<TokenId>> {
    let q = KeywordQuery::parse(query);
    q.keywords().iter().map(|k| corpus.postings().token_id(k)).collect()
}

/// Run every scenario of the corpus workload. `effort` controls sample
/// counts; the corpus shape is fixed by `cfg`.
pub fn run_all(cfg: &CorpusConfig, effort: Effort) -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    let mut push = |scenario: &'static str, median_ns: f64, unit: &'static str| {
        out.push(ScenarioResult { corpus: "mixed", scenario, median_ns, unit });
    };

    // -- Streaming build: generation excluded, sharded vs unsharded. ------
    // Documents are cloned *outside* the timed region (add_parsed takes
    // ownership), so the timed work is exactly the fold + finish of the
    // streaming build, not arena clones.
    let docs: Vec<(String, Document)> = cfg.documents().collect();
    let build = |max_shards: usize, pre_cloned: Vec<(String, Document)>| {
        let t = Instant::now();
        let mut b = CorpusBuilder::with_options(CorpusOptions {
            max_label_shards: max_shards,
            ..Default::default()
        });
        for (name, doc) in pre_cloned {
            b.add_parsed(&name, doc);
        }
        (b.finish(), t.elapsed())
    };
    let (sharded, t_sharded_build) = build(extract_corpus::MAX_LABEL_SHARDS, docs.clone());
    push("corpus_build_sharded", t_sharded_build.as_nanos() as f64, "build");
    let (unsharded, t_unsharded_build) = build(0, docs.clone());
    push("corpus_build_unsharded", t_unsharded_build.as_nanos() as f64, "build");
    push("corpus_total_nodes", sharded.total_nodes() as f64, "count");
    push("corpus_total_postings", sharded.postings().total_postings() as f64, "count");
    push("corpus_shards", sharded.postings().shard_count() as f64, "count");
    push(
        "corpus_memory_footprint",
        sharded.memory_footprint() as f64,
        "bytes",
    );

    // -- Candidate fan-in: sharded directory routing vs flat-arena scan. --
    // The acceptance metric: index entries touched to answer "which
    // documents must SLCA run on?" for the whole query mix.
    let queries = CorpusConfig::query_mix();
    let resolved: Vec<Vec<TokenId>> =
        queries.iter().filter_map(|q| resolve(&sharded, q)).collect();
    let resolved_unsharded: Vec<Vec<TokenId>> =
        queries.iter().filter_map(|q| resolve(&unsharded, q)).collect();
    let mut candidates = Vec::new();
    let mut fanin_sharded = FanIn::default();
    for ids in &resolved {
        sharded.postings().candidate_docs(ids, &mut candidates, &mut fanin_sharded);
    }
    let mut fanin_scan = FanIn::default();
    for ids in &resolved_unsharded {
        unsharded
            .postings()
            .candidate_docs_by_scan(ids, &mut candidates, &mut fanin_scan);
    }
    push("candidate_fanin_sharded", fanin_sharded.total() as f64, "entries");
    push("candidate_fanin_unsharded_scan", fanin_scan.total() as f64, "entries");

    // Wall-clock for the same routing work.
    let per_mix = effort.inner.max(1) as f64;
    let t_sharded = median_time(effort.samples, || {
        for _ in 0..effort.inner.max(1) {
            let mut f = FanIn::default();
            for ids in &resolved {
                sharded.postings().candidate_docs(ids, &mut candidates, &mut f);
            }
            std::hint::black_box(&candidates);
        }
    });
    push("candidate_time_sharded", t_sharded.as_nanos() as f64 / per_mix, "mix");
    let t_scan = median_time(effort.samples, || {
        for _ in 0..effort.inner.max(1) {
            let mut f = FanIn::default();
            for ids in &resolved_unsharded {
                unsharded.postings().candidate_docs_by_scan(ids, &mut candidates, &mut f);
            }
            std::hint::black_box(&candidates);
        }
    });
    push("candidate_time_unsharded_scan", t_scan.as_nanos() as f64 / per_mix, "mix");

    // -- Per-document posting extraction: shard-bitmap probing. -----------
    let mut nodes = Vec::new();
    let mut probe_fanin = FanIn::default();
    let t_probe = median_time(effort.samples, || {
        for ids in &resolved {
            let mut docs = Vec::new();
            let mut f = FanIn::default();
            sharded.postings().candidate_docs(ids, &mut docs, &mut f);
            for &d in docs.iter().take(8) {
                for &t in ids {
                    sharded.postings().postings_in_doc(t, d, &mut nodes, &mut probe_fanin);
                    std::hint::black_box(nodes.len());
                }
            }
        }
    });
    push("postings_in_doc_probe", t_probe.as_nanos() as f64, "mix");
    push("probe_shards_probed", probe_fanin.shards_probed as f64, "count");
    push("probe_shards_skipped", probe_fanin.shards_skipped as f64, "count");

    // -- End-to-end corpus serving: cold vs routed-and-cached. ------------
    // Selective queries keep cold result sets bounded; the broad "name"
    // queries are exercised by the routing scenarios above. Cold and
    // cached are both measured with a **serial** loop so their ratio is
    // consistent (a 4-worker batch would deflate cold per-query cost by
    // the host's effective parallelism); the worker pool gets its own
    // scenario.
    let selective: Vec<&str> =
        queries.iter().copied().filter(|q| !q.contains("name")).collect();
    let config = ExtractConfig::with_bound(8);
    let cold_session = QuerySession::from_corpus_with_options(&sharded, 1, 0);
    let t = Instant::now();
    let mut results_total = 0usize;
    for q in &selective {
        results_total += cold_session.answer_corpus(q, &config).len();
    }
    push(
        "corpus_query_cold",
        t.elapsed().as_nanos() as f64 / selective.len() as f64,
        "query",
    );
    push("corpus_results_total", results_total as f64, "count");
    push("engines_built_selective", cold_session.engines_built() as f64, "count");

    let batch_session = QuerySession::from_corpus_with_options(&sharded, 4, 0);
    let t = Instant::now();
    std::hint::black_box(batch_session.answer_corpus_batch(&selective, &config));
    push(
        "corpus_query_cold_batch_x4",
        t.elapsed().as_nanos() as f64 / selective.len() as f64,
        "query",
    );

    let warm_session = QuerySession::from_corpus_with_options(&sharded, 1, 4096);
    for q in &selective {
        warm_session.answer_corpus(q, &config); // warm the caches serially
    }
    let cached = median_time(effort.samples, || {
        for q in &selective {
            std::hint::black_box(warm_session.answer_corpus(q, &config));
        }
    });
    push(
        "corpus_query_cached",
        cached.as_nanos() as f64 / selective.len() as f64,
        "query",
    );

    out
}

/// Derived ratios the PR's acceptance criteria reference.
pub fn reductions(results: &[ScenarioResult]) -> Vec<(String, f64)> {
    let get = |scenario: &str| {
        results
            .iter()
            .find(|r| r.corpus == "mixed" && r.scenario == scenario)
            .map(|r| r.median_ns)
    };
    let mut out = Vec::new();
    let pairs = [
        ("candidate_fanin_reduction", "candidate_fanin_unsharded_scan", "candidate_fanin_sharded"),
        ("candidate_time_reduction", "candidate_time_unsharded_scan", "candidate_time_sharded"),
        ("cache_hit_vs_cold", "corpus_query_cold", "corpus_query_cached"),
    ];
    for (name, base, new) in pairs {
        if let (Some(b), Some(n)) = (get(base), get(new)) {
            if n > 0.0 {
                out.push((format!("mixed/{name}"), b / n));
            }
        }
    }
    out
}

/// Serialize results + reductions as the committed `BENCH_PR3.json`
/// payload.
pub fn to_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"corpus_scale\",\n  \"pr\": 3,\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"scenario\": \"{}\", \"median_ns_per_op\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.corpus,
            r.scenario,
            r.median_ns,
            r.unit,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"speedups\": {\n");
    let sp = reductions(results);
    for (i, (name, x)) in sp.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {x:.2}{}\n",
            if i + 1 == sp.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_produces_consistent_scenarios() {
        let cfg = CorpusConfig { documents: 9, target_nodes_per_doc: 400, seed: 3 };
        let results = run_all(&cfg, Effort::quick());
        let names: Vec<&str> = results.iter().map(|r| r.scenario).collect();
        for expected in [
            "corpus_build_sharded",
            "candidate_fanin_sharded",
            "candidate_fanin_unsharded_scan",
            "corpus_query_cold",
            "corpus_query_cold_batch_x4",
            "corpus_query_cached",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
        let get = |s: &str| results.iter().find(|r| r.scenario == s).unwrap().median_ns;
        // The directory path must beat the flat scan even on small corpora
        // with realistic (generator) documents.
        assert!(
            get("candidate_fanin_sharded") < get("candidate_fanin_unsharded_scan"),
            "sharded {} vs scan {}",
            get("candidate_fanin_sharded"),
            get("candidate_fanin_unsharded_scan"),
        );
        let json = to_json(&results);
        assert!(json.contains("\"mixed/candidate_fanin_reduction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
