//! Benchmark harness utilities: controlled workloads, timing helpers and
//! table rendering shared by the `experiments` binary and the Criterion
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_scale;
pub mod router_throughput;
pub mod serve_throughput;
pub mod throughput;

use std::time::{Duration, Instant};

use extract_datagen::vocab;
use extract_xml::{DocBuilder, Document, NodeId};

/// Build a retailer database containing **one** big retailer whose subtree
/// (the query result of "texas apparel retailer") has roughly
/// `target_result_nodes` nodes, plus a distractor. Used by E5–E7 where the
/// *result* size must be the controlled variable.
pub fn scaled_retailer_db(target_result_nodes: usize) -> Document {
    // One store ≈ 9 nodes of scaffolding; one clothes ≈ 7 nodes.
    let clothes_total = (target_result_nodes.saturating_sub(40) / 7).max(4);
    let stores = (clothes_total / 100).clamp(1, 50);
    let per_store = clothes_total / stores;

    let mut b = DocBuilder::new("retailers");
    b.reserve(target_result_nodes + 64);
    b.begin("retailer");
    b.leaf("name", "Brook Brothers");
    b.leaf("product", "apparel");
    let mut serial = 0usize;
    for s in 0..stores {
        b.begin("store");
        b.leaf("name", &format!("{} #{s}", vocab::STORE_NAMES[s % vocab::STORE_NAMES.len()]));
        b.leaf("state", "Texas");
        // Skewed cities: 60% Houston.
        b.leaf("city", if s % 5 < 3 { "Houston" } else { vocab::CITIES[s % vocab::CITIES.len()] });
        b.begin("merchandises");
        for _ in 0..per_store {
            serial += 1;
            b.begin("clothes");
            b.leaf("fitting", vocab::FITTINGS[weighted3(serial)]);
            b.leaf("situation", if serial % 10 < 7 { "casual" } else { "formal" });
            b.leaf("category", vocab::CATEGORIES[zipfish(serial, vocab::CATEGORIES.len())]);
            b.end();
        }
        b.end();
        b.end();
    }
    b.end();

    // Distractor retailer so `retailer` postings are not a single node.
    b.begin("retailer");
    b.leaf("name", "Circuit Town");
    b.leaf("product", "electronics");
    b.begin("store");
    b.leaf("name", "Northgate Solo");
    b.leaf("state", "Ohio");
    b.leaf("city", "Chicago");
    b.end();
    b.end();
    b.build()
}

/// 60/30/10 split over the three fittings.
fn weighted3(i: usize) -> usize {
    match i % 10 {
        0..=5 => 0,
        6..=8 => 1,
        _ => 2,
    }
}

/// Deterministic Zipf-ish rank: rank 0 gets ~1/2 the mass, rank 1 ~1/6…
fn zipfish(i: usize, n: usize) -> usize {
    let x = i % 60;
    let mut acc = 0usize;
    for r in 0..n {
        acc += 30 / (r + 1).min(30);
        if x < acc {
            return r;
        }
    }
    i % n
}

/// The Brook Brothers root of [`scaled_retailer_db`].
pub fn scaled_retailer_root(doc: &Document) -> NodeId {
    doc.elements_with_label("retailer")[0]
}

/// An adversarial workload for the instance-policy ablation (E13): the
/// query result is a retailer whose *anchor* store ("Bayview", matched by
/// the query keywords) carries one clothes with **all six** dominant
/// attribute values together, while each value's *first* occurrence in
/// document order sits alone in a separate scatter store. The paper's
/// cheapest-instance greedy clusters everything at the anchor (1 edge per
/// feature); the first-instance ablation pays a full store path (4 edges)
/// per feature and runs out of budget.
pub fn scattered_anchor_db() -> Document {
    // Six attribute types, each with a dominant value v_t (count 2: one
    // scatter + one anchor occurrence) and two filler values (count 1) so
    // DS(v_t) = 2·3/4 = 1.5 > 1 and fillers are 0.75.
    const ATTRS: [&str; 6] = ["category", "fitting", "situation", "fabric", "color", "brand"];
    const DOMINANT: [&str; 6] = ["vcat", "vfit", "vsit", "vfab", "vcol", "vbra"];

    let mut b = DocBuilder::new("retailers");
    b.begin("retailer");
    b.leaf("name", "Brook Brothers");
    b.leaf("product", "apparel");

    // Scatter stores: store t holds the first occurrence of DOMINANT[t],
    // plus one filler occurrence of the *next* attribute's type so every
    // type reaches N=4, D=3.
    for (t, (&attr, &val)) in ATTRS.iter().zip(DOMINANT.iter()).enumerate() {
        b.begin("store");
        b.leaf("name", &format!("Scatter {t}"));
        b.begin("merchandises");
        b.begin("clothes");
        b.leaf(attr, val);
        // Fillers for the two neighbouring types.
        let n1 = (t + 1) % ATTRS.len();
        let n2 = (t + 2) % ATTRS.len();
        b.leaf(ATTRS[n1], &format!("filler-{t}-a"));
        b.leaf(ATTRS[n2], &format!("filler-{t}-b"));
        b.end();
        b.end();
        b.end();
    }

    // The anchor store: matched by the query, carries every dominant value
    // on one clothes.
    b.begin("store");
    b.leaf("name", "Bayview");
    b.leaf("state", "Texas");
    b.begin("merchandises");
    b.begin("clothes");
    for (&attr, &val) in ATTRS.iter().zip(DOMINANT.iter()) {
        b.leaf(attr, val);
    }
    b.end();
    b.end();
    b.end();

    b.end(); // retailer
    // Distractor retailer.
    b.begin("retailer");
    b.leaf("name", "Other");
    b.leaf("product", "electronics");
    b.begin("store");
    b.leaf("name", "Elsewhere");
    b.leaf("state", "Ohio");
    b.end();
    b.end();
    b.build()
}

/// Median wall-clock time of `f` over `iters` runs (after one warmup).
pub fn median_time<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Format a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A fixed-width text table writer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - c.chars().count();
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_retailer_hits_target_sizes() {
        for target in [2_000usize, 10_000, 50_000] {
            let doc = scaled_retailer_db(target);
            let root = scaled_retailer_root(&doc);
            let actual = doc.subtree_size(root);
            assert!(
                actual > target / 2 && actual < target * 2,
                "target {target}: got {actual}"
            );
        }
    }

    #[test]
    fn scaled_retailer_has_dominant_values() {
        let doc = scaled_retailer_db(10_000);
        let houston = doc
            .elements_with_label("city")
            .iter()
            .filter(|&&c| doc.text_of(c) == Some("Houston"))
            .count();
        let cities = doc.elements_with_label("city").len();
        assert!(houston * 2 > cities, "Houston should dominate: {houston}/{cities}");
    }

    #[test]
    fn scattered_anchor_db_is_valid_and_shaped() {
        let doc = scattered_anchor_db();
        doc.debug_validate().unwrap();
        // 6 scatter + 1 anchor + 1 distractor store.
        assert_eq!(doc.elements_with_label("store").len(), 8);
        // Each dominant value occurs exactly twice.
        for val in ["vcat", "vfit", "vsit", "vfab", "vcol", "vbra"] {
            let count = doc
                .all_nodes()
                .filter(|&n| doc.node(n).is_text() && doc.node(n).text() == Some(val))
                .count();
            assert_eq!(count, 2, "{val}");
        }
    }

    #[test]
    fn median_time_is_sane() {
        let d = median_time(3, || {
            std::hint::black_box(42);
        });
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["col", "value"]);
        t.row(["a", "1"]);
        t.row(["long-cell", "2"]);
        let s = t.render();
        assert!(s.contains("col"), "{s}");
        assert!(s.lines().count() == 4, "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
