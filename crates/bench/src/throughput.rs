//! The `query_throughput` workload (PR 2): cold vs cached vs threaded
//! query answering over the datagen retailer/dblp corpora, plus an
//! apples-to-apples comparison of the arena-backed inverted index against
//! the pre-arena `HashMap<String, Vec<NodeId>>` design.
//!
//! Shared by the `query_throughput` binary (which emits `BENCH_PR2.json`)
//! and the Criterion bench of the same name, so both measure the exact
//! same work.

use std::collections::HashMap;
use std::time::Duration;

use extract::prelude::*;
use extract_datagen::dblp::DblpConfig;
use extract_datagen::retailer::RetailerConfig;
use extract_index::{tokens_of, InvertedIndex};
use extract_search::slca::{
    slca_auto_with, slca_indexed_lookup_with, slca_scan_eager_with, SlcaScratch,
};
use extract_xml::Document;

use crate::median_time;

/// The pre-PR-2 inverted index design, kept verbatim as the cold-path
/// baseline: per-token `Vec` posting lists behind a string-keyed hash map,
/// with the linear-scan per-element dedup.
#[derive(Debug, Default)]
pub struct HashMapIndex {
    postings: HashMap<String, Vec<extract_xml::NodeId>>,
}

impl HashMapIndex {
    /// Build with the old algorithm (linear `seen.contains` dedup).
    pub fn build(doc: &Document) -> HashMapIndex {
        let mut postings: HashMap<String, Vec<extract_xml::NodeId>> = HashMap::new();
        let mut seen: Vec<String> = Vec::with_capacity(8);
        for node in doc.all_nodes() {
            let n = doc.node(node);
            if !n.is_element() {
                continue;
            }
            seen.clear();
            for tok in tokens_of(doc.resolve(n.label())) {
                if !seen.contains(&tok) {
                    seen.push(tok);
                }
            }
            for &child in n.children() {
                if let Some(text) = doc.node(child).text() {
                    for tok in tokens_of(text) {
                        if !seen.contains(&tok) {
                            seen.push(tok);
                        }
                    }
                }
            }
            for tok in seen.drain(..) {
                postings.entry(tok).or_default().push(node);
            }
        }
        HashMapIndex { postings }
    }

    /// Posting list for `token` (old lookup path: hash the string).
    pub fn postings(&self, token: &str) -> &[extract_xml::NodeId] {
        self.postings.get(token).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterate over `(token, postings)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[extract_xml::NodeId])> {
        self.postings.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// One corpus of the workload: a generated document plus a realistic
/// keyword-query mix (rare anchors, broad scans, misses).
pub struct Corpus {
    /// Corpus name (`retailer` / `dblp`).
    pub name: &'static str,
    /// The generated document.
    pub doc: Document,
    /// The query mix.
    pub queries: Vec<&'static str>,
}

/// The retailer workload corpus.
pub fn retailer_corpus() -> Corpus {
    let doc = RetailerConfig {
        retailers: 50,
        stores_per_retailer: (3, 8),
        clothes_per_store: (10, 40),
        category_skew: 1.0,
        seed: 0xEB2,
    }
    .generate();
    Corpus {
        name: "retailer",
        doc,
        queries: vec![
            "texas apparel retailer",
            "houston jeans",
            "store texas",
            "woman outwear",
            "retailer clothes casual",
            "gap ohio",
            "man formal shirts",
            "zzz missing everywhere",
        ],
    }
}

/// The dblp workload corpus.
pub fn dblp_corpus() -> Corpus {
    let doc = DblpConfig {
        papers: 6_000,
        authors_per_paper: (1, 4),
        venue_skew: 1.2,
        seed: 0xDB2,
    }
    .generate();
    Corpus {
        name: "dblp",
        doc,
        queries: vec![
            "keyword search xml",
            "paper sigmod",
            "author vldb",
            "snippet ranking",
            "title semantics",
            "efficient holistic year",
            "venue icde author",
            "zzz missing everywhere",
        ],
    }
}

/// Build both workload corpora.
pub fn corpora() -> Vec<Corpus> {
    vec![retailer_corpus(), dblp_corpus()]
}

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Corpus name.
    pub corpus: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Median nanoseconds per operation.
    pub median_ns: f64,
    /// What one operation is (`build`, `lookup`, `query`).
    pub unit: &'static str,
}

/// How many timed repetitions each scenario runs.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Median-of-N samples per scenario.
    pub samples: usize,
    /// Inner repetitions per sample for sub-microsecond operations.
    pub inner: usize,
}

impl Effort {
    /// The committed-numbers configuration.
    pub fn full() -> Effort {
        Effort { samples: 15, inner: 4 }
    }

    /// A fast smoke configuration for CI-adjacent runs.
    pub fn quick() -> Effort {
        Effort { samples: 5, inner: 1 }
    }
}

/// Cache capacity used by the cached/threaded scenarios: large enough to
/// hold the full working set (heavy queries return thousands of results,
/// one cache entry each).
pub const CACHE_CAPACITY: usize = 32_768;

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// Run every scenario of the throughput workload on one corpus.
pub fn run_corpus(corpus: &Corpus, effort: Effort) -> Vec<ScenarioResult> {
    let doc = &corpus.doc;
    let queries = &corpus.queries;
    let mut out = Vec::new();
    let mut push = |scenario: &'static str, median_ns: f64, unit: &'static str| {
        out.push(ScenarioResult { corpus: corpus.name, scenario, median_ns, unit });
    };

    // -- Index construction: arena vs the pre-PR HashMap design. ---------
    let build_arena = median_time(effort.samples, || {
        std::hint::black_box(InvertedIndex::build(doc));
    });
    push("index_build_arena", ns(build_arena), "build");
    let build_hashmap = median_time(effort.samples, || {
        std::hint::black_box(HashMapIndex::build(doc));
    });
    push("index_build_hashmap", ns(build_hashmap), "build");

    // -- Posting lookups: string-keyed on both, id-keyed on the arena. ----
    let index = XmlIndex::build(doc);
    let hashmap = HashMapIndex::build(doc);
    let keywords: Vec<String> = queries
        .iter()
        .flat_map(|q| KeywordQuery::parse(q).keywords().to_vec())
        .collect();
    let reps = 2_000 * effort.inner;
    let lookups = (reps * keywords.len()) as f64;
    let lookup_arena = median_time(effort.samples, || {
        for _ in 0..reps {
            for k in &keywords {
                std::hint::black_box(index.postings(k));
            }
        }
    });
    push("postings_lookup_arena", ns(lookup_arena) / lookups, "lookup");
    // Only resolvable keywords have an id; divide by the lookups actually
    // performed (misses are exercised by the string scenarios above).
    let ids: Vec<extract_index::TokenId> =
        keywords.iter().filter_map(|k| index.token_id(k)).collect();
    let id_lookups = (reps * ids.len()) as f64;
    let lookup_by_id = median_time(effort.samples, || {
        for _ in 0..reps {
            for &id in &ids {
                std::hint::black_box(index.postings_by_id(id));
            }
        }
    });
    push("postings_lookup_token_id", ns(lookup_by_id) / id_lookups, "lookup");
    let lookup_hashmap = median_time(effort.samples, || {
        for _ in 0..reps {
            for k in &keywords {
                std::hint::black_box(hashmap.postings(k));
            }
        }
    });
    push("postings_lookup_hashmap", ns(lookup_hashmap) / lookups, "lookup");

    // -- SLCA: the three eager variants over the whole query mix. ---------
    let parsed: Vec<KeywordQuery> =
        queries.iter().map(|q| KeywordQuery::parse(q)).collect();
    let per_query = (parsed.len() * effort.inner) as f64;
    let mut scratch = SlcaScratch::new();
    let mut roots = Vec::new();
    let mut slca_pass = |which: &'static str| {
        let scratch = &mut scratch;
        let roots = &mut roots;
        let d = median_time(effort.samples, || {
            for _ in 0..effort.inner {
                for q in &parsed {
                    let lists: Vec<&[NodeId]> =
                        q.keywords().iter().map(|k| index.postings(k)).collect();
                    match which {
                        "ile" => slca_indexed_lookup_with(
                            doc,
                            index.dewey_store(),
                            &lists,
                            scratch,
                            roots,
                        ),
                        "se" => slca_scan_eager_with(
                            doc,
                            index.dewey_store(),
                            &lists,
                            scratch,
                            roots,
                        ),
                        _ => slca_auto_with(doc, index.dewey_store(), &lists, scratch, roots),
                    }
                    std::hint::black_box(roots.len());
                }
            }
        });
        ns(d) / per_query
    };
    let ile = slca_pass("ile");
    let se = slca_pass("se");
    let auto = slca_pass("auto");
    push("slca_indexed_lookup", ile, "query");
    push("slca_scan_eager", se, "query");
    push("slca_auto", auto, "query");

    // The pre-PR root computation, end to end: string-hashed lookups on
    // the HashMap index, per-query list copies, always Indexed Lookup,
    // fresh buffers per call.
    let prepr = median_time(effort.samples, || {
        for _ in 0..effort.inner {
            for q in &parsed {
                let lists: Vec<Vec<NodeId>> = q
                    .keywords()
                    .iter()
                    .map(|k| hashmap.postings(k).to_vec())
                    .collect();
                std::hint::black_box(extract_search::slca::slca_indexed_lookup(
                    doc,
                    index.dewey_store(),
                    &lists,
                ));
            }
        }
    });
    push("slca_prepr_path", ns(prepr) / per_query, "query");

    // -- End-to-end: cold vs cached vs threaded. --------------------------
    let config = ExtractConfig::with_bound(10);
    let extract = Extract::new(doc);
    let n_queries = queries.len() as f64;
    let cold = median_time(effort.samples, || {
        for q in queries {
            std::hint::black_box(extract.snippets_for_query(q, &config));
        }
    });
    push("query_cold", ns(cold) / n_queries, "query");

    let session = QuerySession::with_options(doc, 4, CACHE_CAPACITY);
    for q in queries {
        session.answer(q, &config); // warm the cache
    }
    let cached = median_time(effort.samples, || {
        for q in queries {
            std::hint::black_box(session.answer(q, &config));
        }
    });
    push("query_cached", ns(cached) / n_queries, "query");

    // Threaded: isolate the worker pool's contribution by disabling both
    // cache levels (capacity 0), so every query in the batch is computed
    // in full, concurrently. Comparing against query_cold measures pure
    // parallel speedup; cache benefits are reported separately above.
    let batch: Vec<&str> = queries
        .iter()
        .cycle()
        .take(queries.len() * 4)
        .copied()
        .collect();
    let threaded_session = QuerySession::with_options(doc, 4, 0);
    threaded_session.answer_batch(&batch, &config); // warm allocators/caches of the OS
    let threaded = median_time(effort.samples, || {
        std::hint::black_box(threaded_session.answer_batch(&batch, &config));
    });
    push("query_threaded_x4", ns(threaded) / batch.len() as f64, "query");

    out
}

/// Run the whole workload.
pub fn run_all(effort: Effort) -> Vec<ScenarioResult> {
    corpora().iter().flat_map(|c| run_corpus(c, effort)).collect()
}

/// Derived speedups the PR's acceptance criteria reference.
pub fn speedups(results: &[ScenarioResult]) -> Vec<(String, f64)> {
    let get = |corpus: &str, scenario: &str| {
        results
            .iter()
            .find(|r| r.corpus == corpus && r.scenario == scenario)
            .map(|r| r.median_ns)
    };
    let mut out = Vec::new();
    for corpus in ["retailer", "dblp"] {
        let pairs = [
            ("cache_hit_vs_cold", "query_cold", "query_cached"),
            ("threaded_vs_cold", "query_cold", "query_threaded_x4"),
            ("slca_cold_path_vs_prepr", "slca_prepr_path", "slca_auto"),
            ("arena_build_vs_hashmap", "index_build_hashmap", "index_build_arena"),
            ("arena_lookup_vs_hashmap", "postings_lookup_hashmap", "postings_lookup_arena"),
            (
                "token_id_lookup_vs_hashmap",
                "postings_lookup_hashmap",
                "postings_lookup_token_id",
            ),
        ];
        for (name, base, new) in pairs {
            if let (Some(b), Some(n)) = (get(corpus, base), get(corpus, new)) {
                if n > 0.0 {
                    out.push((format!("{corpus}/{name}"), b / n));
                }
            }
        }
    }
    out
}

/// Serialize results + speedups as the committed `BENCH_PR2.json` payload.
pub fn to_json(results: &[ScenarioResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"query_throughput\",\n  \"pr\": 2,\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"scenario\": \"{}\", \"median_ns_per_op\": {:.1}, \"unit\": \"{}\"}}{}\n",
            r.corpus,
            r.scenario,
            r.median_ns,
            r.unit,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"speedups\": {\n");
    let sp = speedups(results);
    for (i, (name, x)) in sp.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {x:.2}{}\n",
            if i + 1 == sp.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_reference_agrees_with_arena_index() {
        let corpus = &retailer_corpus();
        let arena = InvertedIndex::build(&corpus.doc);
        let hashmap = HashMapIndex::build(&corpus.doc);
        for q in &corpus.queries {
            for k in KeywordQuery::parse(q).keywords() {
                assert_eq!(arena.postings(k), hashmap.postings(k), "keyword {k}");
            }
        }
    }

    #[test]
    fn json_payload_is_well_formed_enough() {
        let results = vec![
            ScenarioResult {
                corpus: "retailer",
                scenario: "query_cold",
                median_ns: 1234.5,
                unit: "query",
            },
            ScenarioResult {
                corpus: "retailer",
                scenario: "query_cached",
                median_ns: 123.4,
                unit: "query",
            },
        ];
        let json = to_json(&results);
        assert!(json.contains("\"query_cold\""));
        assert!(json.contains("\"retailer/cache_hit_vs_cold\": 10.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
