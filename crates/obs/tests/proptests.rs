//! Property tests pinning the histogram contract (ISSUE 9 satellite):
//! every recorded value lands in the bucket that reports it, merged
//! snapshots are exactly the histogram of the combined sample sets, and
//! quantile estimates obey the documented log₂ error bound
//! `v ≤ estimate < 2·v` (with `v = 0 → estimate = 1`).

use extract_obs::hist::{bucket_index, bucket_upper_bound, Histogram, Snapshot};
use proptest::prelude::*;

/// Mixed magnitudes: small counts, realistic nanosecond latencies, and
/// values near the top buckets.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![0u64..16, 1_000u64..100_000_000, (u64::MAX / 4)..u64::MAX],
        1..200,
    )
}

/// The true empirical `q`-quantile: the sample of rank `ceil(q·n)`
/// (1-based, clamped), matching `Snapshot::quantile`'s rank rule.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Recording is bucket-faithful: each value falls inside the range
    /// of the bucket that counts it, and nothing is lost or duplicated.
    #[test]
    fn recorded_values_fall_in_their_reported_bucket(values in samples()) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        // Per-bucket counts match a by-hand classification…
        let mut expected = [0u64; 64];
        for &v in &values {
            expected[bucket_index(v)] += 1;
        }
        prop_assert_eq!(snap.counts(), &expected);
        // …and each bucket's range really contains its values.
        for &v in &values {
            let i = bucket_index(v);
            prop_assert!(v <= bucket_upper_bound(i), "{} above bucket {}", v, i);
            if i > 0 {
                prop_assert!(v > bucket_upper_bound(i - 1), "{} below bucket {}", v, i);
            }
        }
    }

    /// Merge is exact: recording two sample sets separately and merging
    /// the snapshots equals recording everything into one histogram —
    /// counts, buckets and sum.
    #[test]
    fn merged_snapshots_equal_the_sum_of_parts(a in samples(), b in samples()) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
        // Merging in the other order agrees (commutativity).
        let mut other = hb.snapshot();
        other.merge(&ha.snapshot());
        prop_assert_eq!(other, merged);
        // Merging an empty snapshot is the identity.
        let mut id = hall.snapshot();
        id.merge(&Snapshot::default());
        prop_assert_eq!(id, hall.snapshot());
    }

    /// Quantile estimates respect the documented log₂ bound: for the
    /// true empirical quantile `v`, the estimate `e` satisfies
    /// `v ≤ e < 2·v` for `v ≥ 1`, and `e = 1` when `v = 0`.
    #[test]
    fn quantile_estimates_respect_the_log2_error_bound(
        values in samples(),
        // The vendored proptest shim has no f64 range strategy: draw
        // permille and map, covering the named percentiles and more.
        q in prop_oneof![
            Just(0.5), Just(0.9), Just(0.99), Just(0.999),
            (10u64..1000).prop_map(|permille| permille as f64 / 1000.0),
        ],
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let v = true_quantile(&sorted, q);
        let e = h.snapshot().quantile(q).expect("non-empty");
        if v == 0 {
            prop_assert_eq!(e, 1);
        } else {
            prop_assert!(v <= e, "estimate {} undershoots true quantile {}", e, v);
            // e < 2v, phrased without overflow: e ≤ 2v − 1.
            prop_assert!(
                e <= v.saturating_mul(2).saturating_sub(1) || v > u64::MAX / 2,
                "estimate {} ≥ twice the true quantile {}", e, v
            );
            // Equivalent structural statement: the estimate is the
            // upper bound of the true quantile's own bucket.
            prop_assert_eq!(e, bucket_upper_bound(bucket_index(v)));
        }
    }
}
