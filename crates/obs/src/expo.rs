//! Prometheus text exposition (format 0.0.4) rendered into a plain
//! `String` — no client library, no registry: callers hold their own
//! counters and histograms and push them through a [`PromWriter`] when
//! `/metrics` is scraped.
//!
//! Histograms follow the Prometheus convention: cumulative `_bucket`
//! samples with an inclusive `le` bound, a `+Inf` bucket equal to the
//! count, then `_sum` and `_count`. Bucket bounds come from the log₂
//! geometry of [`crate::hist`] and are scaled to seconds so dashboards
//! get base units.

use crate::hist::{bucket_upper_bound, Snapshot};

/// The `Content-Type` for the exposition body.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Builds a text-exposition body. `# HELP`/`# TYPE` lines are emitted
/// by [`help`](PromWriter::help) / [`type_`](PromWriter::type_); samples
/// by the typed emitters below.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
}

/// Render a float with at most 9 fractional digits, trailing zeros
/// trimmed. Nanosecond samples scaled to seconds have exactly nine
/// decimal places, so this is exact for every value we emit and avoids
/// shortest-round-trip artifacts like `3e-9` printing as
/// `0.0000000030000000000000004`.
fn fmt_f64(value: f64) -> String {
    let mut s = format!("{value:.9}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

/// Escape a label value per the exposition format.
fn push_escaped(buf: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => buf.push_str("\\\\"),
            '"' => buf.push_str("\\\""),
            '\n' => buf.push_str("\\n"),
            other => buf.push(other),
        }
    }
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Emit a `# HELP` line.
    pub fn help(&mut self, name: &str, help: &str) {
        self.buf.push_str("# HELP ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(help);
        self.buf.push('\n');
    }

    /// Emit a `# TYPE` line (`kind` is `counter`, `gauge` or
    /// `histogram`).
    pub fn type_(&mut self, name: &str, kind: &str) {
        self.buf.push_str("# TYPE ");
        self.buf.push_str(name);
        self.buf.push(' ');
        self.buf.push_str(kind);
        self.buf.push('\n');
    }

    /// `name{labels…}` — shared prefix for one sample line. `extra` is
    /// an additional label rendered last (used for `le`).
    fn sample_name(&mut self, name: &str, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
        self.buf.push_str(name);
        let total = labels.len() + usize::from(extra.is_some());
        if total > 0 {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().chain(extra.iter()).enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                push_escaped(&mut self.buf, v);
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
    }

    /// Emit one integer-valued sample.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_name(name, labels, None);
        use std::fmt::Write as _;
        let _ = write!(self.buf, "{value}");
        self.buf.push('\n');
    }

    /// Emit one float-valued sample (see [`fmt_f64`] for the rendering).
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_name(name, labels, None);
        self.buf.push_str(&fmt_f64(value));
        self.buf.push('\n');
    }

    /// Emit a full histogram family from a [`Snapshot`]: cumulative
    /// non-empty `_bucket` lines (inclusive `le`, sample values scaled
    /// by `scale` — pass `1e-9` when samples are nanoseconds and the
    /// metric is in seconds), the `+Inf` bucket, `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &Snapshot, scale: f64) {
        use std::fmt::Write as _;
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, count) in snap.counts().iter().enumerate() {
            if *count == 0 {
                continue;
            }
            cumulative = cumulative.saturating_add(*count);
            let le = fmt_f64(bucket_upper_bound(i) as f64 * scale);
            self.sample_name(&bucket_name, labels, Some(("le", &le)));
            let _ = write!(self.buf, "{cumulative}");
            self.buf.push('\n');
        }
        self.sample_name(&bucket_name, labels, Some(("le", "+Inf")));
        let _ = write!(self.buf, "{}", snap.count());
        self.buf.push('\n');
        self.sample_f64(&format!("{name}_sum"), labels, snap.sum() as f64 * scale);
        self.sample_u64(&format!("{name}_count"), labels, snap.count());
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_and_gauges_render_one_line_each() {
        let mut w = PromWriter::new();
        w.help("extract_requests_total", "Requests accepted.");
        w.type_("extract_requests_total", "counter");
        w.sample_u64("extract_requests_total", &[], 42);
        w.sample_f64("extract_quantile_seconds", &[("stage", "search"), ("q", "0.99")], 0.125);
        let body = w.finish();
        assert!(body.contains("# HELP extract_requests_total Requests accepted.\n"));
        assert!(body.contains("# TYPE extract_requests_total counter\n"));
        assert!(body.contains("\nextract_requests_total 42\n"));
        assert!(body.contains("extract_quantile_seconds{stage=\"search\",q=\"0.99\"} 0.125\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample_u64("m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(w.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn histograms_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        for v in [1u64, 3, 3, 1000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram("lat_seconds", &[("stage", "parse")], &h.snapshot(), 1e-9);
        let body = w.finish();
        // Bucket 0 (le = 1ns), bucket 1 (le = 3ns), bucket 9 (le = 1023ns).
        assert!(body.contains("lat_seconds_bucket{stage=\"parse\",le=\"0.000000001\"} 1\n"), "{body}");
        assert!(body.contains("lat_seconds_bucket{stage=\"parse\",le=\"0.000000003\"} 3\n"), "{body}");
        assert!(body.contains("lat_seconds_bucket{stage=\"parse\",le=\"0.000001023\"} 4\n"), "{body}");
        assert!(body.contains("lat_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 4\n"), "{body}");
        assert!(body.contains("lat_seconds_count{stage=\"parse\"} 4\n"), "{body}");
        assert!(body.contains("lat_seconds_sum{stage=\"parse\"} 0.000001007\n"), "{body}");
        // Every line is exposition-shaped: comment or name{...} value.
        for line in body.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn empty_histograms_still_emit_inf_sum_and_count() {
        let mut w = PromWriter::new();
        w.histogram("lat_seconds", &[], &Histogram::new().snapshot(), 1e-9);
        let body = w.finish();
        assert_eq!(
            body,
            "lat_seconds_bucket{le=\"+Inf\"} 0\nlat_seconds_sum 0.0\nlat_seconds_count 0\n"
        );
    }
}
