//! Trace identifiers: minted once per request at the front tier,
//! propagated to shards via the `X-Trace-Id` header, and stamped on
//! every trace, log line and `/debug/traces` entry so one slow query can
//! be followed across the router → shard hop.
//!
//! The wire format is canonical: **1–16 hexadecimal digits** (rendered
//! as exactly 16, lowercase, zero-padded). A request carrying a valid
//! `X-Trace-Id` keeps it — across tiers and into the response echo; an
//! absent or malformed header gets a freshly minted ID instead, so the
//! recorder never stores attacker-shaped strings and every trace is a
//! fixed-size `u64`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The propagation header. Requests carry it router → shard; responses
/// echo it back when the request had one.
pub const TRACE_HEADER: &str = "X-Trace-Id";

/// A non-zero 64-bit trace identifier (see the module docs for the wire
/// format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

/// splitmix64 — tiny, well-distributed, dependency-free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceId {
    /// Mint a fresh process-unique ID: a per-process random seed (from
    /// the std hasher keys — no time source, no dependency) mixed with a
    /// monotonic counter, so IDs neither collide within a process nor
    /// repeat across daemon restarts in practice.
    pub fn mint() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            use std::hash::BuildHasher;
            std::collections::hash_map::RandomState::new().hash_one(0u64)
        });
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        TraceId(mix(seed ^ n).max(1))
    }

    /// Parse a header value: 1–16 ASCII hex digits, non-zero. Anything
    /// else is `None` (the caller mints a replacement).
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(n) => Some(TraceId(n)),
        }
    }

    /// The raw identifier.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_wire_format() {
        let id = TraceId::mint();
        let rendered = id.to_string();
        assert_eq!(rendered.len(), 16, "{rendered}");
        assert_eq!(TraceId::parse(&rendered), Some(id));
        // Short and uppercase forms parse too.
        assert_eq!(TraceId::parse("FF").map(TraceId::as_u64), Some(255));
        assert_eq!(TraceId::parse(" 1f \t").map(TraceId::as_u64), Some(31));
    }

    #[test]
    fn malformed_values_are_rejected() {
        for bad in ["", "0", "00000000", "xyz", "12345678901234567", "de ad", "-1"] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn minted_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(TraceId::mint()), "collision");
        }
    }
}
