//! Per-request stage timing: the six spans of a request's life and the
//! thread-local accumulator that lets layers report spans without
//! threading a context object through every signature.
//!
//! The server owns the outer spans (`parse`, `queue`, `write`); the
//! application owns the inner ones (`search`, `snippet`, `serialize`)
//! and reports them by wrapping the work in [`time_stage`]. The server
//! calls [`trace_begin`] before invoking the handler and [`trace_take`]
//! after the response is written; whatever the handler's thread timed in
//! between lands in the same trace. This works because a handler runs
//! its stages on the worker thread that called it — work it fans out to
//! other threads (the router's scatter) is timed as one span by the
//! handler instead.
//!
//! Everything here is a `Cell` of plain `Copy` data: no allocation, no
//! `RefCell` borrow panics, nothing for the panic-free-request-path lint
//! to object to.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The stages of one request, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading + parsing the request off the socket.
    Parse,
    /// Waiting in the admission queue for a worker.
    Queue,
    /// Candidate routing, search and ranking (the router's scatter).
    Search,
    /// Snippet generation for the served window.
    Snippet,
    /// Rendering the response body (the router's merge + render).
    Serialize,
    /// Writing the response to the socket.
    Write,
}

/// How many stages exist.
pub const STAGES: usize = 6;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGES] =
        [Stage::Parse, Stage::Queue, Stage::Search, Stage::Snippet, Stage::Serialize, Stage::Write];

    /// The wire/metric label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Search => "search",
            Stage::Snippet => "snippet",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }

    /// The stage's slot in a `[u64; STAGES]` span array.
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Queue => 1,
            Stage::Search => 2,
            Stage::Snippet => 3,
            Stage::Serialize => 4,
            Stage::Write => 5,
        }
    }
}

/// Global kill switch: when off, [`time_stage`] runs its closure bare
/// and [`stage_add`] is a no-op, so the overhead benchmark can measure
/// instrumentation on vs off in one process. Defaults to on.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn stage timing on or off process-wide (see [`is_enabled`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stage timing is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// This thread's span accumulator for the request currently being
    /// handled (one request per worker thread at a time).
    static SPANS: Cell<[u64; STAGES]> = const { Cell::new([0; STAGES]) };
}

/// Reset this thread's accumulator; the server calls this right before
/// invoking the handler.
pub fn trace_begin() {
    SPANS.with(|spans| spans.set([0; STAGES]));
}

/// Take (and reset) this thread's accumulated spans; the server calls
/// this after writing the response.
pub fn trace_take() -> [u64; STAGES] {
    SPANS.with(|spans| spans.replace([0; STAGES]))
}

/// Add `ns` to `stage` in this thread's accumulator.
pub fn stage_add(stage: Stage, ns: u64) {
    if !is_enabled() {
        return;
    }
    SPANS.with(|spans| {
        let mut current = spans.get();
        if let Some(slot) = current.get_mut(stage.index()) {
            *slot = slot.saturating_add(ns);
        }
        spans.set(current);
    });
}

/// Nanoseconds since `started`, saturating.
pub fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Run `f`, crediting its wall time to `stage` in this thread's
/// accumulator. When timing is [disabled](set_enabled), runs `f` bare.
pub fn time_stage<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let started = Instant::now();
    let out = f();
    stage_add(stage, elapsed_ns(started));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_thread_and_reset_on_take() {
        trace_begin();
        stage_add(Stage::Search, 100);
        stage_add(Stage::Search, 50);
        stage_add(Stage::Write, 7);
        let spans = trace_take();
        assert_eq!(spans[Stage::Search.index()], 150);
        assert_eq!(spans[Stage::Write.index()], 7);
        assert_eq!(trace_take(), [0; STAGES], "take resets");
        // Another thread's accumulator is independent.
        stage_add(Stage::Parse, 9);
        std::thread::spawn(|| {
            assert_eq!(trace_take(), [0; STAGES]);
        })
        .join()
        .expect("thread");
        assert_eq!(trace_take()[Stage::Parse.index()], 9);
    }

    #[test]
    fn time_stage_records_elapsed_time() {
        trace_begin();
        let out = time_stage(Stage::Snippet, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let ns = trace_take()[Stage::Snippet.index()];
        assert!(ns >= 4_000_000, "{ns} ns is less than the 5 ms slept");
    }

    #[test]
    fn disabling_makes_timing_a_no_op() {
        trace_begin();
        set_enabled(false);
        let out = time_stage(Stage::Search, || 1);
        stage_add(Stage::Search, 999);
        set_enabled(true);
        assert_eq!(out, 1);
        assert_eq!(trace_take(), [0; STAGES]);
    }

    #[test]
    fn stage_names_and_indices_are_bijective() {
        let mut names = std::collections::HashSet::new();
        let mut indices = std::collections::HashSet::new();
        for stage in Stage::ALL {
            assert!(names.insert(stage.name()));
            assert!(indices.insert(stage.index()));
            assert!(stage.index() < STAGES);
        }
    }
}
