//! extract-obs — dependency-free observability for the eXtract serving
//! tier.
//!
//! Four pieces, each `std`-only and allocation-free on the hot path:
//!
//! - [`hist`] — lock-free log₂-bucketed latency [`Histogram`]s with
//!   mergeable [`Snapshot`]s and pinned quantile error bounds.
//! - [`stage`] — the per-request [`Stage`] pipeline and a thread-local
//!   span accumulator ([`time_stage`]) that lets the session/app layers
//!   report search/snippet/serialize spans without new plumbing.
//! - [`trace`] — [`TraceId`] minting, the `X-Trace-Id` wire contract
//!   and hex parsing, for following one request across the
//!   router → shard hop.
//! - [`flight`] — a preallocated ring of the last N [`TraceRecord`]s
//!   (the *flight recorder*) behind `/debug/traces`.
//! - [`expo`] — Prometheus text exposition (format 0.0.4) rendering
//!   for `/metrics` on both daemons.
//!
//! [`RequestObs`] ties them together: one per daemon, fed a
//! [`TraceRecord`] per completed request; it maintains the stage and
//! total histograms, the flight recorder, and emits a structured
//! `key=value` log line for requests over the slow threshold.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expo;
pub mod flight;
pub mod hist;
pub mod stage;
pub mod trace;

pub use expo::PromWriter;
pub use flight::{FlightRecorder, TraceRecord};
pub use hist::{Histogram, Snapshot};
pub use stage::{
    elapsed_ns, is_enabled, set_enabled, stage_add, time_stage, trace_begin, trace_take, Stage,
    STAGES,
};
pub use trace::{TraceId, TRACE_HEADER};

/// Per-daemon request observability: stage + total latency histograms,
/// the flight recorder, and slow-request logging. One instance lives
/// for the daemon's lifetime; [`observe`](RequestObs::observe) is called
/// once per completed request.
#[derive(Debug)]
pub struct RequestObs {
    /// One histogram per [`Stage`], indexed by [`Stage::index`].
    stages: [Histogram; STAGES],
    /// End-to-end request latency.
    total: Histogram,
    recorder: FlightRecorder,
    slow_threshold_ns: u64,
}

impl RequestObs {
    /// A fresh instance keeping the last `trace_capacity` traces and
    /// logging requests slower than `slow_threshold`.
    pub fn new(trace_capacity: usize, slow_threshold: std::time::Duration) -> RequestObs {
        RequestObs {
            stages: std::array::from_fn(|_| Histogram::new()),
            total: Histogram::new(),
            recorder: FlightRecorder::new(trace_capacity),
            slow_threshold_ns: u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Fold one completed request in: total + per-stage histograms (a
    /// stage that did not run — 0 ns — is not sampled, so mixed traffic
    /// like `/healthz` does not drag the search percentiles to zero),
    /// the flight recorder, and — above the slow threshold — one
    /// structured `key=value` line on stderr tagged with the trace ID.
    pub fn observe(&self, record: TraceRecord) {
        self.total.record(record.total_ns);
        for stage in Stage::ALL {
            let ns = record.stage(stage);
            if ns > 0 {
                if let Some(h) = self.stages.get(stage.index()) {
                    h.record(ns);
                }
            }
        }
        let seq = self.recorder.record(record);
        if record.total_ns >= self.slow_threshold_ns {
            let mut line = format!(
                "obs: slow_request trace={} seq={seq} route={} status={} total_ns={}",
                record.id, record.route, record.status, record.total_ns
            );
            for stage in Stage::ALL {
                let ns = record.stage(stage);
                if ns > 0 {
                    use std::fmt::Write as _;
                    let _ = write!(line, " {}_ns={ns}", stage.name());
                }
            }
            eprintln!("{line}");
        }
    }

    /// The latency histogram for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        // The array is indexed by Stage::index, which is < STAGES by
        // construction; fall back to `total` rather than panicking.
        self.stages.get(stage.index()).unwrap_or(&self.total)
    }

    /// The end-to-end latency histogram.
    pub fn total_histogram(&self) -> &Histogram {
        &self.total
    }

    /// The flight recorder's current contents, oldest first.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.recorder.snapshot()
    }

    /// How many traces the flight recorder keeps.
    pub fn trace_capacity(&self) -> usize {
        self.recorder.capacity()
    }

    /// The slow-request threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Emit the request-latency metric families into `w` (both daemons'
    /// `/metrics` route): per-stage duration histograms, per-stage
    /// quantile gauges, and the end-to-end histogram — all in seconds.
    /// Each stage is snapshotted once, so its histogram and its
    /// quantiles describe the same point in time.
    pub fn write_metrics(&self, w: &mut PromWriter) {
        let stage_snaps: [Snapshot; STAGES] =
            std::array::from_fn(|i| match Stage::ALL.get(i) {
                Some(stage) => self.stage_histogram(*stage).snapshot(),
                None => Snapshot::default(),
            });
        let snap_of = |stage: Stage| {
            stage_snaps.get(stage.index()).copied().unwrap_or_default()
        };
        w.help(
            "extract_request_stage_duration_seconds",
            "Per-stage request latency (stages that did not run are not sampled).",
        );
        w.type_("extract_request_stage_duration_seconds", "histogram");
        for stage in Stage::ALL {
            w.histogram(
                "extract_request_stage_duration_seconds",
                &[("stage", stage.name())],
                &snap_of(stage),
                1e-9,
            );
        }
        w.help(
            "extract_request_stage_quantile_seconds",
            "Per-stage latency quantile estimates (log2-bucket upper bounds).",
        );
        w.type_("extract_request_stage_quantile_seconds", "gauge");
        for stage in Stage::ALL {
            let snap = snap_of(stage);
            for (label, q) in
                [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
            {
                if let Some(ns) = snap.quantile(q) {
                    w.sample_f64(
                        "extract_request_stage_quantile_seconds",
                        &[("stage", stage.name()), ("quantile", label)],
                        ns as f64 * 1e-9,
                    );
                }
            }
        }
        w.help("extract_request_duration_seconds", "End-to-end request latency.");
        w.type_("extract_request_duration_seconds", "histogram");
        w.histogram(
            "extract_request_duration_seconds",
            &[],
            &self.total.snapshot(),
            1e-9,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn observe_updates_histograms_and_flight_recorder() {
        let obs = RequestObs::new(4, Duration::from_secs(3600));
        let mut stage_ns = [0u64; STAGES];
        stage_ns[Stage::Search.index()] = 1000;
        stage_ns[Stage::Snippet.index()] = 500;
        obs.observe(TraceRecord {
            id: TraceId::mint(),
            seq: 0,
            route: "/search",
            status: 200,
            stage_ns,
            total_ns: 1600,
        });
        assert_eq!(obs.total_histogram().snapshot().count(), 1);
        assert_eq!(obs.stage_histogram(Stage::Search).snapshot().count(), 1);
        assert_eq!(obs.stage_histogram(Stage::Snippet).snapshot().count(), 1);
        // Stages that did not run are not sampled.
        assert!(obs.stage_histogram(Stage::Parse).snapshot().is_empty());
        let traces = obs.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces.first().map(|t| t.stage(Stage::Search)), Some(1000));
    }
}
