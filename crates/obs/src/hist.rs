//! Lock-free log₂-bucketed latency histograms.
//!
//! A [`Histogram`] is 64 atomic counters, one per power-of-two bucket:
//! bucket 0 holds the values `0` and `1`, bucket `i ≥ 1` holds
//! `[2^i, 2^(i+1))`. Recording is two relaxed `fetch_add`s — no lock, no
//! allocation, safe from any number of threads — which is what lets the
//! serving tier time every request stage without perturbing the latency
//! it is measuring.
//!
//! Reading goes through [`Histogram::snapshot`]: a point-in-time copy
//! that can be [merged](Snapshot::merge) with other snapshots (shards,
//! workers) and asked for [quantiles](Snapshot::quantile).
//!
//! # Error bound
//!
//! Buckets double, so a quantile estimate is the **inclusive upper
//! bound** of the bucket holding the true empirical quantile: for a true
//! value `v ≥ 1` the estimate `e` satisfies `v ≤ e < 2·v`, i.e. the
//! estimate never undershoots and overshoots by strictly less than one
//! binary order of magnitude. (For `v = 0` the estimate is `1` — below
//! any meaningful timer resolution.) The property tests pin exactly
//! this bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets — one per bit of a `u64`.
pub const BUCKETS: usize = 64;

/// The bucket index `value` falls into: `floor(log2(value))`, with `0`
/// and `1` sharing bucket 0.
pub fn bucket_index(value: u64) -> usize {
    match value.checked_ilog2() {
        Some(b) => b as usize,
        None => 0,
    }
}

/// The largest value bucket `index` holds (inclusive): `2^(index+1) - 1`,
/// saturating at `u64::MAX` for the last bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match 1u64.checked_shl(index as u32 + 1) {
        Some(next) => next - 1,
        None => u64::MAX,
    }
}

/// A lock-free log₂-bucketed histogram of `u64` samples (the serving
/// tier records nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    /// Record one sample. Two relaxed atomic adds; never blocks.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Concurrent `record`s may or
    /// may not be included (each whole sample lands eventually; the
    /// `sum` and its bucket may be read around one in-flight record, so
    /// a snapshot's sum is accurate to ± one sample).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counts: std::array::from_fn(|i| {
                self.buckets.get(i).map(|b| b.load(Ordering::Relaxed)).unwrap_or(0)
            }),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for Snapshot {
    fn default() -> Snapshot {
        Snapshot { counts: [0; BUCKETS], sum: 0 }
    }
}

impl Snapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, c| acc.saturating_add(*c))
    }

    /// Sum of all recorded samples (wraps only after ~2^64 total).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| *c == 0)
    }

    /// Per-bucket counts, bucket 0 first.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Fold `other` in: the result is exactly the histogram of both
    /// sample sets together (bucket-wise addition — the property tests
    /// pin merge = sum of parts).
    pub fn merge(&mut self, other: &Snapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        // Wrapping, not saturating: recording wraps the sum mod 2^64,
        // so merge must too for "merge = sum of parts" to hold exactly.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The `q`-quantile estimate (`0 < q ≤ 1`): the inclusive upper
    /// bound of the bucket holding the sample of rank `ceil(q·count)`.
    /// `None` when empty. See the module docs for the pinned `[v, 2v)`
    /// error bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(62), (1 << 63) - 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value sits inside its own bucket's range.
        for v in [0u64, 1, 2, 3, 100, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above its bucket");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} below its bucket");
            }
        }
    }

    #[test]
    fn quantiles_estimate_within_one_binary_order() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1100);
        // rank(0.5 · 5) = 3 → the value 30, bucket 4 ([16, 32)) → 31.
        assert_eq!(s.p50(), Some(31));
        // rank ceil(0.99 · 5) = 5 → 1000, bucket 9 ([512, 1024)) → 1023.
        assert_eq!(s.p99(), Some(1023));
        assert_eq!(Snapshot::default().p50(), None);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4000);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(700);
        b.record(5);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let all = Histogram::new();
        for v in [5u64, 700, 5] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot());
    }
}
