//! The flight recorder: a fixed-capacity ring of the most recent
//! request traces, preallocated at startup and overwritten in place —
//! zero allocation in steady state, so keeping it always-on costs a
//! short mutex hold per request and nothing else.
//!
//! `/debug/traces` dumps the ring as JSON; the slow-request log line in
//! [`crate::RequestObs::observe`] is fed from the same [`TraceRecord`]s.

use std::sync::{Mutex, MutexGuard};

use crate::stage::{Stage, STAGES};
use crate::trace::TraceId;

/// One completed request: identity, outcome and where its time went.
/// Plain `Copy` data so the ring can be a flat preallocated buffer.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// The request's trace ID (minted or adopted from `X-Trace-Id`).
    pub id: TraceId,
    /// Recorder-assigned sequence number, monotonically increasing;
    /// lets a reader order dumps and spot drops between scrapes.
    pub seq: u64,
    /// Coarse route tag (`"/search"`, `"/stats"`, `"other"`, …).
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// Nanoseconds spent in each [`Stage`], indexed by [`Stage::index`].
    pub stage_ns: [u64; STAGES],
    /// End-to-end nanoseconds (parse start → write end).
    pub total_ns: u64,
}

impl TraceRecord {
    /// Nanoseconds spent in `stage`.
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_ns.get(stage.index()).copied().unwrap_or(0)
    }
}

struct Ring {
    /// Preallocated storage; `len ≤ capacity` entries are live.
    slots: Vec<TraceRecord>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Sequence number for the next record.
    next_seq: u64,
}

/// A bounded ring of the last `capacity` [`TraceRecord`]s.
pub struct FlightRecorder {
    capacity: usize,
    /// Lock order: `flight` is terminal — nothing else is ever acquired
    /// while holding it, and it is held only for a copy in/out.
    flight: Mutex<Ring>,
}

/// Recover the data from a poisoned mutex rather than cascading the
/// panic: trace records are plain `Copy` data, valid regardless of
/// where a holder panicked.
fn lock_unpoisoned(flight: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    match flight.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").field("capacity", &self.capacity).finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` traces (at least 1). The
    /// ring is allocated here, once.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            flight: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                next_seq: 0,
            }),
        }
    }

    /// How many traces the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one trace, overwriting the oldest once full. Returns the
    /// sequence number assigned to it.
    pub fn record(&self, mut record: TraceRecord) -> u64 {
        let mut ring = lock_unpoisoned(&self.flight);
        let seq = ring.next_seq;
        ring.next_seq = ring.next_seq.wrapping_add(1);
        record.seq = seq;
        if ring.slots.len() < self.capacity {
            ring.slots.push(record);
        } else {
            let head = ring.head;
            if let Some(slot) = ring.slots.get_mut(head) {
                *slot = record;
            }
            ring.head = (head + 1) % self.capacity;
        }
        seq
    }

    /// The recorded traces, oldest first. Copies out under the lock;
    /// the one allocation is the caller's result vector.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let ring = lock_unpoisoned(&self.flight);
        let mut out = Vec::with_capacity(ring.slots.len());
        // Once full, `head` points at the oldest entry.
        out.extend(ring.slots.iter().skip(ring.head).copied());
        out.extend(ring.slots.iter().take(ring.head).copied());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(total_ns: u64) -> TraceRecord {
        TraceRecord {
            id: TraceId::mint(),
            seq: 0,
            route: "/search",
            status: 200,
            stage_ns: [0; STAGES],
            total_ns,
        }
    }

    #[test]
    fn keeps_the_last_capacity_traces_in_order() {
        let fr = FlightRecorder::new(3);
        assert_eq!(fr.capacity(), 3);
        for i in 0..5u64 {
            fr.record(rec(i));
        }
        let dump = fr.snapshot();
        assert_eq!(dump.iter().map(|r| r.total_ns).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(dump.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn partial_ring_dumps_only_live_entries() {
        let fr = FlightRecorder::new(8);
        fr.record(rec(1));
        fr.record(rec(2));
        let dump = fr.snapshot();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump.iter().map(|r| r.total_ns).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.record(rec(1));
        fr.record(rec(2));
        let dump = fr.snapshot();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump.first().map(|r| r.total_ns), Some(2));
    }

    #[test]
    fn concurrent_records_keep_distinct_seqs() {
        let fr = std::sync::Arc::new(FlightRecorder::new(256));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let fr = std::sync::Arc::clone(&fr);
                scope.spawn(move || {
                    for _ in 0..64 {
                        fr.record(rec(7));
                    }
                });
            }
        });
        let dump = fr.snapshot();
        assert_eq!(dump.len(), 256);
        let mut seqs: Vec<u64> = dump.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 256, "sequence numbers must be unique");
    }
}
