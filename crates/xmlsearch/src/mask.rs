//! Keyword-set bitmasks abstract over their width, so the mask-propagation
//! algorithms (brute-force SLCA, both ELCAs) run unchanged with one
//! inlined `u64` (k ≤ 64, the hot path) or a boxed multi-word mask
//! (degenerate many-keyword queries — a hard 64-list cap made them
//! library panics reachable from `Engine::search`). Callers dispatch on
//! `lists.len() <= 64` so the common case never allocates per mask.

/// The mask operations the algorithms need. `k` is the keyword count the
/// mask was sized for and must be the same across every call on one mask.
pub(crate) trait Mask: Clone + PartialEq {
    /// The empty mask for `k` keywords.
    fn empty(k: usize) -> Self;
    /// The mask with only keyword `i` set.
    fn single(k: usize, i: usize) -> Self;
    /// Set-union in place.
    fn or_assign(&mut self, other: &Self);
    /// Does the mask contain all `k` keywords?
    fn is_full(&self, k: usize) -> bool;
}

impl Mask for u64 {
    fn empty(_k: usize) -> u64 {
        0
    }

    fn single(_k: usize, i: usize) -> u64 {
        1u64 << i
    }

    fn or_assign(&mut self, other: &u64) {
        *self |= other;
    }

    fn is_full(&self, k: usize) -> bool {
        let full = if k == 64 { !0 } else { (1u64 << k) - 1 };
        *self == full
    }
}

impl Mask for Box<[u64]> {
    fn empty(k: usize) -> Box<[u64]> {
        vec![0u64; k.div_ceil(64)].into_boxed_slice()
    }

    fn single(k: usize, i: usize) -> Box<[u64]> {
        let mut m = Self::empty(k);
        m[i / 64] |= 1 << (i % 64);
        m
    }

    fn or_assign(&mut self, other: &Box<[u64]>) {
        for (a, b) in self.iter_mut().zip(other.iter()) {
            *a |= b;
        }
    }

    fn is_full(&self, k: usize) -> bool {
        self.iter().enumerate().all(|(w, &bits)| {
            let in_word = (k - w * 64).min(64);
            let full = if in_word == 64 { !0 } else { (1u64 << in_word) - 1 };
            bits == full
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check<M: Mask + std::fmt::Debug>(k: usize) {
        let mut m = M::empty(k);
        assert!(!m.is_full(k), "empty is not full at k={k}");
        for i in 0..k {
            m.or_assign(&M::single(k, i));
        }
        assert!(m.is_full(k), "all bits set is full at k={k}");
        let mut partial = M::empty(k);
        partial.or_assign(&M::single(k, k - 1));
        assert!(!partial.is_full(k) || k == 1);
    }

    #[test]
    fn u64_masks_cover_boundaries() {
        for k in [1, 2, 63, 64] {
            check::<u64>(k);
        }
    }

    #[test]
    fn wide_masks_cover_boundaries() {
        for k in [65, 128, 129, 200] {
            check::<Box<[u64]>>(k);
        }
    }
}
