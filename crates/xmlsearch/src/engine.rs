//! The search facade: one object owning the document's indexes and entity
//! model, dispatching to every implemented algorithm.

use extract_analyzer::EntityModel;
use extract_index::XmlIndex;
use extract_xml::{Document, NodeId};

use crate::elca::elca_stack;
use crate::query::KeywordQuery;
use crate::ranking::{rank, RankedResult};
use crate::result::QueryResult;
use crate::slca::{slca_auto, slca_indexed_lookup, slca_scan_eager};
use crate::xseek::{self, RootPolicy};

/// The available search algorithms / result semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// SLCA via Indexed Lookup Eager (Xu & Papakonstantinou).
    SlcaIndexedLookup,
    /// SLCA via Scan Eager (Xu & Papakonstantinou).
    SlcaScanEager,
    /// SLCA with the eager algorithm picked per query from list-length
    /// ratios (see [`crate::slca::choose_strategy`]).
    SlcaAuto,
    /// ELCA via the Dewey stack (XRANK semantics).
    Elca,
    /// SLCA lifted to entity roots (XSeek semantics — the engine the demo
    /// runs on, and the default).
    XSeek,
}

/// A ready-to-query search engine over one document.
#[derive(Debug)]
pub struct Engine<'d> {
    doc: &'d Document,
    index: XmlIndex,
    model: EntityModel,
}

impl<'d> Engine<'d> {
    /// Build the indexes and entity model for `doc`.
    pub fn new(doc: &'d Document) -> Engine<'d> {
        Engine { doc, index: XmlIndex::build(doc), model: EntityModel::analyze(doc) }
    }

    /// Reuse pre-built components (lets callers share them with eXtract).
    pub fn from_parts(doc: &'d Document, index: XmlIndex, model: EntityModel) -> Engine<'d> {
        Engine { doc, index, model }
    }

    /// The document.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// The indexes.
    pub fn index(&self) -> &XmlIndex {
        &self.index
    }

    /// The entity model.
    pub fn model(&self) -> &EntityModel {
        &self.model
    }

    /// Result roots only (no match scoping). Posting lists are borrowed
    /// straight from the index — no per-query copies.
    pub fn roots(&self, query: &KeywordQuery, algorithm: Algorithm) -> Vec<NodeId> {
        let lists: Vec<&[NodeId]> =
            query.keywords().iter().map(|k| self.index.postings(k)).collect();
        match algorithm {
            Algorithm::SlcaIndexedLookup => {
                slca_indexed_lookup(self.doc, self.index.dewey_store(), &lists)
            }
            Algorithm::SlcaScanEager => {
                slca_scan_eager(self.doc, self.index.dewey_store(), &lists)
            }
            Algorithm::SlcaAuto => slca_auto(self.doc, self.index.dewey_store(), &lists),
            Algorithm::Elca => elca_stack(self.doc, &lists),
            Algorithm::XSeek => {
                xseek::result_roots(self.doc, &self.index, &self.model, query, RootPolicy::Entity)
            }
        }
    }

    /// Full search: roots plus per-result keyword matches.
    pub fn search(&self, query: &KeywordQuery, algorithm: Algorithm) -> Vec<QueryResult> {
        self.roots(query, algorithm)
            .into_iter()
            .map(|root| QueryResult::build(&self.index, query, root))
            .collect()
    }

    /// Convenience: parse and search in one call.
    pub fn search_str(&self, query: &str, algorithm: Algorithm) -> Vec<QueryResult> {
        self.search(&KeywordQuery::parse(query), algorithm)
    }

    /// Search and rank.
    pub fn search_ranked(&self, query: &KeywordQuery, algorithm: Algorithm) -> Vec<RankedResult> {
        rank(self.doc, self.search(query, algorithm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = "<stores>\
        <store><name>Levis</name><state>Texas</state>\
          <merchandises><clothes><category>jeans</category><fitting>man</fitting></clothes></merchandises>\
        </store>\
        <store><name>ESprit</name><state>Texas</state>\
          <merchandises><clothes><category>outwear</category><fitting>woman</fitting></clothes></merchandises>\
        </store>\
        <store><name>Gap</name><state>Ohio</state>\
          <merchandises><clothes><category>shirt</category></clothes></merchandises>\
        </store>\
        </stores>";

    #[test]
    fn all_algorithms_agree_on_the_store_query() {
        let doc = Document::parse_str(XML).unwrap();
        let engine = Engine::new(&doc);
        let q = KeywordQuery::parse("store texas");
        for algo in [
            Algorithm::SlcaIndexedLookup,
            Algorithm::SlcaScanEager,
            Algorithm::SlcaAuto,
            Algorithm::XSeek,
        ] {
            let results = engine.search(&q, algo);
            assert_eq!(results.len(), 2, "{algo:?}");
            assert!(results.iter().all(|r| doc.label_str(r.root) == Some("store")));
        }
        // ELCA additionally sees no extra roots here (stores nest nothing
        // that independently covers both keywords).
        let elca = engine.search(&q, Algorithm::Elca);
        assert_eq!(elca.len(), 2);
    }

    #[test]
    fn ranked_search_is_ordered() {
        let doc = Document::parse_str(XML).unwrap();
        let engine = Engine::new(&doc);
        let ranked = engine.search_ranked(&KeywordQuery::parse("texas"), Algorithm::XSeek);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score >= ranked[1].score);
    }

    #[test]
    fn engine_exposes_parts() {
        let doc = Document::parse_str(XML).unwrap();
        let engine = Engine::new(&doc);
        assert!(engine.index().postings("texas").len() == 2);
        let store = doc.first_element_with_label("store").unwrap();
        assert!(engine.model().is_entity(store));
        assert_eq!(engine.document().element_count(), doc.element_count());
    }

    #[test]
    fn many_keyword_queries_do_not_panic_any_algorithm() {
        // Regression: ELCA panicked past 64 keywords; a pasted paragraph
        // of a query is exactly how a user reaches that path.
        let body: String = (0..70).map(|i| format!("<w>t{i}</w>")).collect();
        let xml = format!("<r>{body}</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let engine = Engine::new(&doc);
        let text: String =
            (0..70).map(|i| format!("t{i} ")).collect();
        let q = KeywordQuery::parse(&text);
        assert_eq!(q.len(), 70);
        for algo in [
            Algorithm::SlcaIndexedLookup,
            Algorithm::SlcaScanEager,
            Algorithm::SlcaAuto,
            Algorithm::Elca,
            Algorithm::XSeek,
        ] {
            let results = engine.search(&q, algo);
            assert!(!results.is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn from_parts_reuses_components() {
        let doc = Document::parse_str(XML).unwrap();
        let index = XmlIndex::build(&doc);
        let model = EntityModel::analyze(&doc);
        let engine = Engine::from_parts(&doc, index, model);
        assert_eq!(engine.search_str("gap", Algorithm::XSeek).len(), 1);
    }
}
