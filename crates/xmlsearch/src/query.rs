//! Keyword query parsing.

use extract_index::tokenize;

/// A parsed keyword query: normalized tokens, duplicates removed, original
/// order preserved. The order matters downstream — the IList is initialized
//  with the query keywords in this order (paper §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    keywords: Vec<String>,
}

impl KeywordQuery {
    /// Parse free text like `"Texas, apparel, retailer"`.
    pub fn parse(text: &str) -> KeywordQuery {
        let mut keywords: Vec<String> = Vec::new();
        for tok in tokenize(text) {
            if !keywords.contains(&tok) {
                keywords.push(tok);
            }
        }
        KeywordQuery { keywords }
    }

    /// Build from pre-normalized keywords (used by generators and tests).
    pub fn from_keywords<I: IntoIterator<Item = S>, S: Into<String>>(iter: I) -> KeywordQuery {
        let mut keywords: Vec<String> = Vec::new();
        for k in iter {
            let k = k.into().to_lowercase();
            if !k.is_empty() && !keywords.contains(&k) {
                keywords.push(k);
            }
        }
        KeywordQuery { keywords }
    }

    /// The normalized keywords in query order.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

impl std::fmt::Display for KeywordQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, k) in self.keywords.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let q = KeywordQuery::parse("Texas, apparel, Retailer");
        assert_eq!(q.keywords(), &["texas", "apparel", "retailer"]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn duplicates_are_removed_keeping_first_position() {
        let q = KeywordQuery::parse("store texas Store");
        assert_eq!(q.keywords(), &["store", "texas"]);
    }

    #[test]
    fn empty_query() {
        let q = KeywordQuery::parse("  ,;  ");
        assert!(q.is_empty());
    }

    #[test]
    fn from_keywords_normalizes_too() {
        let q = KeywordQuery::from_keywords(["Store", "TEXAS", "store", ""]);
        assert_eq!(q.keywords(), &["store", "texas"]);
    }

    #[test]
    fn display_joins_with_spaces() {
        let q = KeywordQuery::parse("store texas");
        assert_eq!(q.to_string(), "store texas");
    }
}
