//! Keyword query parsing.

use extract_index::tokenize;

/// A parsed keyword query: normalized tokens, duplicates removed, original
/// order preserved. The order matters downstream — the IList is initialized
//  with the query keywords in this order (paper §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    keywords: Vec<String>,
}

impl KeywordQuery {
    /// Parse free text like `"Texas, apparel, retailer"`.
    pub fn parse(text: &str) -> KeywordQuery {
        let mut keywords: Vec<String> = Vec::new();
        for tok in tokenize(text) {
            if !keywords.contains(&tok) {
                keywords.push(tok);
            }
        }
        KeywordQuery { keywords }
    }

    /// Build from keywords supplied one per item (used by generators and
    /// tests). Each item runs through the same tokenizer as
    /// [`KeywordQuery::parse`], so an item like `"Brook Brothers"` or
    /// `"open_auction"` contributes its normalized tokens rather than one
    /// un-normalized pseudo-keyword — every constructor yields the same
    /// canonical form for the same keyword bag, which the snippet cache key
    /// relies on (it used to skip tokenization, so `["a b"]` aliased the
    /// two-keyword query `"a b"` in the cache while matching nothing in the
    /// index).
    pub fn from_keywords<I: IntoIterator<Item = S>, S: Into<String>>(iter: I) -> KeywordQuery {
        let mut keywords: Vec<String> = Vec::new();
        for k in iter {
            for tok in tokenize(&k.into()) {
                if !keywords.contains(&tok) {
                    keywords.push(tok);
                }
            }
        }
        KeywordQuery { keywords }
    }

    /// The normalized keywords in query order.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Whether the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

impl std::fmt::Display for KeywordQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, k) in self.keywords.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let q = KeywordQuery::parse("Texas, apparel, Retailer");
        assert_eq!(q.keywords(), &["texas", "apparel", "retailer"]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn duplicates_are_removed_keeping_first_position() {
        let q = KeywordQuery::parse("store texas Store");
        assert_eq!(q.keywords(), &["store", "texas"]);
    }

    #[test]
    fn empty_query() {
        let q = KeywordQuery::parse("  ,;  ");
        assert!(q.is_empty());
    }

    #[test]
    fn from_keywords_normalizes_too() {
        let q = KeywordQuery::from_keywords(["Store", "TEXAS", "store", ""]);
        assert_eq!(q.keywords(), &["store", "texas"]);
    }

    #[test]
    fn from_keywords_tokenizes_multiword_items() {
        // Regression: un-tokenized items used to survive verbatim, so
        // ["a b"] produced a query whose display form collided with the
        // genuinely two-keyword query "a b" in cache keys while matching
        // nothing in the index (postings are single tokens).
        let q = KeywordQuery::from_keywords(["Brook Brothers", "open_auction-1"]);
        assert_eq!(q.keywords(), &["brook", "brothers", "open", "auction", "1"]);
        assert_eq!(
            KeywordQuery::from_keywords(["store texas"]),
            KeywordQuery::parse("store texas")
        );
    }

    #[test]
    fn display_joins_with_spaces() {
        let q = KeywordQuery::parse("store texas");
        assert_eq!(q.to_string(), "store texas");
    }
}
