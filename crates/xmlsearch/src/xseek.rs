//! XSeek-style result roots (Liu & Chen, SIGMOD 2007, as used by the demo).
//!
//! Plain SLCA roots can be connection nodes (e.g. `merchandises`), which
//! make poor semantic results. XSeek returns *meaningful* units: we lift
//! each SLCA to its nearest ancestor-or-self **entity** node, deduplicate,
//! and return the full subtree of each lifted root as the query result —
//! matching the paper's Figure 1, where the result of "Texas apparel
//! retailer" is the whole `retailer` subtree.

use extract_analyzer::EntityModel;
use extract_index::XmlIndex;
use extract_xml::{Document, NodeId};

use crate::query::KeywordQuery;
use crate::result::QueryResult;
use crate::slca::slca_auto;

/// How result roots are derived from SLCA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RootPolicy {
    /// Use SLCA nodes verbatim.
    Slca,
    /// Lift each SLCA to its nearest ancestor-or-self entity (XSeek).
    #[default]
    Entity,
}

/// Compute result roots for `query` under `policy`.
pub fn result_roots(
    doc: &Document,
    index: &XmlIndex,
    model: &EntityModel,
    query: &KeywordQuery,
    policy: RootPolicy,
) -> Vec<NodeId> {
    let lists: Vec<&[NodeId]> =
        query.keywords().iter().map(|k| index.postings(k)).collect();
    let slcas = slca_auto(doc, index.dewey_store(), &lists);
    match policy {
        RootPolicy::Slca => slcas,
        RootPolicy::Entity => {
            let mut roots: Vec<NodeId> = slcas
                .into_iter()
                .map(|n| model.entity_of(doc, n).unwrap_or(n))
                .collect();
            roots.sort_unstable();
            roots.dedup();
            // Lifting can create nesting (one lifted root inside another);
            // keep the highest so results stay disjoint.
            let store = index.dewey_store();
            let mut keep: Vec<NodeId> = Vec::with_capacity(roots.len());
            for r in roots {
                match keep.last() {
                    Some(&last) if store.is_ancestor_or_self(last, r) => {}
                    _ => keep.push(r),
                }
            }
            keep
        }
    }
}

/// Full XSeek search: roots under `policy`, then per-root match scoping.
pub fn search(
    doc: &Document,
    index: &XmlIndex,
    model: &EntityModel,
    query: &KeywordQuery,
    policy: RootPolicy,
) -> Vec<QueryResult> {
    result_roots(doc, index, model, query, policy)
        .into_iter()
        .map(|root| QueryResult::build(index, query, root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(xml: &str) -> (Document, XmlIndex, EntityModel) {
        let doc = Document::parse_str(xml).unwrap();
        let index = XmlIndex::build(&doc);
        let model = EntityModel::analyze(&doc);
        (doc, index, model)
    }

    #[test]
    fn lifts_connection_slca_to_entity() {
        // SLCA of (jeans, man) is the clothes node — an entity already; but
        // SLCA of (levis, jeans) is the store (name and merchandises are
        // siblings)… make a case where the SLCA is a connection node:
        // matches inside merchandises only.
        let (doc, index, model) = setup(
            "<stores>\
             <store><name>Levis</name>\
               <merchandises>\
                 <clothes><category>jeans</category></clothes>\
                 <clothes><category>skirt</category></clothes>\
               </merchandises>\
             </store>\
             <store><name>Gap</name>\
               <merchandises><clothes><category>jeans</category></clothes></merchandises>\
             </store>\
             </stores>",
        );
        let q = KeywordQuery::parse("jeans skirt");
        let slca_roots = result_roots(&doc, &index, &model, &q, RootPolicy::Slca);
        assert_eq!(slca_roots.len(), 1);
        assert_eq!(doc.label_str(slca_roots[0]), Some("merchandises"));
        let entity_roots = result_roots(&doc, &index, &model, &q, RootPolicy::Entity);
        assert_eq!(entity_roots.len(), 1);
        assert_eq!(doc.label_str(entity_roots[0]), Some("store"));
    }

    #[test]
    fn distinct_slcas_lifting_to_same_entity_merge() {
        let (doc, index, model) = setup(
            "<stores>\
             <store><name>Levis</name>\
               <merchandises>\
                 <clothes><category>jeans</category><fitting>man</fitting></clothes>\
                 <clothes><category>jeans</category><fitting>woman</fitting></clothes>\
               </merchandises>\
             </store>\
             <store><name>X</name>\
               <merchandises><clothes><category>hat</category></clothes></merchandises>\
             </store>\
             </stores>",
        );
        let q = KeywordQuery::parse("jeans");
        let slca_roots = result_roots(&doc, &index, &model, &q, RootPolicy::Slca);
        assert_eq!(slca_roots.len(), 2, "each jeans clothes is its own SLCA");
        let entity_roots = result_roots(&doc, &index, &model, &q, RootPolicy::Entity);
        // Both clothes are entities themselves, so they stay distinct...
        assert_eq!(entity_roots.len(), 2);
        assert!(entity_roots.iter().all(|&n| doc.label_str(n) == Some("clothes")));
    }

    #[test]
    fn no_entity_ancestor_keeps_slca() {
        let (doc, index, model) = setup("<a><b><c>k1</c><d>k2</d></b></a>");
        let q = KeywordQuery::parse("k1 k2");
        let roots = result_roots(&doc, &index, &model, &q, RootPolicy::Entity);
        assert_eq!(roots.len(), 1);
        assert_eq!(doc.label_str(roots[0]), Some("b"), "no entities anywhere; SLCA kept");
    }

    #[test]
    fn nested_lifted_roots_are_deduplicated_to_the_highest() {
        // Both an item and its containing store become roots after lifting;
        // the store (higher) must absorb the item.
        let (doc, index, model) = setup(
            "<r>\
             <store><name>tex</name>\
               <item><tag>tex</tag></item>\
               <item><tag>other</tag></item>\
             </store>\
             <store><name>o</name><item><tag>x</tag></item><item><tag>y</tag></item></store>\
             </r>",
        );
        let q = KeywordQuery::parse("tex");
        let roots = result_roots(&doc, &index, &model, &q, RootPolicy::Entity);
        assert_eq!(roots.len(), 1);
        assert_eq!(doc.label_str(roots[0]), Some("store"));
    }

    #[test]
    fn search_returns_scoped_results() {
        let (doc, index, model) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>ESprit</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let q = KeywordQuery::parse("store texas");
        let results = search(&doc, &index, &model, &q, RootPolicy::Entity);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(doc.label_str(r.root), Some("store"));
            assert!(r.covers_all_keywords());
        }
    }

    #[test]
    fn empty_query_has_no_results() {
        let (doc, index, model) = setup("<a>x</a>");
        let q = KeywordQuery::parse("");
        assert!(search(&doc, &index, &model, &q, RootPolicy::Entity).is_empty());
    }
}
