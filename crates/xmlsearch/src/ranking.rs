//! A simple deterministic relevance ranking for query results.
//!
//! The demo treats ranking as orthogonal ("eXtract can be used on top of
//! any XML keyword search engine" with its own ranking, §3/§4); this module
//! provides a reasonable default so the end-to-end pipeline and the demo
//! example can order results: more keyword matches are better, tighter
//! (smaller) results are better.

use extract_xml::Document;

use crate::result::QueryResult;

/// A query result with its score.
#[derive(Debug, Clone)]
pub struct RankedResult {
    /// The result.
    pub result: QueryResult,
    /// Higher is better.
    pub score: f64,
}

/// Score one result: log-damped match counts per keyword, normalized by the
/// log of the subtree size (an XRANK-flavoured compactness prior).
pub fn score(doc: &Document, result: &QueryResult) -> f64 {
    let tf: f64 = result
        .matches
        .iter()
        .map(|m| (1.0 + m.len() as f64).ln())
        .sum();
    let size = result.size(doc) as f64;
    tf / (1.0 + size.ln().max(0.0))
}

/// Rank results by descending score; ties break toward the earlier root in
/// document order, so the ordering is total and deterministic.
pub fn rank(doc: &Document, results: Vec<QueryResult>) -> Vec<RankedResult> {
    let mut ranked: Vec<RankedResult> = results
        .into_iter()
        .map(|result| RankedResult { score: score(doc, &result), result })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.result.root.cmp(&b.result.root))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::KeywordQuery;
    use extract_index::XmlIndex;
    use extract_xml::Document;

    #[test]
    fn more_matches_rank_higher() {
        let doc = Document::parse_str(
            "<r>\
             <s><t>k</t><t>k</t><t>k</t></s>\
             <s><t>k</t></s>\
             </r>",
        )
        .unwrap();
        let index = XmlIndex::build(&doc);
        let q = KeywordQuery::parse("k");
        let stores = doc.elements_with_label("s");
        let results: Vec<QueryResult> =
            stores.iter().map(|&s| QueryResult::build(&index, &q, s)).collect();
        let ranked = rank(&doc, results);
        assert_eq!(ranked[0].result.root, stores[0]);
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn smaller_results_rank_higher_at_equal_matches() {
        let doc = Document::parse_str(
            "<r>\
             <s><t>k</t><pad1/><pad2/><pad3/><pad4/><pad5/><pad6/></s>\
             <s><t>k</t></s>\
             </r>",
        )
        .unwrap();
        let index = XmlIndex::build(&doc);
        let q = KeywordQuery::parse("k");
        let stores = doc.elements_with_label("s");
        let results: Vec<QueryResult> =
            stores.iter().map(|&s| QueryResult::build(&index, &q, s)).collect();
        let ranked = rank(&doc, results);
        assert_eq!(ranked[0].result.root, stores[1], "the compact result wins");
    }

    #[test]
    fn ties_break_by_document_order() {
        let doc = Document::parse_str("<r><s><t>k</t></s><s><t>k</t></s></r>").unwrap();
        let index = XmlIndex::build(&doc);
        let q = KeywordQuery::parse("k");
        let stores = doc.elements_with_label("s");
        let results: Vec<QueryResult> = stores
            .iter()
            .rev() // feed them in reverse to prove sorting normalizes
            .map(|&s| QueryResult::build(&index, &q, s))
            .collect();
        let ranked = rank(&doc, results);
        assert_eq!(ranked[0].result.root, stores[0]);
    }
}
