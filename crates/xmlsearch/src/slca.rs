//! Smallest LCA (SLCA) computation.
//!
//! A node `v` is an **SLCA** of posting lists `S₁ … S_k` iff the subtree of
//! `v` contains at least one node from every list and no proper descendant
//! of `v` does the same. Three implementations:
//!
//! * [`slca_bruteforce`] — O(doc) bitmask propagation, the testing oracle;
//! * [`slca_indexed_lookup`] — *Indexed Lookup Eager*: anchored on the
//!   shortest list, finds each anchor's closest match in every other list
//!   by binary search (Xu & Papakonstantinou, SIGMOD 2005). Runs in
//!   `O(k · |S₁| · d · log |S_max|)`; the method of choice when one keyword
//!   is rare;
//! * [`slca_scan_eager`] — *Scan Eager*: the same per-anchor computation
//!   with monotone pointers instead of binary searches, `O(k·d·Σ|S_i|)`;
//!   better when list sizes are comparable.
//!
//! [`slca_auto`] picks between the two eager algorithms from the list-length
//! ratios (see [`choose_strategy`]), so callers on the hot query path don't
//! have to.
//!
//! All implementations exploit the preorder-ID invariant: `NodeId` order
//! *is* document order, so only LCA-depth computations touch Dewey labels.
//!
//! # Hot-path variants
//!
//! Every algorithm `slca_x` has a `slca_x_with(…, &mut SlcaScratch, &mut
//! Vec<NodeId>)` twin that is **allocation-free on the per-anchor path**:
//! intermediate candidates and monotone pointers live in a caller-owned
//! [`SlcaScratch`] and results are written into a caller-owned output
//! vector, so a server answering many queries reuses the same buffers.
//! List arguments are generic over `AsRef<[NodeId]>`: pass `&[Vec<NodeId>]`
//! (owned lists) or `&[&[NodeId]]` (borrowed straight from the inverted
//! index, zero copies).

use extract_index::DeweyStore;
use extract_xml::{Document, NodeId};

use crate::mask::Mask;

/// Reusable buffers for the eager SLCA algorithms. One instance per thread
/// (or per query loop); `Default::default()` starts empty and the buffers
/// grow to the high-water mark of the queries they serve.
#[derive(Debug, Default)]
pub struct SlcaScratch {
    /// Per-anchor candidate SLCAs, before ancestor removal.
    candidates: Vec<NodeId>,
    /// Monotone per-list cursors (Scan Eager only).
    pointers: Vec<usize>,
}

impl SlcaScratch {
    /// A scratch with all buffers empty.
    pub fn new() -> SlcaScratch {
        SlcaScratch::default()
    }
}

/// Which eager SLCA algorithm [`slca_auto`] would run for given lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlcaStrategy {
    /// Binary-search lookups anchored on the rarest keyword.
    IndexedLookup,
    /// Monotone pointer scan over all lists.
    ScanEager,
}

/// Pick the cheaper eager algorithm from list lengths alone. Indexed
/// Lookup costs roughly `(k−1) · |S_min| · log₂ |S_max|` comparisons while
/// Scan Eager walks every list once (`Σ|S_i|`); we compare the two
/// estimates. With a rare anchor (the common interactive case) Indexed
/// Lookup wins; with comparable list sizes Scan Eager's linear pointers
/// beat repeated binary searches.
pub fn choose_strategy<L: AsRef<[NodeId]>>(lists: &[L]) -> SlcaStrategy {
    let k = lists.len();
    if k < 2 {
        return SlcaStrategy::ScanEager;
    }
    let min = lists.iter().map(|l| l.as_ref().len()).min().unwrap_or(0);
    let max = lists.iter().map(|l| l.as_ref().len()).max().unwrap_or(0);
    let total: usize = lists.iter().map(|l| l.as_ref().len()).sum();
    let log_max = (usize::BITS - max.leading_zeros()) as usize; // ⌈log₂(max+1)⌉
    let indexed_cost = (k - 1).saturating_mul(min).saturating_mul(log_max.max(1));
    if indexed_cost < total {
        SlcaStrategy::IndexedLookup
    } else {
        SlcaStrategy::ScanEager
    }
}

/// Compute SLCAs by brute force (testing oracle). `lists` holds the match
/// nodes per keyword; an empty keyword list makes the result empty. Any
/// keyword count is supported (k ≤ 64 runs on inlined `u64` masks, wider
/// queries on boxed masks — the old 64-list `assert!` made a degenerate
/// many-keyword query a library panic).
pub fn slca_bruteforce<L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.as_ref().is_empty()) {
        return Vec::new();
    }
    if lists.len() <= 64 {
        slca_bruteforce_impl::<u64, L>(doc, lists)
    } else {
        slca_bruteforce_impl::<Box<[u64]>, L>(doc, lists)
    }
}

fn slca_bruteforce_impl<M: Mask, L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    let k = lists.len();
    // Dense per-node keyword masks (NodeIds are dense preorder indexes, so
    // flat vectors beat HashMaps here).
    let mut mask: Vec<M> = vec![M::empty(k); doc.len()];
    for (i, list) in lists.iter().enumerate() {
        for &n in list.as_ref() {
            mask[n.index()].or_assign(&M::single(k, i));
        }
    }
    // Propagate masks upward. Iterating IDs in reverse visits children
    // before parents (preorder invariant).
    let mut subtree_mask: Vec<M> = vec![M::empty(k); doc.len()];
    let mut has_full_descendant: Vec<bool> = vec![false; doc.len()];
    let mut out = Vec::new();
    for idx in (0..doc.len()).rev() {
        let n = NodeId::from_index(idx);
        let mut m = mask[idx].clone();
        let mut full_desc = false;
        for c in doc.children(n) {
            let cm = &subtree_mask[c.index()];
            full_desc |= has_full_descendant[c.index()] || cm.is_full(k);
            m.or_assign(cm);
        }
        if m.is_full(k) && !full_desc && doc.node(n).is_element() {
            out.push(n);
        }
        subtree_mask[idx] = m;
        has_full_descendant[idx] = full_desc;
    }
    out.reverse();
    out
}

/// Indexed Lookup Eager. `lists` must be sorted in document order (as the
/// inverted index produces them).
pub fn slca_indexed_lookup<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    slca_indexed_lookup_with(doc, store, lists, &mut SlcaScratch::new(), &mut out);
    out
}

/// [`slca_indexed_lookup`] into caller-owned buffers: `out` is cleared and
/// receives the SLCAs; no other allocation happens once `scratch` has
/// warmed up.
pub fn slca_indexed_lookup_with<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
    scratch: &mut SlcaScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let Some(anchor_idx) = prepare(lists) else {
        return;
    };
    let anchors = lists[anchor_idx].as_ref();
    scratch.candidates.clear();
    scratch.candidates.reserve(anchors.len());
    for &v in anchors {
        let mut u = v;
        for (li, list) in lists.iter().enumerate() {
            if li == anchor_idx {
                continue;
            }
            let m = closest_by_binary_search(store, list.as_ref(), u);
            u = lca_node(doc, store, u, m);
        }
        scratch.candidates.push(u);
    }
    remove_ancestors(store, &mut scratch.candidates, out);
}

/// Scan Eager. `lists` must be sorted in document order.
pub fn slca_scan_eager<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    slca_scan_eager_with(doc, store, lists, &mut SlcaScratch::new(), &mut out);
    out
}

/// [`slca_scan_eager`] into caller-owned buffers (see
/// [`slca_indexed_lookup_with`]).
pub fn slca_scan_eager_with<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
    scratch: &mut SlcaScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let Some(anchor_idx) = prepare(lists) else {
        return;
    };
    let anchors = lists[anchor_idx].as_ref();
    // One monotone pointer per non-anchor list.
    scratch.pointers.clear();
    scratch.pointers.resize(lists.len(), 0);
    scratch.candidates.clear();
    scratch.candidates.reserve(anchors.len());
    for &v in anchors {
        let mut u = v;
        for (li, list) in lists.iter().enumerate() {
            if li == anchor_idx {
                continue;
            }
            let list = list.as_ref();
            // Advance to the first node ≥ the *anchor* (not the shrinking
            // lca) so the pointer stays monotone across anchors.
            let p = &mut scratch.pointers[li];
            while *p < list.len() && list[*p] < v {
                *p += 1;
            }
            let m = closest_of(store, list, *p, u);
            u = lca_node(doc, store, u, m);
        }
        scratch.candidates.push(u);
    }
    remove_ancestors(store, &mut scratch.candidates, out);
}

/// Eager SLCA with the algorithm chosen by [`choose_strategy`].
pub fn slca_auto<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    slca_auto_with(doc, store, lists, &mut SlcaScratch::new(), &mut out);
    out
}

/// [`slca_auto`] into caller-owned buffers.
pub fn slca_auto_with<L: AsRef<[NodeId]>>(
    doc: &Document,
    store: &DeweyStore,
    lists: &[L],
    scratch: &mut SlcaScratch,
    out: &mut Vec<NodeId>,
) {
    match choose_strategy(lists) {
        SlcaStrategy::IndexedLookup => {
            slca_indexed_lookup_with(doc, store, lists, scratch, out)
        }
        SlcaStrategy::ScanEager => slca_scan_eager_with(doc, store, lists, scratch, out),
    }
}

/// Shared validation: non-empty lists; returns the index of the shortest
/// list (the anchor).
fn prepare<L: AsRef<[NodeId]>>(lists: &[L]) -> Option<usize> {
    if lists.is_empty() || lists.iter().any(|l| l.as_ref().is_empty()) {
        return None;
    }
    lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.as_ref().len())
        .map(|(i, _)| i)
}

/// Among `list[p-1]` and `list[p]`, the node with the deepest LCA with `u`.
fn closest_of(store: &DeweyStore, list: &[NodeId], p: usize, u: NodeId) -> NodeId {
    let pred = p.checked_sub(1).map(|i| list[i]);
    let succ = list.get(p).copied();
    match (pred, succ) {
        (Some(a), Some(b)) => {
            if store.lca_depth(a, u) >= store.lca_depth(b, u) {
                a
            } else {
                b
            }
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => unreachable!("lists are non-empty"),
    }
}

/// Binary-search variant of [`closest_of`] (NodeId order == document order).
fn closest_by_binary_search(store: &DeweyStore, list: &[NodeId], u: NodeId) -> NodeId {
    let p = list.partition_point(|&n| n < u);
    closest_of(store, list, p, u)
}

/// LCA of two nodes; prefers walking the shallower distance using the
/// store's depths.
fn lca_node(doc: &Document, store: &DeweyStore, a: NodeId, b: NodeId) -> NodeId {
    if a == b {
        return a;
    }
    let target = store.lca_depth(a, b);
    let mut x = a;
    for _ in 0..(store.depth(a) - target) {
        x = doc.parent(x).expect("depth accounting");
    }
    x
}

/// Sort `candidates`, deduplicate, and write to `out` every node that has
/// no candidate descendant (SLCAs are the *deepest* full-containment
/// nodes). `out` doubles as the keep-stack, so the pass is a single scan.
fn remove_ancestors(store: &DeweyStore, candidates: &mut Vec<NodeId>, out: &mut Vec<NodeId>) {
    candidates.sort_unstable();
    candidates.dedup();
    out.reserve(candidates.len());
    for &c in candidates.iter() {
        while let Some(&last) = out.last() {
            if store.is_ancestor_or_self(last, c) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_index::XmlIndex;

    fn setup(xml: &str) -> (Document, XmlIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let index = XmlIndex::build(&doc);
        (doc, index)
    }

    fn lists(index: &XmlIndex, keywords: &[&str]) -> Vec<Vec<NodeId>> {
        keywords.iter().map(|k| index.postings(k).to_vec()).collect()
    }

    fn all_three(doc: &Document, index: &XmlIndex, keywords: &[&str]) -> Vec<NodeId> {
        let ls = lists(index, keywords);
        let brute = slca_bruteforce(doc, &ls);
        let ile = slca_indexed_lookup(doc, index.dewey_store(), &ls);
        let se = slca_scan_eager(doc, index.dewey_store(), &ls);
        let auto = slca_auto(doc, index.dewey_store(), &ls);
        assert_eq!(brute, ile, "indexed lookup disagrees with brute force");
        assert_eq!(brute, se, "scan eager disagrees with brute force");
        assert_eq!(brute, auto, "auto disagrees with brute force");
        // Borrowed-slice lists must produce the same answer with zero copies.
        let borrowed: Vec<&[NodeId]> =
            keywords.iter().map(|k| index.postings(k)).collect();
        assert_eq!(brute, slca_auto(doc, index.dewey_store(), &borrowed));
        brute
    }

    #[test]
    fn single_result_under_shared_store() {
        let (doc, index) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let r = all_three(&doc, &index, &["levis", "texas"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("store"));
    }

    #[test]
    fn two_independent_results() {
        let (doc, index) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>ESprit</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let r = all_three(&doc, &index, &["store", "texas"]);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&n| doc.label_str(n) == Some("store")));
    }

    #[test]
    fn lca_floats_to_root_when_matches_are_spread() {
        let (doc, index) = setup(
            "<r><a><x>k1</x></a><b><y>k2</y></b></r>",
        );
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], doc.root());
    }

    #[test]
    fn slca_excludes_ancestor_of_deeper_slca() {
        // Inner node contains both keywords; the root also does (via the
        // inner node plus its own copy) but is not smallest.
        let (doc, index) = setup(
            "<r><inner><p>k1</p><q>k2</q></inner><extra>k1</extra></r>",
        );
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("inner"));
    }

    #[test]
    fn single_keyword_slca_is_deepest_matches() {
        let (doc, index) = setup("<a><b>k</b><c><d>k</d></c></a>");
        let r = all_three(&doc, &index, &["k"]);
        // b and d match; neither has a matching descendant.
        assert_eq!(r.len(), 2);
        let labels: Vec<_> = r.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["b", "d"]);
    }

    #[test]
    fn keyword_matching_label_and_value() {
        let (doc, index) = setup(
            "<stores><store><state>Texas</state></store><store><state>Ohio</state></store></stores>",
        );
        let r = all_three(&doc, &index, &["store", "texas"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("store"));
    }

    #[test]
    fn missing_keyword_yields_empty() {
        let (doc, index) = setup("<a><b>k1</b></a>");
        assert!(all_three(&doc, &index, &["k1", "zzz"]).is_empty());
    }

    #[test]
    fn nested_matches_on_one_path() {
        // Matches are ancestor/descendant of each other.
        let (doc, index) = setup("<k1><mid><k2>x</k2></mid></k1>");
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("k1"));
    }

    #[test]
    fn same_node_matches_all_keywords() {
        let (doc, index) = setup("<r><item>red fox</item><item>red</item></r>");
        let r = all_three(&doc, &index, &["red", "fox"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("item"));
    }

    #[test]
    fn three_keywords() {
        let (doc, index) = setup(
            "<retailers><retailer><state>Texas</state><product>apparel</product></retailer>\
             <retailer><state>Texas</state><product>food</product></retailer></retailers>",
        );
        let r = all_three(&doc, &index, &["texas", "apparel", "retailer"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("retailer"));
    }

    #[test]
    fn results_are_in_document_order() {
        let (doc, index) = setup(
            "<r><s><a>k</a></s><s><a>k</a></s><s><a>k</a></s></r>",
        );
        let r = all_three(&doc, &index, &["a", "k"]);
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_query_is_empty() {
        let (doc, index) = setup("<a>x</a>");
        assert!(all_three(&doc, &index, &[]).is_empty());
        let _ = index;
        let _ = doc;
    }

    #[test]
    fn scratch_reuse_across_queries_is_clean() {
        // Run two different queries through the same scratch/output buffers
        // and check the second result carries nothing over from the first.
        let (doc, index) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>ESprit</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let mut scratch = SlcaScratch::new();
        let mut out = Vec::new();
        let q1 = lists(&index, &["store", "texas"]);
        slca_scan_eager_with(&doc, index.dewey_store(), &q1, &mut scratch, &mut out);
        assert_eq!(out.len(), 2);
        let q2 = lists(&index, &["gap", "ohio"]);
        slca_scan_eager_with(&doc, index.dewey_store(), &q2, &mut scratch, &mut out);
        assert_eq!(out, slca_bruteforce(&doc, &q2));
        let q3 = lists(&index, &["levis"]);
        slca_indexed_lookup_with(&doc, index.dewey_store(), &q3, &mut scratch, &mut out);
        assert_eq!(out, slca_bruteforce(&doc, &q3));
    }

    #[test]
    fn strategy_prefers_indexed_lookup_for_rare_anchor() {
        // One singleton list vs a huge list: binary searches win.
        let rare = vec![NodeId::from_index(5)];
        let common: Vec<NodeId> = (0..10_000).map(NodeId::from_index).collect();
        assert_eq!(
            choose_strategy(&[rare, common]),
            SlcaStrategy::IndexedLookup
        );
    }

    #[test]
    fn degenerate_empty_posting_list_yields_empty_everywhere() {
        // One keyword with no matches: every variant (owned or scratch)
        // must return empty without touching the other lists.
        let (doc, index) = setup("<a><b>k1</b><c>k2</c></a>");
        let lists: Vec<Vec<NodeId>> =
            vec![index.postings("k1").to_vec(), Vec::new(), index.postings("k2").to_vec()];
        assert!(slca_bruteforce(&doc, &lists).is_empty());
        assert!(slca_indexed_lookup(&doc, index.dewey_store(), &lists).is_empty());
        assert!(slca_scan_eager(&doc, index.dewey_store(), &lists).is_empty());
        let mut scratch = SlcaScratch::new();
        let mut out = vec![NodeId::from_index(1)]; // stale content must be cleared
        slca_auto_with(&doc, index.dewey_store(), &lists, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degenerate_single_keyword_all_variants_agree() {
        let (doc, index) = setup("<a><b>k</b><c><d>k</d><e><f>k</f></e></c></a>");
        let r = all_three(&doc, &index, &["k"]);
        // Deepest matches only: b, d, f.
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|&n| !doc
            .children(n)
            .any(|c| r.contains(&c))));
    }

    #[test]
    fn degenerate_identical_lists_pick_the_deepest_matches() {
        // All lists identical (e.g. the same keyword repeated through
        // from_keywords aliases, or two keywords matching the same nodes):
        // SLCA must equal the single-list answer, whichever list anchors.
        let (doc, index) = setup("<a><b>k</b><c><d>k</d></c></a>");
        let one = lists(&index, &["k"]);
        let three: Vec<Vec<NodeId>> = vec![one[0].clone(), one[0].clone(), one[0].clone()];
        let expected = slca_bruteforce(&doc, &one);
        assert_eq!(slca_bruteforce(&doc, &three), expected);
        assert_eq!(slca_indexed_lookup(&doc, index.dewey_store(), &three), expected);
        assert_eq!(slca_scan_eager(&doc, index.dewey_store(), &three), expected);
        assert_eq!(slca_auto(&doc, index.dewey_store(), &three), expected);
    }

    #[test]
    fn bruteforce_handles_more_than_64_keywords() {
        // Regression: the oracle used to `assert!(lists.len() <= 64)`, so a
        // degenerate many-keyword query was a library panic. Build a
        // document whose root is the only node containing all 70 keywords.
        let body: String = (0..70).map(|i| format!("<w>t{i}</w>")).collect();
        let (doc, index) = setup(&format!("<r>{body}</r>"));
        let keywords: Vec<String> = (0..70).map(|i| format!("t{i}")).collect();
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        assert_eq!(lists.len(), 70);
        let brute = slca_bruteforce(&doc, &lists);
        assert_eq!(brute, vec![doc.root()]);
        // The eager algorithms never had the cap; they must still agree.
        assert_eq!(slca_indexed_lookup(&doc, index.dewey_store(), &lists), brute);
        assert_eq!(slca_scan_eager(&doc, index.dewey_store(), &lists), brute);
        assert_eq!(slca_auto(&doc, index.dewey_store(), &lists), brute);
    }

    #[test]
    fn bruteforce_at_exactly_64_keywords_boundary() {
        let body: String = (0..64).map(|i| format!("<w>t{i}</w>")).collect();
        let (doc, index) = setup(&format!("<r>{body}</r>"));
        let lists: Vec<Vec<NodeId>> =
            (0..64).map(|i| index.postings(&format!("t{i}")).to_vec()).collect();
        assert_eq!(slca_bruteforce(&doc, &lists), vec![doc.root()]);
    }

    #[test]
    fn strategy_prefers_scan_eager_for_comparable_lists() {
        let a: Vec<NodeId> = (0..1_000).map(NodeId::from_index).collect();
        let b: Vec<NodeId> = (0..1_200).map(NodeId::from_index).collect();
        assert_eq!(choose_strategy(&[a, b]), SlcaStrategy::ScanEager);
        // Single-list queries have no lookups to do at all.
        let single: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
        assert_eq!(choose_strategy(&[single]), SlcaStrategy::ScanEager);
    }
}
