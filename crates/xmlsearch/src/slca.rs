//! Smallest LCA (SLCA) computation.
//!
//! A node `v` is an **SLCA** of posting lists `S₁ … S_k` iff the subtree of
//! `v` contains at least one node from every list and no proper descendant
//! of `v` does the same. Three implementations:
//!
//! * [`slca_bruteforce`] — O(doc) bitmask propagation, the testing oracle;
//! * [`slca_indexed_lookup`] — *Indexed Lookup Eager*: anchored on the
//!   shortest list, finds each anchor's closest match in every other list
//!   by binary search (Xu & Papakonstantinou, SIGMOD 2005). Runs in
//!   `O(k · |S₁| · d · log |S_max|)`; the method of choice when one keyword
//!   is rare;
//! * [`slca_scan_eager`] — *Scan Eager*: the same per-anchor computation
//!   with monotone pointers instead of binary searches, `O(k·d·Σ|S_i|)`;
//!   better when list sizes are comparable.
//!
//! All three exploit the preorder-ID invariant: `NodeId` order *is*
//! document order, so only LCA-depth computations touch Dewey labels.

use std::collections::HashMap;

use extract_index::DeweyStore;
use extract_xml::{Document, NodeId};

/// Compute SLCAs by brute force (testing oracle). `lists` holds the match
/// nodes per keyword; an empty keyword list makes the result empty.
pub fn slca_bruteforce(doc: &Document, lists: &[Vec<NodeId>]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    assert!(lists.len() <= 64, "brute force supports up to 64 keywords");
    let full: u64 = if lists.len() == 64 { !0 } else { (1u64 << lists.len()) - 1 };
    let mut mask: HashMap<NodeId, u64> = HashMap::new();
    for (i, list) in lists.iter().enumerate() {
        for &n in list {
            *mask.entry(n).or_insert(0) |= 1 << i;
        }
    }
    // Propagate masks upward. Iterating IDs in reverse visits children
    // before parents (preorder invariant).
    let mut subtree_mask: Vec<u64> = vec![0; doc.len()];
    let mut has_full_descendant: Vec<bool> = vec![false; doc.len()];
    let mut out = Vec::new();
    for idx in (0..doc.len()).rev() {
        let n = NodeId::from_index(idx);
        let mut m = mask.get(&n).copied().unwrap_or(0);
        let mut full_desc = false;
        for c in doc.children(n) {
            m |= subtree_mask[c.index()];
            full_desc |= has_full_descendant[c.index()] || subtree_mask[c.index()] == full;
        }
        subtree_mask[idx] = m;
        has_full_descendant[idx] = full_desc;
        if m == full && !full_desc && doc.node(n).is_element() {
            out.push(n);
        }
    }
    out.reverse();
    out
}

/// Indexed Lookup Eager. `lists` must be sorted in document order (as the
/// inverted index produces them).
pub fn slca_indexed_lookup(doc: &Document, store: &DeweyStore, lists: &[Vec<NodeId>]) -> Vec<NodeId> {
    let Some(anchor_idx) = prepare(lists) else {
        return Vec::new();
    };
    let anchors = &lists[anchor_idx];
    let mut candidates = Vec::with_capacity(anchors.len());
    for &v in anchors {
        let mut u = v;
        for (li, list) in lists.iter().enumerate() {
            if li == anchor_idx {
                continue;
            }
            let m = closest_by_binary_search(store, list, u);
            u = lca_node(doc, store, u, m);
        }
        candidates.push(u);
    }
    remove_ancestors(store, candidates)
}

/// Scan Eager. `lists` must be sorted in document order.
pub fn slca_scan_eager(doc: &Document, store: &DeweyStore, lists: &[Vec<NodeId>]) -> Vec<NodeId> {
    let Some(anchor_idx) = prepare(lists) else {
        return Vec::new();
    };
    let anchors = &lists[anchor_idx];
    // One monotone pointer per non-anchor list.
    let mut pointers: Vec<usize> = vec![0; lists.len()];
    let mut candidates = Vec::with_capacity(anchors.len());
    for &v in anchors {
        let mut u = v;
        for (li, list) in lists.iter().enumerate() {
            if li == anchor_idx {
                continue;
            }
            // Advance to the first node ≥ the *anchor* (not the shrinking
            // lca) so the pointer stays monotone across anchors.
            let p = &mut pointers[li];
            while *p < list.len() && list[*p] < v {
                *p += 1;
            }
            let m = closest_of(store, list, *p, u);
            u = lca_node(doc, store, u, m);
        }
        candidates.push(u);
    }
    remove_ancestors(store, candidates)
}

/// Shared validation: non-empty lists; returns the index of the shortest
/// list (the anchor).
fn prepare(lists: &[Vec<NodeId>]) -> Option<usize> {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return None;
    }
    lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
}

/// Among `list[p-1]` and `list[p]`, the node with the deepest LCA with `u`.
fn closest_of(store: &DeweyStore, list: &[NodeId], p: usize, u: NodeId) -> NodeId {
    let pred = p.checked_sub(1).map(|i| list[i]);
    let succ = list.get(p).copied();
    match (pred, succ) {
        (Some(a), Some(b)) => {
            if store.lca_depth(a, u) >= store.lca_depth(b, u) {
                a
            } else {
                b
            }
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => unreachable!("lists are non-empty"),
    }
}

/// Binary-search variant of [`closest_of`] (NodeId order == document order).
fn closest_by_binary_search(store: &DeweyStore, list: &[NodeId], u: NodeId) -> NodeId {
    let p = list.partition_point(|&n| n < u);
    closest_of(store, list, p, u)
}

/// LCA of two nodes; prefers walking the shallower distance using the
/// store's depths.
fn lca_node(doc: &Document, store: &DeweyStore, a: NodeId, b: NodeId) -> NodeId {
    if a == b {
        return a;
    }
    let target = store.lca_depth(a, b);
    let mut x = a;
    for _ in 0..(store.depth(a) - target) {
        x = doc.parent(x).expect("depth accounting");
    }
    x
}

/// Sort candidates, deduplicate, and drop every node that has a candidate
/// descendant (SLCAs are the *deepest* full-containment nodes).
fn remove_ancestors(store: &DeweyStore, mut candidates: Vec<NodeId>) -> Vec<NodeId> {
    candidates.sort_unstable();
    candidates.dedup();
    let mut keep: Vec<NodeId> = Vec::with_capacity(candidates.len());
    for c in candidates {
        while let Some(&last) = keep.last() {
            if store.is_ancestor_or_self(last, c) {
                keep.pop();
            } else {
                break;
            }
        }
        keep.push(c);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_index::XmlIndex;

    fn setup(xml: &str) -> (Document, XmlIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let index = XmlIndex::build(&doc);
        (doc, index)
    }

    fn lists(index: &XmlIndex, keywords: &[&str]) -> Vec<Vec<NodeId>> {
        keywords.iter().map(|k| index.postings(k).to_vec()).collect()
    }

    fn all_three(doc: &Document, index: &XmlIndex, keywords: &[&str]) -> Vec<NodeId> {
        let ls = lists(index, keywords);
        let brute = slca_bruteforce(doc, &ls);
        let ile = slca_indexed_lookup(doc, index.dewey_store(), &ls);
        let se = slca_scan_eager(doc, index.dewey_store(), &ls);
        assert_eq!(brute, ile, "indexed lookup disagrees with brute force");
        assert_eq!(brute, se, "scan eager disagrees with brute force");
        brute
    }

    #[test]
    fn single_result_under_shared_store() {
        let (doc, index) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let r = all_three(&doc, &index, &["levis", "texas"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("store"));
    }

    #[test]
    fn two_independent_results() {
        let (doc, index) = setup(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>ESprit</name><state>Texas</state></store>\
             <store><name>Gap</name><state>Ohio</state></store>\
             </stores>",
        );
        let r = all_three(&doc, &index, &["store", "texas"]);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&n| doc.label_str(n) == Some("store")));
    }

    #[test]
    fn lca_floats_to_root_when_matches_are_spread() {
        let (doc, index) = setup(
            "<r><a><x>k1</x></a><b><y>k2</y></b></r>",
        );
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], doc.root());
    }

    #[test]
    fn slca_excludes_ancestor_of_deeper_slca() {
        // Inner node contains both keywords; the root also does (via the
        // inner node plus its own copy) but is not smallest.
        let (doc, index) = setup(
            "<r><inner><p>k1</p><q>k2</q></inner><extra>k1</extra></r>",
        );
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("inner"));
    }

    #[test]
    fn single_keyword_slca_is_deepest_matches() {
        let (doc, index) = setup("<a><b>k</b><c><d>k</d></c></a>");
        let r = all_three(&doc, &index, &["k"]);
        // b and d match; neither has a matching descendant.
        assert_eq!(r.len(), 2);
        let labels: Vec<_> = r.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["b", "d"]);
    }

    #[test]
    fn keyword_matching_label_and_value() {
        let (doc, index) = setup(
            "<stores><store><state>Texas</state></store><store><state>Ohio</state></store></stores>",
        );
        let r = all_three(&doc, &index, &["store", "texas"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("store"));
    }

    #[test]
    fn missing_keyword_yields_empty() {
        let (doc, index) = setup("<a><b>k1</b></a>");
        assert!(all_three(&doc, &index, &["k1", "zzz"]).is_empty());
    }

    #[test]
    fn nested_matches_on_one_path() {
        // Matches are ancestor/descendant of each other.
        let (doc, index) = setup("<k1><mid><k2>x</k2></mid></k1>");
        let r = all_three(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("k1"));
    }

    #[test]
    fn same_node_matches_all_keywords() {
        let (doc, index) = setup("<r><item>red fox</item><item>red</item></r>");
        let r = all_three(&doc, &index, &["red", "fox"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("item"));
    }

    #[test]
    fn three_keywords() {
        let (doc, index) = setup(
            "<retailers><retailer><state>Texas</state><product>apparel</product></retailer>\
             <retailer><state>Texas</state><product>food</product></retailer></retailers>",
        );
        let r = all_three(&doc, &index, &["texas", "apparel", "retailer"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("retailer"));
    }

    #[test]
    fn results_are_in_document_order() {
        let (doc, index) = setup(
            "<r><s><a>k</a></s><s><a>k</a></s><s><a>k</a></s></r>",
        );
        let r = all_three(&doc, &index, &["a", "k"]);
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_query_is_empty() {
        let (doc, index) = setup("<a>x</a>");
        assert!(all_three(&doc, &index, &[]).is_empty());
        let _ = index;
        let _ = doc;
    }
}
