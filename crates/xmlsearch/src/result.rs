//! Query results: a result root plus the per-keyword matches inside it.
//!
//! Snippet generation is "orthogonal to query result generation" (paper §4)
//! — a [`QueryResult`] is deliberately just a view: the root [`NodeId`] in
//! the original document and, per query keyword, the matching element nodes
//! within the root's subtree. The subtree is only materialized on demand
//! ([`QueryResult::materialize`]); the statistics and the snippet selector
//! work in place on the original document.

use extract_index::XmlIndex;
use extract_xml::{Document, NodeId};

use crate::query::KeywordQuery;

/// One query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The result root in the original document.
    pub root: NodeId,
    /// For each query keyword (in query order), the matching element nodes
    /// inside `root`'s subtree, in document order.
    pub matches: Vec<Vec<NodeId>>,
}

impl QueryResult {
    /// Build a result for `root`: restrict each keyword's postings to the
    /// subtree of `root` (binary search + ancestor filter; postings are in
    /// document order).
    pub fn build(index: &XmlIndex, query: &KeywordQuery, root: NodeId) -> QueryResult {
        let store = index.dewey_store();
        let matches = query
            .keywords()
            .iter()
            .map(|k| {
                let postings = index.postings(k);
                let start = postings.partition_point(|&n| n < root);
                postings[start..]
                    .iter()
                    .copied()
                    .take_while(|&n| store.is_ancestor_or_self(root, n))
                    .collect()
            })
            .collect();
        QueryResult { root, matches }
    }

    /// Total number of match nodes (all keywords).
    pub fn match_count(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }

    /// Whether every keyword has at least one match in this result.
    pub fn covers_all_keywords(&self) -> bool {
        !self.matches.is_empty() && self.matches.iter().all(|m| !m.is_empty())
    }

    /// Number of nodes in the result subtree.
    pub fn size(&self, doc: &Document) -> usize {
        doc.subtree_size(self.root)
    }

    /// Number of element→element edges in the result subtree (the paper's
    /// size measure).
    pub fn element_edges(&self, doc: &Document) -> usize {
        doc.element_edges(self.root)
    }

    /// Copy the full result subtree into a standalone document (used for
    /// display; algorithms work in place).
    pub fn materialize(&self, doc: &Document) -> Document {
        let keep = doc.subtree_elements(self.root).collect();
        let (result, _) = doc.project(self.root, &keep);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Document, XmlIndex, KeywordQuery) {
        let doc = Document::parse_str(
            "<stores>\
             <store><name>Levis</name><state>Texas</state></store>\
             <store><name>ESprit</name><state>Texas</state></store>\
             </stores>",
        )
        .unwrap();
        let index = XmlIndex::build(&doc);
        let query = KeywordQuery::parse("store texas");
        (doc, index, query)
    }

    #[test]
    fn matches_are_scoped_to_the_subtree() {
        let (doc, index, query) = setup();
        let store1 = d_store(&doc, 0);
        let r = QueryResult::build(&index, &query, store1);
        assert_eq!(r.matches.len(), 2);
        assert_eq!(r.matches[0], vec![store1], "keyword `store` matches the root itself");
        assert_eq!(r.matches[1].len(), 1, "only store1's own texas");
        assert!(doc.is_ancestor_or_self(store1, r.matches[1][0]));
        assert!(r.covers_all_keywords());
        assert_eq!(r.match_count(), 2);
    }

    #[test]
    fn root_scope_sees_everything() {
        let (doc, index, query) = setup();
        let r = QueryResult::build(&index, &query, doc.root());
        assert_eq!(r.matches[0].len(), 2);
        assert_eq!(r.matches[1].len(), 2);
    }

    #[test]
    fn missing_keyword_leaves_empty_list() {
        let (doc, index, _) = setup();
        let q = KeywordQuery::parse("store dallas");
        let r = QueryResult::build(&index, &q, doc.root());
        assert!(!r.covers_all_keywords());
        assert!(r.matches[1].is_empty());
    }

    #[test]
    fn materialize_copies_the_subtree() {
        let (doc, index, query) = setup();
        let store2 = d_store(&doc, 1);
        let r = QueryResult::build(&index, &query, store2);
        let m = r.materialize(&doc);
        assert_eq!(m.label_str(m.root()), Some("store"));
        assert_eq!(m.element_count(), 3); // store, name, state
        assert!(m.to_xml_string().contains("ESprit"));
        assert!(!m.to_xml_string().contains("Levis"));
    }

    #[test]
    fn sizes() {
        let (doc, index, query) = setup();
        let store1 = d_store(&doc, 0);
        let r = QueryResult::build(&index, &query, store1);
        assert_eq!(r.element_edges(&doc), 2);
        assert_eq!(r.size(&doc), 5); // 3 elements + 2 text
    }

    fn d_store(doc: &Document, i: usize) -> NodeId {
        doc.elements_with_label("store")[i]
    }
}
