//! Exclusive LCA (ELCA) computation — the result semantics of XRANK.
//!
//! A node `v` is an **ELCA** of posting lists `S₁ … S_k` iff the subtree of
//! `v` still contains at least one node of every list *after pruning the
//! subtrees of all descendants of `v` that themselves contain every list*.
//! Every SLCA is an ELCA; ELCAs additionally include ancestors that have
//! their own, independent witnesses for each keyword.
//!
//! [`elca_stack`] implements the single-pass Dewey-stack algorithm in the
//! style of XRANK's DIL (Guo et al., SIGMOD 2003): match nodes stream in
//! document order; a stack mirrors the root-to-current path carrying, per
//! path node, (a) the keyword mask *countable* for it (matches not hidden
//! below a fully-matched descendant) and (b) whether some descendant
//! already contained all keywords. [`elca_bruteforce`] is the oracle.

use std::collections::HashMap;

use extract_xml::{Document, NodeId};

use crate::mask::Mask;

/// Brute-force ELCA (testing oracle): quadratic in the worst case. Any
/// keyword count is supported (see [`crate::mask`]).
pub fn elca_bruteforce<L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.as_ref().is_empty()) {
        return Vec::new();
    }
    if lists.len() <= 64 {
        elca_bruteforce_impl::<u64, L>(doc, lists)
    } else {
        elca_bruteforce_impl::<Box<[u64]>, L>(doc, lists)
    }
}

fn elca_bruteforce_impl<M: Mask, L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    let k = lists.len();
    let mut own: HashMap<NodeId, M> = HashMap::new();
    for (i, list) in lists.iter().enumerate() {
        for &n in list.as_ref() {
            own.entry(n).or_insert_with(|| M::empty(k)).or_assign(&M::single(k, i));
        }
    }
    // subtree_mask[v]: all keywords under v (no exclusion).
    let mut subtree_mask: Vec<M> = vec![M::empty(k); doc.len()];
    for idx in (0..doc.len()).rev() {
        let n = NodeId::from_index(idx);
        let mut m = own.get(&n).cloned().unwrap_or_else(|| M::empty(k));
        for c in doc.children(n) {
            m.or_assign(&subtree_mask[c.index()]);
        }
        subtree_mask[idx] = m;
    }
    // countable_mask[v]: own mask plus child masks, where a child whose
    // subtree contains all keywords contributes nothing (its whole subtree
    // is pruned — recursively, pruning the *highest* full descendants).
    let mut countable: Vec<M> = vec![M::empty(k); doc.len()];
    for idx in (0..doc.len()).rev() {
        let n = NodeId::from_index(idx);
        let mut m = own.get(&n).cloned().unwrap_or_else(|| M::empty(k));
        for c in doc.children(n) {
            if !subtree_mask[c.index()].is_full(k) {
                let cm = countable[c.index()].clone();
                m.or_assign(&cm);
            }
        }
        countable[idx] = m;
    }
    (0..doc.len())
        .map(NodeId::from_index)
        .filter(|&n| doc.node(n).is_element() && countable[n.index()].is_full(k))
        .collect()
}

#[derive(Debug)]
struct StackEntry<M> {
    node: NodeId,
    /// Keywords countable for this node so far.
    mask: M,
    /// Whether some descendant's subtree contained all keywords.
    full_under: bool,
}

/// Single-pass Dewey-stack ELCA. Any keyword count is supported (k ≤ 64
/// runs on inlined `u64` masks, wider queries on boxed masks).
pub fn elca_stack<L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    if lists.is_empty() || lists.iter().any(|l| l.as_ref().is_empty()) {
        return Vec::new();
    }
    if lists.len() <= 64 {
        elca_stack_impl::<u64, L>(doc, lists)
    } else {
        elca_stack_impl::<Box<[u64]>, L>(doc, lists)
    }
}

fn elca_stack_impl<M: Mask, L: AsRef<[NodeId]>>(doc: &Document, lists: &[L]) -> Vec<NodeId> {
    let k = lists.len();
    // Merge the lists into one document-ordered stream of (node, mask).
    // NodeId order is document order, so a k-way merge by NodeId suffices;
    // equal nodes combine their masks.
    let mut stream: Vec<(NodeId, usize)> =
        Vec::with_capacity(lists.iter().map(|l| l.as_ref().len()).sum());
    for (i, list) in lists.iter().enumerate() {
        for &n in list.as_ref() {
            stream.push((n, i));
        }
    }
    stream.sort_unstable_by_key(|(n, _)| *n);
    // Combine duplicate nodes.
    let mut merged: Vec<(NodeId, M)> = Vec::with_capacity(stream.len());
    for (n, i) in stream {
        let single = M::single(k, i);
        match merged.last_mut() {
            Some((last, lm)) if *last == n => lm.or_assign(&single),
            _ => merged.push((n, single)),
        }
    }

    let mut stack: Vec<StackEntry<M>> = Vec::new();
    let mut results: Vec<NodeId> = Vec::new();

    for (node, mask) in merged {
        // Root-to-node path of the incoming match.
        let mut path: Vec<NodeId> = doc.ancestors_or_self(node).collect();
        path.reverse();
        // Longest common prefix with the current stack.
        let mut lcp = 0;
        while lcp < stack.len() && lcp < path.len() && stack[lcp].node == path[lcp] {
            lcp += 1;
        }
        // Close everything below the common prefix.
        while stack.len() > lcp {
            pop_entry(&mut stack, k, &mut results);
        }
        // Open the remaining path with empty masks.
        for &n in &path[lcp..] {
            stack.push(StackEntry { node: n, mask: M::empty(k), full_under: false });
        }
        let top = stack.last_mut().expect("path is never empty");
        debug_assert_eq!(top.node, node);
        top.mask.or_assign(&mask);
    }
    while !stack.is_empty() {
        pop_entry(&mut stack, k, &mut results);
    }
    results.sort_unstable();
    results
}

/// Pop the top entry: report it if its countable mask is full; propagate
/// *nothing* upward when its subtree contained all keywords (exclusion),
/// its mask otherwise.
fn pop_entry<M: Mask>(stack: &mut Vec<StackEntry<M>>, k: usize, results: &mut Vec<NodeId>) {
    let e = stack.pop().expect("pop on empty stack");
    let self_full = e.mask.is_full(k);
    if self_full {
        results.push(e.node);
    }
    if let Some(parent) = stack.last_mut() {
        if self_full || e.full_under {
            parent.full_under = true;
        } else {
            parent.mask.or_assign(&e.mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca_bruteforce;
    use extract_index::XmlIndex;

    fn setup(xml: &str) -> (Document, XmlIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let index = XmlIndex::build(&doc);
        (doc, index)
    }

    fn both(doc: &Document, index: &XmlIndex, keywords: &[&str]) -> Vec<NodeId> {
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        let brute = elca_bruteforce(doc, &lists);
        let stack = elca_stack(doc, &lists);
        assert_eq!(brute, stack, "stack ELCA disagrees with brute force");
        brute
    }

    #[test]
    fn elca_includes_ancestor_with_independent_witnesses() {
        // inner has k1,k2; root additionally has its own k1 and k2.
        let (doc, index) = setup("<r><inner><p>k1</p><q>k2</q></inner><a>k1</a><b>k2</b></r>");
        let r = both(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 2);
        assert_eq!(doc.label_str(r[0]), Some("r"));
        assert_eq!(doc.label_str(r[1]), Some("inner"));
    }

    #[test]
    fn ancestor_without_independent_witness_is_not_elca() {
        // root sees k1 outside inner, but its only k2 sits inside inner.
        let (doc, index) = setup("<r><inner><p>k1</p><q>k2</q></inner><a>k1</a></r>");
        let r = both(&doc, &index, &["k1", "k2"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("inner"));
    }

    #[test]
    fn full_descendant_blocks_partial_propagation() {
        // u contains a full child w plus its own k1; u's matches countable
        // for v are *none* (u's subtree is full ⇒ pruned for v).
        let (doc, index) = setup(
            "<v><u><w><a>k1</a><b>k2</b></w><c>k1</c></u><d>k2</d></v>",
        );
        let r = both(&doc, &index, &["k1", "k2"]);
        // w is full (ELCA); u not (own countable = k1 only); v's countable
        // = d's k2 only (everything under u pruned) ⇒ not ELCA.
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("w"));
    }

    #[test]
    fn every_slca_is_an_elca() {
        let (doc, index) = setup(
            "<r><s><a>k1</a><b>k2</b></s><s><a>k1</a><b>k2</b></s><x>k1</x><y>k2</y></r>",
        );
        let lists: Vec<Vec<NodeId>> =
            ["k1", "k2"].iter().map(|k| index.postings(k).to_vec()).collect();
        let slcas = slca_bruteforce(&doc, &lists);
        let elcas = both(&doc, &index, &["k1", "k2"]);
        for s in slcas {
            assert!(elcas.contains(&s), "SLCA {s} missing from ELCAs");
        }
        // Root is an extra ELCA thanks to x and y.
        assert!(elcas.contains(&doc.root()));
    }

    #[test]
    fn single_keyword_elcas_are_the_match_nodes() {
        let (doc, index) = setup("<a><b>k</b><c><d>k</d></c></a>");
        let r = both(&doc, &index, &["k"]);
        let labels: Vec<_> = r.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["b", "d"]);
    }

    #[test]
    fn missing_keyword_yields_empty() {
        let (doc, index) = setup("<a><b>k1</b></a>");
        assert!(both(&doc, &index, &["k1", "zzz"]).is_empty());
    }

    #[test]
    fn match_on_inner_element_label() {
        let (doc, index) = setup("<shop><item><price>9</price></item></shop>");
        let r = both(&doc, &index, &["item", "9"]);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.label_str(r[0]), Some("item"));
    }

    #[test]
    fn deep_chain_of_elcas() {
        // Nested nodes each with their own pair of witnesses.
        let (doc, index) = setup(
            "<r><a>k1</a><b>k2</b><m><c>k1</c><d>k2</d><n><e>k1</e><f>k2</f></n></m></r>",
        );
        let r = both(&doc, &index, &["k1", "k2"]);
        let labels: Vec<_> = r.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["r", "m", "n"]);
    }

    #[test]
    fn more_than_64_keywords_run_on_wide_masks() {
        // Regression: both ELCA implementations used to panic past 64
        // lists; `elca_stack` is reachable from `Engine::search` with a
        // user-supplied query, so that was a query-path panic.
        let body: String = (0..70).map(|i| format!("<w>t{i}</w>")).collect();
        let (doc, index) = setup(&format!("<r>{body}</r>"));
        let keywords: Vec<String> = (0..70).map(|i| format!("t{i}")).collect();
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let r = both(&doc, &index, &refs);
        assert_eq!(r, vec![doc.root()]);
        // 65 lists where one keyword is missing → empty, not a panic.
        let mut lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        lists.push(Vec::new());
        assert!(elca_bruteforce(&doc, &lists).is_empty());
        assert!(elca_stack(&doc, &lists).is_empty());
    }

    #[test]
    fn exactly_64_keywords_boundary() {
        let body: String = (0..64).map(|i| format!("<w>t{i}</w>")).collect();
        let (doc, index) = setup(&format!("<r>{body}</r>"));
        let keywords: Vec<String> = (0..64).map(|i| format!("t{i}")).collect();
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        assert_eq!(both(&doc, &index, &refs), vec![doc.root()]);
    }

    #[test]
    fn results_sorted_in_document_order() {
        let (doc, index) = setup(
            "<r><s><a>k1</a><b>k2</b></s><t><a>k1</a><b>k2</b></t></r>",
        );
        let r = both(&doc, &index, &["k1", "k2"]);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }
}
