//! Property tests: the indexed SLCA/ELCA algorithms must agree with their
//! brute-force oracles on arbitrary documents and queries, and structural
//! invariants of results must hold.

use extract_index::XmlIndex;
use extract_search::slca::{slca_bruteforce, slca_indexed_lookup, slca_scan_eager};
use extract_search::elca::{elca_bruteforce, elca_stack};
use extract_search::{Algorithm, Engine, KeywordQuery};
use extract_xml::{DocBuilder, Document, NodeId};
use proptest::prelude::*;

/// Random tree with labels/values drawn from a tiny vocabulary so keyword
/// collisions (the interesting cases) are common.
#[derive(Debug, Clone)]
struct SpecNode {
    label: usize,
    value: Option<usize>,
    children: Vec<SpecNode>,
}

const LABELS: [&str; 5] = ["store", "item", "name", "city", "tag"];
const VALUES: [&str; 5] = ["texas", "houston", "jeans", "man", "red"];

fn spec_strategy() -> impl Strategy<Value = SpecNode> {
    let leaf = (0usize..LABELS.len(), proptest::option::of(0usize..VALUES.len()))
        .prop_map(|(label, value)| SpecNode { label, value, children: Vec::new() });
    leaf.prop_recursive(4, 48, 5, |inner| {
        (0usize..LABELS.len(), proptest::collection::vec(inner, 0..5)).prop_map(
            |(label, children)| SpecNode { label, value: None, children },
        )
    })
}

fn build(spec: &SpecNode) -> Document {
    let mut b = DocBuilder::new("root");
    push(&mut b, spec);
    b.build()
}

fn push(b: &mut DocBuilder, s: &SpecNode) {
    b.begin(LABELS[s.label]);
    if let Some(v) = s.value {
        b.text(VALUES[v]);
    }
    for c in &s.children {
        push(b, c);
    }
    b.end();
}

fn keyword_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..LABELS.len()).prop_map(|i| LABELS[i].to_string()),
            (0usize..VALUES.len()).prop_map(|i| VALUES[i].to_string()),
        ],
        1..4,
    )
    .prop_map(|mut ks| {
        ks.dedup();
        ks
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn slca_algorithms_agree_with_bruteforce(
        spec in spec_strategy(),
        keywords in keyword_strategy(),
    ) {
        let doc = build(&spec);
        let index = XmlIndex::build(&doc);
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        let oracle = slca_bruteforce(&doc, &lists);
        prop_assert_eq!(&slca_indexed_lookup(&doc, index.dewey_store(), &lists), &oracle);
        prop_assert_eq!(&slca_scan_eager(&doc, index.dewey_store(), &lists), &oracle);
    }

    #[test]
    fn elca_stack_agrees_with_bruteforce(
        spec in spec_strategy(),
        keywords in keyword_strategy(),
    ) {
        let doc = build(&spec);
        let index = XmlIndex::build(&doc);
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        prop_assert_eq!(elca_stack(&doc, &lists), elca_bruteforce(&doc, &lists));
    }

    #[test]
    fn every_slca_is_an_elca(
        spec in spec_strategy(),
        keywords in keyword_strategy(),
    ) {
        let doc = build(&spec);
        let index = XmlIndex::build(&doc);
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        let slcas = slca_bruteforce(&doc, &lists);
        let elcas = elca_stack(&doc, &lists);
        for s in &slcas {
            prop_assert!(elcas.contains(s), "SLCA {s} not an ELCA");
        }
    }

    #[test]
    fn slcas_are_incomparable_and_cover_all_keywords(
        spec in spec_strategy(),
        keywords in keyword_strategy(),
    ) {
        let doc = build(&spec);
        let index = XmlIndex::build(&doc);
        let lists: Vec<Vec<NodeId>> =
            keywords.iter().map(|k| index.postings(k).to_vec()).collect();
        let slcas = slca_indexed_lookup(&doc, index.dewey_store(), &lists);
        // Pairwise: no SLCA is an ancestor of another.
        for (i, &a) in slcas.iter().enumerate() {
            for &b in &slcas[i + 1..] {
                prop_assert!(!doc.is_ancestor_or_self(a, b));
                prop_assert!(!doc.is_ancestor_or_self(b, a));
            }
        }
        // Each SLCA's subtree contains all keywords.
        for &s in &slcas {
            for list in &lists {
                prop_assert!(list.iter().any(|&m| doc.is_ancestor_or_self(s, m)));
            }
        }
    }

    #[test]
    fn xseek_results_cover_all_keywords_and_are_disjoint(
        spec in spec_strategy(),
        keywords in keyword_strategy(),
    ) {
        let doc = build(&spec);
        let engine = Engine::new(&doc);
        let q = KeywordQuery::from_keywords(keywords.clone());
        let results = engine.search(&q, Algorithm::XSeek);
        for r in &results {
            prop_assert!(r.covers_all_keywords());
        }
        for (i, a) in results.iter().enumerate() {
            for b in &results[i + 1..] {
                prop_assert!(!doc.is_ancestor_or_self(a.root, b.root));
                prop_assert!(!doc.is_ancestor_or_self(b.root, a.root));
            }
        }
    }
}
