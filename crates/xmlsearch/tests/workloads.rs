//! Search-engine integration tests on generated workloads (auction, dblp,
//! retailer) — cross-validation of the fast algorithms on realistic data
//! and semantic checks of result sets.

use extract_datagen::auction::AuctionConfig;
use extract_datagen::dblp::DblpConfig;
use extract_datagen::retailer;
use extract_index::XmlIndex;
use extract_search::elca::{elca_bruteforce, elca_stack};
use extract_search::slca::{slca_bruteforce, slca_indexed_lookup, slca_scan_eager};
use extract_search::{Algorithm, Engine, KeywordQuery};
use extract_xml::NodeId;

#[test]
fn algorithms_agree_on_auction_data() {
    let doc = AuctionConfig::with_target_nodes(30_000, 11).generate();
    let index = XmlIndex::build(&doc);
    for query in [
        "gold watch",
        "person houston",
        "item cash",
        "gold watch houston credit",
        "texas",
    ] {
        let q = KeywordQuery::parse(query);
        let lists: Vec<Vec<NodeId>> =
            q.keywords().iter().map(|k| index.postings(k).to_vec()).collect();
        let oracle = slca_bruteforce(&doc, &lists);
        assert_eq!(
            slca_indexed_lookup(&doc, index.dewey_store(), &lists),
            oracle,
            "ILE on {query:?}"
        );
        assert_eq!(
            slca_scan_eager(&doc, index.dewey_store(), &lists),
            oracle,
            "SE on {query:?}"
        );
        assert_eq!(elca_stack(&doc, &lists), elca_bruteforce(&doc, &lists), "ELCA on {query:?}");
    }
}

#[test]
fn auction_item_queries_return_items() {
    let doc = AuctionConfig::default().generate();
    let engine = Engine::new(&doc);
    // "gold watch" hits item names; XSeek must lift to item entities.
    let results = engine.search_str("gold watch", Algorithm::XSeek);
    assert!(!results.is_empty());
    for r in &results {
        assert_eq!(doc.label_str(r.root), Some("item"), "results are item entities");
        assert!(r.covers_all_keywords());
    }
}

#[test]
fn dblp_author_queries_return_papers_or_authors() {
    let doc = DblpConfig { papers: 80, ..Default::default() }.generate();
    let engine = Engine::new(&doc);
    let results = engine.search_str("paper sigmod keyword", Algorithm::XSeek);
    for r in &results {
        assert_eq!(doc.label_str(r.root), Some("paper"));
    }
    // Author-name query: results are the deepest entities containing the
    // name — author nodes.
    let results = engine.search_str("alice johnson", Algorithm::XSeek);
    assert!(!results.is_empty());
    for r in &results {
        let label = doc.label_str(r.root).unwrap();
        assert!(
            label == "author" || label == "paper",
            "unexpected result root {label}"
        );
    }
}

#[test]
fn figure1_query_is_exact_on_the_retailer_db() {
    let doc = retailer::figure1_db();
    let engine = Engine::new(&doc);
    let expected = retailer::figure1_result_root(&doc);
    let query = KeywordQuery::parse("texas apparel retailer");
    // The SLCA family and XSeek: exactly the BB retailer.
    for algo in [
        Algorithm::SlcaIndexedLookup,
        Algorithm::SlcaScanEager,
        Algorithm::XSeek,
    ] {
        let roots = engine.roots(&query, algo);
        assert_eq!(roots, vec![expected], "{algo:?}");
    }
    // ELCA additionally reports the database root: the two distractor
    // retailers provide independent witnesses for every keyword ("texas"
    // from Circuit Town, "apparel" from Golden Gate, "retailer" labels) —
    // a genuine semantic difference between ELCA and SLCA.
    let elca = engine.roots(&query, Algorithm::Elca);
    assert_eq!(elca, vec![doc.root(), expected]);
}

#[test]
fn elca_supersets_slca_on_real_workloads() {
    let doc = AuctionConfig::with_target_nodes(15_000, 13).generate();
    let index = XmlIndex::build(&doc);
    for query in ["gold watch", "credit houston", "person texas"] {
        let q = KeywordQuery::parse(query);
        let lists: Vec<Vec<NodeId>> =
            q.keywords().iter().map(|k| index.postings(k).to_vec()).collect();
        let slcas = slca_indexed_lookup(&doc, index.dewey_store(), &lists);
        let elcas = elca_stack(&doc, &lists);
        for s in &slcas {
            assert!(elcas.contains(s), "SLCA {s} missing from ELCA on {query:?}");
        }
    }
}

#[test]
fn ranking_prefers_tight_matches_on_dblp() {
    let doc = DblpConfig { papers: 60, ..Default::default() }.generate();
    let engine = Engine::new(&doc);
    let ranked = engine.search_ranked(&KeywordQuery::parse("xml search"), Algorithm::XSeek);
    if ranked.len() >= 2 {
        // Scores are non-increasing and positive.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(ranked[0].score > 0.0);
    }
}

#[test]
fn rare_keyword_prunes_results() {
    let doc = retailer::figure1_db();
    let engine = Engine::new(&doc);
    // "galleria" appears in exactly one store.
    let results = engine.search_str("galleria houston", Algorithm::XSeek);
    assert_eq!(results.len(), 1);
    assert_eq!(doc.label_str(results[0].root), Some("store"));
}
