//! Scatter-gather behavior against real stub shards over real sockets:
//! merging, partial results, retries, breakers, recovery, and hedging —
//! all driven deterministically with the serve tier's fault-injection
//! plans.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use extract_router::{HedgeConfig, RouterApp, RouterConfig};
use extract_serve::json::{self, Value};
use extract_serve::{
    ClientConfig, FaultPlan, JsonWriter, Request, Response, ServeConfig, Server, ServerHandle,
};

/// One canned hit a stub shard serves: (local doc id, root, score).
type Hit = (u64, u64, f64);

/// A stub shard: answers `/search` with its canned hits (respecting the
/// requested `k`), `/stats` with its document count, `/healthz` with ok.
fn shard_body(hits: &[Hit], k: usize, q: &str) -> String {
    let page: Vec<&Hit> = hits.iter().take(k).collect();
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("query");
    w.str(q);
    w.key("k");
    w.num_u64(k as u64);
    w.key("offset");
    w.num_u64(0);
    w.key("total");
    w.num_u64(hits.len() as u64);
    w.key("count");
    w.num_u64(page.len() as u64);
    w.key("results");
    w.arr_begin();
    for (doc, root, score) in page.iter() {
        w.obj_begin();
        w.key("doc");
        w.str(&format!("doc-{doc}"));
        w.key("doc_id");
        w.num_u64(*doc);
        w.key("root");
        w.num_u64(*root);
        w.key("score");
        w.num_f64(*score);
        w.key("snippet");
        w.str("<r/>");
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
    w.finish()
}

fn stats_body(documents: u64) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("server");
    w.obj_begin();
    w.key("accepted");
    w.num_u64(1);
    w.key("admitted");
    w.num_u64(1);
    w.key("served_ok");
    w.num_u64(1);
    w.key("served_error");
    w.num_u64(0);
    w.obj_end();
    w.key("corpus");
    w.obj_begin();
    w.key("documents");
    w.num_u64(documents);
    w.obj_end();
    w.obj_end();
    w.finish()
}

/// Spawn a stub shard on an ephemeral (or explicit) port; returns its
/// address, handle, and join handle for a clean drain.
fn spawn_shard(
    addr: &str,
    hits: Vec<Hit>,
    documents: u64,
    fault: Option<FaultPlan>,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        workers: 2,
        queue_depth: 16,
        per_client_inflight: 64,
        fault: fault.map(Arc::new),
        ..ServeConfig::default()
    };
    let server = Server::bind(addr, config).expect("bind stub shard");
    let bound = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run(move |request: &Request| match request.path.as_str() {
            "/search" => {
                let q = request.param("q").unwrap_or("");
                let k: usize =
                    request.param("k").and_then(|raw| raw.parse().ok()).unwrap_or(10);
                Response::json(200, shard_body(&hits, k, q))
            }
            "/stats" => Response::json(200, stats_body(documents)),
            "/healthz" => Response::json(200, "{\"ok\":true}".to_string()),
            _ => Response::error(404, "no such route"),
        });
    });
    (bound, handle, thread)
}

fn router_config(shards: Vec<SocketAddr>) -> RouterConfig {
    RouterConfig {
        shards,
        request_deadline: Duration::from_secs(5),
        client: ClientConfig {
            connect_timeout: Duration::from_millis(250),
            connect_attempts: 1,
            ..ClientConfig::default()
        },
        retry_budget: 1,
        retry_backoff_base: Duration::from_millis(5),
        retry_backoff_max: Duration::from_millis(20),
        hedge: None,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(100),
        ..RouterConfig::default()
    }
}

fn get(app: &RouterApp, path: &str, query: &[(&str, &str)]) -> Response {
    app.handle(&Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        http11: true,
        keep_alive: true,
        trace_id: None,
        body: Vec::new(),
    })
}

fn body_json(response: &Response) -> Value {
    let text = std::str::from_utf8(&response.body).expect("utf-8 body");
    json::parse(text).unwrap_or_else(|e| panic!("invalid JSON {text:?}: {e}"))
}

fn doc_ids(body: &Value) -> Vec<u64> {
    body.get("results")
        .and_then(Value::as_arr)
        .expect("results")
        .iter()
        .map(|r| r.get("doc_id").and_then(Value::as_u64).expect("doc_id"))
        .collect()
}

/// A bound-then-dropped listener's address: nothing listens there, and
/// the OS won't reassign it immediately.
fn dead_addr() -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr")
}

#[test]
fn router_merges_shards_with_global_ids_and_exact_order() {
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9), (1, 2, 0.5)], 2, None);
    let (b, hb, tb) = spawn_shard("127.0.0.1:0", vec![(0, 4, 0.7)], 3, None);
    let app = RouterApp::new(router_config(vec![a, b]));

    let response = get(&app, "/search", &[("q", "x"), ("k", "10")]);
    assert_eq!(response.status, 200);
    let body = body_json(&response);
    // Totals sum hit counts (shard A has 2 matches, shard B has 1).
    assert_eq!(body.get("total").and_then(Value::as_u64), Some(3));
    assert_eq!(body.get("partial"), Some(&Value::Bool(false)));
    let shards = body.get("shards").expect("shards block");
    assert_eq!(shards.get("queried").and_then(Value::as_u64), Some(2));
    assert_eq!(shards.get("answered").and_then(Value::as_u64), Some(2));
    // Shard A occupies global ids [0, 2), shard B starts at 2; the
    // merged order is score-descending: 0.9 (A#0), 0.7 (B#0 → 2), 0.5.
    assert_eq!(doc_ids(&body), vec![0, 2, 1]);

    // Offset windows apply globally, after the merge.
    let response = get(&app, "/search", &[("q", "x"), ("k", "2"), ("offset", "1")]);
    assert_eq!(doc_ids(&body_json(&response)), vec![2, 1]);

    ha.shutdown();
    hb.shutdown();
    let _ = (ta.join(), tb.join());
}

#[test]
fn dead_shard_degrades_to_partial_200_and_opens_its_breaker() {
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 1, None);
    let dead = dead_addr();
    let app = RouterApp::new(router_config(vec![a, dead]));

    // Every request stays 200 — the survivor answers, honestly flagged.
    for _ in 0..3 {
        let response = get(&app, "/search", &[("q", "x")]);
        assert_eq!(response.status, 200, "a dead shard must never produce a 5xx");
        let body = body_json(&response);
        assert_eq!(body.get("partial"), Some(&Value::Bool(true)));
        let shards = body.get("shards").expect("shards block");
        assert_eq!(shards.get("answered").and_then(Value::as_u64), Some(1));
        assert_eq!(doc_ids(&body), vec![0]);
    }
    // Repeated failures opened the dead shard's breaker exactly once.
    assert_eq!(app.counters().breaker_opens.load(Ordering::Relaxed), 1);
    let breakers: Vec<&str> =
        app.shards().iter().map(|s| s.breaker().state().name()).collect();
    assert_eq!(breakers, vec!["closed", "open"]);
    assert!(app.counters().partial_responses.load(Ordering::Relaxed) >= 3);

    ha.shutdown();
    let _ = ta.join();
}

#[test]
fn restarted_shard_heals_through_the_prober_without_router_restart() {
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 1, None);
    let (b, hb, tb) = spawn_shard("127.0.0.1:0", vec![(0, 2, 0.8)], 1, None);
    let app = RouterApp::new(router_config(vec![a, b]));

    // Healthy first: both shards answer.
    let body = body_json(&get(&app, "/search", &[("q", "x")]));
    assert_eq!(body.get("partial"), Some(&Value::Bool(false)));

    // Kill shard B and burn its breaker open.
    hb.shutdown();
    let _ = tb.join();
    loop {
        let response = get(&app, "/search", &[("q", "x")]);
        assert_eq!(response.status, 200);
        if !app.shards().get(1).expect("shard 1").breaker().allows_requests() {
            break;
        }
    }
    let body = body_json(&get(&app, "/search", &[("q", "x")]));
    assert_eq!(body.get("partial"), Some(&Value::Bool(true)));

    // Resurrect shard B on the same port (SO_REUSEADDR) with a bigger
    // corpus, wait out the cooldown, and let the prober heal it.
    let (b2, hb2, tb2) = spawn_shard(&b.to_string(), vec![(0, 2, 0.8), (1, 3, 0.6)], 2, None);
    assert_eq!(b2, b, "restart must land on the same address");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        app.probe_round();
        if app.shards().get(1).expect("shard 1").breaker().allows_requests() {
            break;
        }
        assert!(Instant::now() < deadline, "breaker never closed after restart");
    }
    let body = body_json(&get(&app, "/search", &[("q", "x"), ("k", "10")]));
    assert_eq!(body.get("partial"), Some(&Value::Bool(false)));
    assert_eq!(body.get("total").and_then(Value::as_u64), Some(3));
    // The prober relearned the restarted shard's corpus size.
    assert_eq!(app.shards().get(1).and_then(|s| s.doc_count()), Some(2));

    ha.shutdown();
    hb2.shutdown();
    let _ = (ta.join(), tb2.join());
}

#[test]
fn injected_500s_burn_retries_then_succeed() {
    let fault = FaultPlan::from_specs(&["status:/search:code=500:count=1"]).expect("plan");
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 1, Some(fault));
    let app = RouterApp::new(router_config(vec![a]));

    let response = get(&app, "/search", &[("q", "x")]);
    assert_eq!(response.status, 200);
    let body = body_json(&response);
    assert_eq!(body.get("partial"), Some(&Value::Bool(false)), "the retry recovered");
    assert_eq!(app.counters().retries.load(Ordering::Relaxed), 1);

    ha.shutdown();
    let _ = ta.join();
}

#[test]
fn hedge_fires_on_a_stalled_shard_and_the_hedge_wins() {
    // Only the first /search stalls: the primary hangs 400ms, the hedge
    // (request two) answers immediately and must win the race.
    let fault = FaultPlan::from_specs(&["stall:/search:ms=400:count=1"]).expect("plan");
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 1, Some(fault));
    let mut config = router_config(vec![a]);
    config.hedge = Some(HedgeConfig {
        min_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(50),
        min_samples: 1,
        ..HedgeConfig::default()
    });
    let app = RouterApp::new(config);

    let started = Instant::now();
    let response = get(&app, "/search", &[("q", "x")]);
    let elapsed = started.elapsed();
    assert_eq!(response.status, 200);
    assert_eq!(body_json(&response).get("partial"), Some(&Value::Bool(false)));
    assert_eq!(app.counters().hedges_fired.load(Ordering::Relaxed), 1);
    assert_eq!(app.counters().hedge_wins.load(Ordering::Relaxed), 1);
    assert!(
        elapsed < Duration::from_millis(400),
        "the hedge should beat the 400ms stall, took {elapsed:?}"
    );

    ha.shutdown();
    let _ = ta.join();
}

#[test]
fn a_hedge_that_loses_on_status_is_not_counted_as_a_win() {
    // The primary (request one) stalls 400ms and will eventually serve
    // 200; the hedge (request two) answers *first* but with a 503. The
    // hedge's response arrives first yet is unusable, so it must count
    // as fired-but-not-won, and the retry serves the page.
    let fault = FaultPlan::from_specs(&[
        "stall:/search:ms=400:count=1",
        "status:/search:code=503:after=1:count=1",
    ])
    .expect("plan");
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 1, Some(fault));
    let mut config = router_config(vec![a]);
    config.hedge = Some(HedgeConfig {
        min_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(50),
        min_samples: 1,
        ..HedgeConfig::default()
    });
    let app = RouterApp::new(config);

    let response = get(&app, "/search", &[("q", "x")]);
    assert_eq!(response.status, 200);
    assert!(app.counters().hedges_fired.load(Ordering::Relaxed) >= 1);
    assert_eq!(
        app.counters().hedge_wins.load(Ordering::Relaxed),
        0,
        "an unusable hedge response must not count as a hedge win"
    );
    assert!(app.counters().retries.load(Ordering::Relaxed) >= 1);

    ha.shutdown();
    let _ = ta.join();
}

#[test]
fn no_answering_shard_is_503_with_retry_after() {
    let app = RouterApp::new(router_config(vec![dead_addr(), dead_addr()]));
    let response = get(&app, "/search", &[("q", "x")]);
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after, Some(1));
    let body = body_json(&response);
    assert_eq!(
        body.get("error").and_then(Value::as_str),
        Some("no shards available")
    );
}

#[test]
fn router_healthz_and_stats_report_shard_state() {
    let (a, ha, ta) = spawn_shard("127.0.0.1:0", vec![(0, 1, 0.9)], 4, None);
    let dead = dead_addr();
    let app = RouterApp::new(router_config(vec![a, dead]));

    // One shard up: healthz is 200 with honest availability accounting.
    let response = get(&app, "/healthz", &[]);
    assert_eq!(response.status, 200);
    let body = body_json(&response);
    assert_eq!(body.get("ok"), Some(&Value::Bool(true)));
    let shards = body.get("shards").expect("shards");
    assert_eq!(shards.get("total").and_then(Value::as_u64), Some(2));
    assert_eq!(shards.get("available").and_then(Value::as_u64), Some(2));

    // Serve one request so the live shard has latency samples, then
    // check /stats aggregation.
    let search = get(&app, "/search", &[("q", "x")]);
    assert_eq!(search.status, 200);
    let response = get(&app, "/stats", &[]);
    assert_eq!(response.status, 200);
    let body = body_json(&response);
    let router = body.get("router").expect("router block");
    assert_eq!(router.get("shards").and_then(Value::as_u64), Some(2));
    let upstream = body.get("upstream").expect("upstream block");
    assert_eq!(upstream.get("answered").and_then(Value::as_u64), Some(1));
    assert_eq!(upstream.get("documents").and_then(Value::as_u64), Some(4));
    let per_shard = body.get("shards").and_then(Value::as_arr).expect("shard array");
    assert_eq!(per_shard.len(), 2);
    let live = per_shard.first().expect("live shard");
    assert_eq!(live.get("reachable"), Some(&Value::Bool(true)));
    assert_eq!(live.get("documents").and_then(Value::as_u64), Some(4));

    // Validation mirrors the daemon exactly.
    assert_eq!(get(&app, "/search", &[]).status, 400);
    assert_eq!(get(&app, "/search", &[("q", "x"), ("k", "0")]).status, 400);
    assert_eq!(get(&app, "/nope", &[]).status, 404);

    ha.shutdown();
    let _ = ta.join();
}
