//! # extract-router — fault-tolerant scatter-gather front tier
//!
//! A single `extract-serve` daemon answers `/search` over one corpus.
//! This crate puts a router in front of N such daemons ("shards"), each
//! holding a partition of the corpus, and makes the ensemble look like
//! one daemon over the union corpus — including under partial failure.
//!
//! - [`config`] — every tuning knob ([`RouterConfig`], [`HedgeConfig`]).
//! - [`pool`] — per-shard pools of pooled keep-alive [`HttpClient`]
//!   connections ([`ClientPool`]).
//! - [`health`] — the per-shard circuit [`Breaker`]; the hedge delay is
//!   computed from each shard's `extract_obs` latency histogram.
//! - [`merge`] — shard page parsing, doc-id remapping, the exact
//!   (score desc, doc asc, root asc) merge, and response rendering.
//! - [`router`] — [`RouterApp`] (routes, scatter-gather, retries,
//!   hedging, probing, `/stats` aggregation) and [`serve_router`].
//!
//! The request path never panics: all fallible steps return `Result`s
//! and every client outcome is an HTTP response. A shard that is down,
//! slow, or lying produces `"partial": true` accounting, not a 5xx —
//! only zero answering shards do.
//!
//! [`HttpClient`]: extract_serve::HttpClient

pub mod config;
pub mod health;
pub mod merge;
pub mod pool;
pub mod router;

pub use config::{HedgeConfig, RouterConfig};
pub use health::{Breaker, BreakerState};
pub use merge::{MergedPage, ShardHit, ShardPage, ShardTally};
pub use pool::ClientPool;
pub use router::{serve_router, RouterApp, RouterCounters, Shard};

/// Everything a router binary or test needs.
pub mod prelude {
    pub use crate::config::{HedgeConfig, RouterConfig};
    pub use crate::health::{Breaker, BreakerState};
    pub use crate::merge::{MergedPage, ShardHit, ShardPage, ShardTally};
    pub use crate::pool::ClientPool;
    pub use crate::router::{serve_router, RouterApp, RouterCounters, Shard};
}
