//! The router application: scatter `/search` to every shard, gather
//! under one absolute deadline, merge, and degrade gracefully.
//!
//! Failure policy, end to end:
//!
//! - Every client request gets **one absolute deadline**
//!   ([`RouterConfig::request_deadline`]). Scatter attempts, retries,
//!   backoff sleeps and hedges all race that single clock — nothing can
//!   extend it.
//! - Each shard attempt may be **retried**
//!   ([`RouterConfig::retry_budget`] extra attempts) with exponential
//!   backoff, except after a deadline timeout — the absolute clock is
//!   spent, retrying cannot help.
//! - A slow-but-healthy shard gets a **hedged** second request once the
//!   attempt outlives the shard's recent latency percentile; the first
//!   usable response wins and the loser is abandoned to its deadline.
//! - Repeated failures open the shard's **circuit breaker**: the
//!   scatter path skips it instantly instead of burning the budget, and
//!   a background prober's `/healthz` checks close it again when the
//!   shard returns.
//! - Whatever subset of shards answers, the client gets `200` with
//!   honest accounting: `"partial": true` plus a
//!   `shards: {queried, answered}` block whenever the merged page may
//!   be missing rows. Only zero answering shards produce `503` (with
//!   `Retry-After`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use extract_obs::{Histogram, PromWriter, Stage, TraceId, TRACE_HEADER};
use extract_serve::http::percent_encode;
use extract_serve::json::{self, JsonWriter, Value};
use extract_serve::obs_http;
use extract_serve::{ClientError, Request, Response, ServerHandle, WireResponse};

use crate::config::RouterConfig;
use crate::health::Breaker;
use crate::merge::{self, MergedPage, ShardPage, ShardTally};
use crate::pool::ClientPool;

/// `doc_count` sentinel: not learned yet.
const DOC_COUNT_UNKNOWN: u64 = u64::MAX;
/// `corpus_epoch` sentinel: not learned yet.
const EPOCH_UNKNOWN: u64 = u64::MAX;
/// `Retry-After` seconds when every shard is unavailable.
const UNAVAILABLE_RETRY_AFTER_SECS: u32 = 1;
/// Grace past the request deadline when waiting on attempt threads —
/// covers a dial that started just before the deadline expired.
const GATHER_GRACE: Duration = Duration::from_millis(500);

/// Router-level counters, all monotonic except none.
#[derive(Debug, Default)]
pub struct RouterCounters {
    /// Shard attempts re-tried after a failure.
    pub retries: AtomicU64,
    /// Hedged second requests launched.
    pub hedges_fired: AtomicU64,
    /// Hedges whose response beat the primary.
    pub hedge_wins: AtomicU64,
    /// Distinct breaker open transitions.
    pub breaker_opens: AtomicU64,
    /// `200` responses flagged `"partial": true`.
    pub partial_responses: AtomicU64,
    /// Background health probes sent.
    pub probes: AtomicU64,
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// One shard: its connection pool, breaker, latency histogram, and the
/// document count the doc-id remapping is built from.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    pool: ClientPool,
    breaker: Breaker,
    /// Lock-free log₂-bucketed latency of successful exchanges; the
    /// hedge delay and `/stats`/`/metrics` percentiles read snapshots.
    latency: Histogram,
    doc_count: AtomicU64,
    /// The corpus epoch the shard last reported. Live shards mutate
    /// their corpus without restarting, so the router watches the
    /// `X-Corpus-Epoch` stamp on every search answer and relearns the
    /// shard's document count the moment the epoch moves — not only on
    /// breaker heal.
    corpus_epoch: AtomicU64,
}

impl Shard {
    fn new(index: usize, config: &RouterConfig, addr: std::net::SocketAddr) -> Shard {
        Shard {
            index,
            pool: ClientPool::new(addr, config.client.clone(), config.max_idle_per_shard),
            breaker: Breaker::new(config.breaker_threshold, config.breaker_cooldown),
            latency: Histogram::new(),
            doc_count: AtomicU64::new(DOC_COUNT_UNKNOWN),
            corpus_epoch: AtomicU64::new(EPOCH_UNKNOWN),
        }
    }

    /// The shard's position in the configured order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's breaker (tests and `/stats` read its state).
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Documents this shard reported, once learned.
    pub fn doc_count(&self) -> Option<u64> {
        match self.doc_count.load(Ordering::SeqCst) {
            DOC_COUNT_UNKNOWN => None,
            n => Some(n),
        }
    }

    /// The corpus epoch this shard last reported, once learned.
    pub fn corpus_epoch(&self) -> Option<u64> {
        match self.corpus_epoch.load(Ordering::SeqCst) {
            EPOCH_UNKNOWN => None,
            n => Some(n),
        }
    }

    fn record_latency(&self, sample: Duration) {
        self.latency.record(u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The hedge delay for the next attempt: the recent latency
    /// percentile clamped to the configured band, or the ceiling until
    /// enough samples exist. The histogram's quantile is a log₂-bucket
    /// upper bound (within 2× of the true sample), which errs toward
    /// hedging *later* — the safe direction for a tail-latency cutoff.
    fn hedge_delay(&self, hedge: &crate::config::HedgeConfig) -> Duration {
        let snapshot = self.latency.snapshot();
        if snapshot.count() < hedge.min_samples.max(1) as u64 {
            return hedge.max_delay;
        }
        snapshot
            .quantile(hedge.percentile)
            .map(|ns| Duration::from_nanos(ns).clamp(hedge.min_delay, hedge.max_delay))
            .unwrap_or(hedge.max_delay)
    }

    /// A point-in-time snapshot of the shard's latency histogram.
    pub fn latency_snapshot(&self) -> extract_obs::Snapshot {
        self.latency.snapshot()
    }
}

/// Why a shard produced no usable page for a request.
#[derive(Debug)]
enum ShardFailure {
    /// Breaker open: the shard was never asked.
    Skipped,
    /// Every attempt failed (last error kept for the log line).
    Failed(String),
}

/// The scatter-gather router application. `handle` is safe to call from
/// many worker threads at once.
pub struct RouterApp {
    config: RouterConfig,
    shards: Vec<Arc<Shard>>,
    counters: RouterCounters,
    server: Option<ServerHandle>,
}

impl RouterApp {
    /// A router over `config.shards`, breakers closed, nothing dialed.
    pub fn new(config: RouterConfig) -> RouterApp {
        let shards = config
            .shards
            .iter()
            .enumerate()
            .map(|(index, addr)| Arc::new(Shard::new(index, &config, *addr)))
            .collect();
        RouterApp { config, shards, counters: RouterCounters::default(), server: None }
    }

    /// Wire the running server in (enables `/shutdown` and drain-aware
    /// `/healthz`).
    pub fn attach_server(&mut self, handle: ServerHandle) {
        self.server = Some(handle);
    }

    /// The configuration this router was built with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The shard states, in configured order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The router counters.
    pub fn counters(&self) -> &RouterCounters {
        &self.counters
    }

    /// Route one request. Infallible: every outcome is a `Response`.
    pub fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/search") => self.search(request),
            ("GET", "/stats") => Response::json(200, self.render_stats()),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics(),
            ("GET", "/debug/traces") => match &self.server {
                Some(handle) => Response::json(200, obs_http::traces_json(handle.obs())),
                None => Response::error(503, "no server attached"),
            },
            ("POST", "/shutdown") => match &self.server {
                Some(handle) => {
                    handle.shutdown();
                    let mut w = JsonWriter::new();
                    w.obj_begin();
                    w.key("draining");
                    w.bool(true);
                    w.obj_end();
                    Response::json(200, w.finish())
                }
                None => Response::error(503, "no server attached"),
            },
            (_, "/search" | "/stats" | "/healthz" | "/metrics" | "/debug/traces"
            | "/shutdown") => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such route"),
        }
    }

    /// `/metrics`: the Prometheus exposition — router counters, per-shard
    /// latency histograms, and (when a server is attached) the shared
    /// server + request-stage families.
    fn metrics(&self) -> Response {
        let Some(handle) = &self.server else {
            return Response::error(503, "no server attached");
        };
        let mut w = PromWriter::new();
        // Read wins before fired so the scrape can never show more wins
        // than fired hedges (a hedge that wins between the two loads
        // inflates `fired`, never `wins`).
        let hedge_wins = self.counters.hedge_wins.load(Ordering::Relaxed);
        let hedges_fired = self.counters.hedges_fired.load(Ordering::Relaxed);
        for (name, help, value) in [
            ("retries", "Shard attempts re-tried after a failure.", {
                self.counters.retries.load(Ordering::Relaxed)
            }),
            ("hedges_fired", "Hedged second requests launched.", hedges_fired),
            ("hedge_wins", "Hedged requests whose response was used.", hedge_wins),
            ("breaker_opens", "Distinct breaker open transitions.", {
                self.counters.breaker_opens.load(Ordering::Relaxed)
            }),
            ("partial_responses", "200 responses flagged partial.", {
                self.counters.partial_responses.load(Ordering::Relaxed)
            }),
            ("probes", "Background health probes sent.", {
                self.counters.probes.load(Ordering::Relaxed)
            }),
        ] {
            let metric = format!("extract_router_{name}_total");
            w.help(&metric, help);
            w.type_(&metric, "counter");
            w.sample_u64(&metric, &[], value);
        }
        w.help(
            "extract_router_shard_breaker_closed",
            "1 when the shard's breaker admits traffic, else 0.",
        );
        w.type_("extract_router_shard_breaker_closed", "gauge");
        for shard in self.shards.iter() {
            w.sample_u64(
                "extract_router_shard_breaker_closed",
                &[("shard", &shard.index.to_string())],
                u64::from(shard.breaker.allows_requests()),
            );
        }
        w.help(
            "extract_router_shard_latency_seconds",
            "Successful shard exchange latency, per shard.",
        );
        w.type_("extract_router_shard_latency_seconds", "histogram");
        for shard in self.shards.iter() {
            w.histogram(
                "extract_router_shard_latency_seconds",
                &[("shard", &shard.index.to_string())],
                &shard.latency_snapshot(),
                1e-9,
            );
        }
        obs_http::write_server_metrics(&mut w, handle);
        obs_http::metrics_response(w)
    }

    /// `/healthz`: `200` while serving with at least one available
    /// shard; `503` when draining or when every breaker is open.
    fn healthz(&self) -> Response {
        let draining =
            self.server.as_ref().map(ServerHandle::is_shutting_down).unwrap_or(false);
        let available =
            self.shards.iter().filter(|s| s.breaker.allows_requests()).count();
        let ok = !draining && (available > 0 || self.shards.is_empty());
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("ok");
        w.bool(ok);
        if draining {
            w.key("draining");
            w.bool(true);
        }
        w.key("shards");
        w.obj_begin();
        w.key("total");
        w.num_u64(self.shards.len() as u64);
        w.key("available");
        w.num_u64(available as u64);
        w.obj_end();
        w.obj_end();
        Response::json(if ok { 200 } else { 503 }, w.finish())
    }

    /// `/search`: validate exactly like the shard daemon, then scatter.
    fn search(&self, request: &Request) -> Response {
        let Some(q) = request.param("q").filter(|q| !q.trim().is_empty()) else {
            return Response::error(400, "missing query parameter q");
        };
        let k = match request.param("k") {
            None => self.config.default_k,
            Some(raw) => match raw.parse::<usize>() {
                Ok(k) if k >= 1 => k.min(self.config.max_k),
                _ => return Response::error(400, "k must be an integer >= 1"),
            },
        };
        let offset = match request.param("offset") {
            None => 0,
            Some(raw) => match raw.parse::<usize>() {
                Ok(offset) => offset,
                Err(_) => return Response::error(400, "offset must be a non-negative integer"),
            },
        };
        // Adopt the client's trace ID (the serving layer parses and
        // mints one per request); mint here only when called outside a
        // server, e.g. directly from a test.
        let trace = request.trace_id.unwrap_or_else(TraceId::mint);
        self.scatter_search(q, k, offset, trace)
    }

    /// Scatter the over-fetch to every shard, gather, merge, render.
    /// The whole scatter-gather is the request's `search` span and the
    /// merge + render its `serialize` span; `trace` is forwarded to
    /// every shard as `X-Trace-Id`, so one ID follows the request across
    /// both tiers' logs and flight recorders.
    fn scatter_search(&self, q: &str, k: usize, offset: usize, trace: TraceId) -> Response {
        let deadline = Instant::now() + self.config.request_deadline;
        let requested_k = k.saturating_add(offset);
        let target =
            format!("/search?q={}&k={requested_k}&offset=0", percent_encode(q));
        let trace_header = format!("{TRACE_HEADER}: {trace}");
        // Fan out with N-1 scoped threads: the last shard is fetched on
        // the scattering thread itself, so the common small-N case pays
        // one spawn fewer per request (for N=2, half of them). The span
        // covers the whole scatter-gather because the attempt threads'
        // work *is* this thread's wait.
        let outcomes: Vec<Result<ShardPage, ShardFailure>> =
            extract_obs::time_stage(Stage::Search, || {
                std::thread::scope(|scope| {
                    let (spawned, inline) =
                        self.shards.split_at(self.shards.len().saturating_sub(1));
                    let handles: Vec<_> = spawned
                        .iter()
                        .map(|shard| {
                            let target = target.as_str();
                            let trace_header = trace_header.as_str();
                            scope.spawn(move || {
                                self.fetch_shard_page(shard, target, trace_header, deadline)
                            })
                        })
                        .collect();
                    let mut tail: Vec<Result<ShardPage, ShardFailure>> = inline
                        .iter()
                        .map(|shard| {
                            self.fetch_shard_page(
                                shard,
                                target.as_str(),
                                trace_header.as_str(),
                                deadline,
                            )
                        })
                        .collect();
                    let mut outcomes: Vec<Result<ShardPage, ShardFailure>> = handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                Err(ShardFailure::Failed(
                                    "scatter thread panicked".to_string(),
                                ))
                            })
                        })
                        .collect();
                    outcomes.append(&mut tail);
                    outcomes
                })
            });
        let queried = self.shards.len();
        let answered = outcomes.iter().filter(|o| o.is_ok()).count();
        for (index, outcome) in outcomes.iter().enumerate() {
            if let Err(ShardFailure::Failed(reason)) = outcome {
                eprintln!(
                    "router: trace={trace} shard {index} dropped from response: {reason}"
                );
            }
        }
        if answered == 0 {
            return Response::error(503, "no shards available")
                .with_retry_after(UNAVAILABLE_RETRY_AFTER_SECS);
        }
        extract_obs::time_stage(Stage::Serialize, || {
            let pages: Vec<Option<ShardPage>> =
                outcomes.into_iter().map(Result::ok).collect();
            let doc_bases = self.doc_bases();
            let merged: MergedPage =
                merge::merge_pages(&pages, &doc_bases, k, offset, requested_k);
            let partial = answered < queried || merged.truncated;
            if partial {
                bump(&self.counters.partial_responses);
            }
            let body = merge::render_search(
                q,
                k,
                offset,
                &merged,
                partial,
                ShardTally { queried, answered },
            );
            Response::json(200, body)
        })
    }

    /// Global doc-id bases: prefix sums of per-shard document counts in
    /// configured order. An unlearned count contributes zero — its shard
    /// cannot have answered (the fetch path learns the count first), and
    /// the response is already marked partial.
    fn doc_bases(&self) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.shards.len());
        let mut base: u64 = 0;
        for shard in self.shards.iter() {
            bases.push(base);
            base = base.saturating_add(shard.doc_count().unwrap_or(0));
        }
        bases
    }

    /// One shard's page for this request: breaker gate, doc-count
    /// bootstrap, then the retry loop.
    fn fetch_shard_page(
        &self,
        shard: &Arc<Shard>,
        target: &str,
        trace_header: &str,
        deadline: Instant,
    ) -> Result<ShardPage, ShardFailure> {
        if !shard.breaker.allows_requests() {
            return Err(ShardFailure::Skipped);
        }
        if shard.doc_count().is_none() && !self.learn_doc_count(shard, deadline) {
            // A shard that can't even report its corpus size is failing:
            // count it against the breaker like any other failed attempt.
            if shard.breaker.on_failure() {
                bump(&self.counters.breaker_opens);
            }
            return Err(ShardFailure::Failed("doc count unavailable".to_string()));
        }
        let response = self.fetch_with_retries(shard, target, trace_header, deadline)?;
        if response.status != 200 {
            return Err(ShardFailure::Failed(format!(
                "shard answered {}",
                response.status
            )));
        }
        // A live shard stamps every answer with its corpus epoch. If it
        // moved since we last looked, the shard mutated mid-session and
        // our cached document count — hence this request's doc-id
        // remap — may be stale: relearn it *before* the merge reads
        // `doc_bases`, so the global ids stay correct without waiting
        // for a breaker heal.
        if let Some(epoch) = response.corpus_epoch {
            let known = shard.corpus_epoch.swap(epoch, Ordering::SeqCst);
            if known != epoch && !self.learn_doc_count(shard, deadline) {
                return Err(ShardFailure::Failed(
                    "doc count unavailable after epoch change".to_string(),
                ));
            }
        }
        merge::parse_page(&response.body).map_err(ShardFailure::Failed)
    }

    /// Learn a shard's document count (and corpus epoch, when the shard
    /// reports one) from its `/stats`. Runs under the caller's deadline;
    /// returns whether the count is now known.
    fn learn_doc_count(&self, shard: &Shard, deadline: Instant) -> bool {
        let Ok(response) = shard.pool.request("GET", "/stats", deadline) else {
            return false;
        };
        if response.status != 200 {
            return false;
        }
        let Ok(stats) = json::parse(&response.body) else {
            return false;
        };
        let corpus = stats.get("corpus");
        let Some(documents) =
            corpus.and_then(|v| v.get("documents")).and_then(Value::as_u64)
        else {
            return false;
        };
        if let Some(epoch) = corpus.and_then(|v| v.get("epoch")).and_then(Value::as_u64) {
            shard.corpus_epoch.store(epoch.min(EPOCH_UNKNOWN - 1), Ordering::SeqCst);
        }
        shard.doc_count.store(documents.min(DOC_COUNT_UNKNOWN - 1), Ordering::SeqCst);
        true
    }

    /// The per-shard retry loop: hedged attempts with exponential
    /// backoff against the one absolute deadline. Success means a
    /// response arrived — any status; HTTP-level failures (5xx / 429)
    /// still count against the breaker and the retry budget.
    fn fetch_with_retries(
        &self,
        shard: &Arc<Shard>,
        target: &str,
        trace_header: &str,
        deadline: Instant,
    ) -> Result<WireResponse, ShardFailure> {
        let mut last_error = String::new();
        for attempt in 0..=self.config.retry_budget {
            if Instant::now() >= deadline {
                last_error = "request deadline exhausted".to_string();
                break;
            }
            if attempt > 0 {
                bump(&self.counters.retries);
                let exp = attempt.saturating_sub(1).min(16);
                let backoff = self
                    .config
                    .retry_backoff_base
                    .saturating_mul(1_u32 << exp)
                    .min(self.config.retry_backoff_max)
                    .min(deadline.saturating_duration_since(Instant::now()));
                std::thread::sleep(backoff);
            }
            let started = Instant::now();
            match self.exchange_hedged(shard, target, trace_header, deadline) {
                Ok((response, from_hedge)) if Self::usable(&response) => {
                    // A hedge "wins" only when its response is actually
                    // used — a hedge that merely arrived first with a
                    // 5xx/429 is not a win.
                    if from_hedge {
                        bump(&self.counters.hedge_wins);
                    }
                    shard.breaker.on_success();
                    shard.record_latency(started.elapsed());
                    return Ok(response);
                }
                Ok((response, _)) => {
                    last_error = format!("status {}", response.status);
                    if shard.breaker.on_failure() {
                        bump(&self.counters.breaker_opens);
                    }
                }
                Err(error) => {
                    last_error = error.to_string();
                    if shard.breaker.on_failure() {
                        bump(&self.counters.breaker_opens);
                    }
                    // The deadline is absolute: once an attempt timed
                    // out against it, further attempts cannot fit.
                    if matches!(error, ClientError::TimedOut) {
                        break;
                    }
                }
            }
        }
        Err(ShardFailure::Failed(last_error))
    }

    /// A response the scatter path can use (transport succeeded and the
    /// shard was not overloaded or erroring).
    fn usable(response: &WireResponse) -> bool {
        response.status < 500 && response.status != 429
    }

    /// One attempt, hedged: launch the primary, and if it outlives the
    /// shard's hedge delay, race an identical second request. First
    /// response (success or failure) from either wins; the loser runs
    /// on to its own deadline and its connection pools or drops itself.
    /// The returned flag says whether the winning response came from the
    /// hedge — the *caller* decides if that counts as a hedge win, since
    /// only a usable response is one.
    fn exchange_hedged(
        &self,
        shard: &Arc<Shard>,
        target: &str,
        trace_header: &str,
        deadline: Instant,
    ) -> Result<(WireResponse, bool), ClientError> {
        let headers = [trace_header];
        let Some(hedge) = self.config.hedge.as_ref() else {
            return shard
                .pool
                .request_with("GET", target, &headers, deadline)
                .map(|r| (r, false));
        };
        let delay = shard.hedge_delay(hedge);
        let remaining = deadline.saturating_duration_since(Instant::now());
        // A hedge that could only start after the deadline is pointless.
        if delay >= remaining {
            return shard
                .pool
                .request_with("GET", target, &headers, deadline)
                .map(|r| (r, false));
        }
        let (tx, rx) = mpsc::channel();
        let launch = |is_hedge: bool| {
            let shard = Arc::clone(shard);
            let target = target.to_string();
            let trace_header = trace_header.to_string();
            let tx = tx.clone();
            // xlint: allow(L8, "hedge racer: at most two per exchange, lifetime bounded by the request deadline plus GATHER_GRACE; the gather loop below accounts for both via `outstanding`")
            std::thread::spawn(move || {
                let result =
                    shard.pool.request_with("GET", &target, &[&trace_header], deadline);
                // xlint: allow(L7, "the gather side hanging up early (first response won) is the expected benign race")
                let _ = tx.send((is_hedge, result));
            });
        };
        launch(false);
        let first = match rx.recv_timeout(delay) {
            Ok(outcome) => Some(outcome),
            Err(_) => {
                bump(&self.counters.hedges_fired);
                launch(true);
                None
            }
        };
        let mut outstanding = if first.is_some() { 0 } else { 2 };
        let mut queue: Vec<(bool, Result<WireResponse, ClientError>)> =
            first.into_iter().collect();
        let mut last_error: Option<ClientError> = None;
        loop {
            let (is_hedge, result) = match queue.pop() {
                Some(next) => next,
                None if outstanding > 0 => {
                    let wait = deadline
                        .saturating_duration_since(Instant::now())
                        .saturating_add(GATHER_GRACE);
                    match rx.recv_timeout(wait) {
                        Ok(next) => {
                            outstanding -= 1;
                            next
                        }
                        Err(_) => break,
                    }
                }
                None => break,
            };
            match result {
                Ok(response) => return Ok((response, is_hedge)),
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error.unwrap_or(ClientError::TimedOut))
    }

    /// One background probe round: re-check every shard whose breaker
    /// wants a probe, and (re-)learn missing document counts.
    pub fn probe_round(&self) {
        let deadline = Instant::now() + self.config.probe_deadline;
        std::thread::scope(|scope| {
            for shard in self.shards.iter() {
                scope.spawn(move || {
                    if shard.breaker.probe_due() {
                        bump(&self.counters.probes);
                        match shard.pool.request("GET", "/healthz", deadline) {
                            Ok(response) if response.status == 200 => {
                                // The shard may have restarted with a
                                // different corpus: relearn its size and
                                // epoch from scratch.
                                shard.doc_count.store(DOC_COUNT_UNKNOWN, Ordering::SeqCst);
                                shard.corpus_epoch.store(EPOCH_UNKNOWN, Ordering::SeqCst);
                                shard.breaker.on_success();
                            }
                            _ => {
                                shard.breaker.on_failure();
                            }
                        }
                    }
                    if shard.breaker.allows_requests() && shard.doc_count().is_none() {
                        bump(&self.counters.probes);
                        self.learn_doc_count(shard, deadline);
                    }
                });
            }
        });
    }

    /// The `/stats` body: router counters, per-shard health, and
    /// aggregated upstream server counters from the shards' own
    /// `/stats` (fetched live under the probe deadline).
    pub fn render_stats(&self) -> String {
        let deadline = Instant::now() + self.config.probe_deadline;
        let upstream: Vec<Option<Value>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let response =
                            shard.pool.request("GET", "/stats", deadline).ok()?;
                        if response.status != 200 {
                            return None;
                        }
                        json::parse(&response.body).ok()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap_or(None)).collect()
        });
        let sum_server = |key: &str| -> u64 {
            upstream
                .iter()
                .flatten()
                .filter_map(|v| v.get("server").and_then(|s| s.get(key)))
                .filter_map(Value::as_u64)
                .sum()
        };
        // Load wins before fired: the invariant is wins <= fired, and a
        // hedge that fires-and-wins between the two loads must inflate
        // `fired` (harmless), never `wins`.
        let hedge_wins = self.counters.hedge_wins.load(Ordering::Relaxed);
        let hedges_fired = self.counters.hedges_fired.load(Ordering::Relaxed);
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("router");
        w.obj_begin();
        w.key("shards");
        w.num_u64(self.shards.len() as u64);
        w.key("retries");
        w.num_u64(self.counters.retries.load(Ordering::Relaxed));
        w.key("hedges_fired");
        w.num_u64(hedges_fired);
        w.key("hedge_wins");
        w.num_u64(hedge_wins);
        w.key("breaker_opens");
        w.num_u64(self.counters.breaker_opens.load(Ordering::Relaxed));
        w.key("partial_responses");
        w.num_u64(self.counters.partial_responses.load(Ordering::Relaxed));
        w.key("probes");
        w.num_u64(self.counters.probes.load(Ordering::Relaxed));
        w.obj_end();
        w.key("shards");
        w.arr_begin();
        for (shard, stats) in self.shards.iter().zip(upstream.iter()) {
            w.obj_begin();
            w.key("addr");
            w.str(&shard.pool.addr().to_string());
            w.key("breaker");
            w.str(shard.breaker.state().name());
            w.key("documents");
            match shard.doc_count() {
                Some(n) => w.num_u64(n),
                None => w.null(),
            }
            w.key("corpus_epoch");
            match shard.corpus_epoch() {
                Some(n) => w.num_u64(n),
                None => w.null(),
            }
            w.key("idle_connections");
            w.num_u64(shard.pool.idle() as u64);
            let latency = shard.latency_snapshot();
            w.key("latency_p50_us");
            match latency.p50() {
                Some(ns) => w.num_u64(ns / 1_000),
                None => w.null(),
            }
            w.key("latency_p90_us");
            match latency.p90() {
                Some(ns) => w.num_u64(ns / 1_000),
                None => w.null(),
            }
            w.key("reachable");
            w.bool(stats.is_some());
            w.obj_end();
        }
        w.arr_end();
        w.key("upstream");
        w.obj_begin();
        w.key("answered");
        w.num_u64(upstream.iter().flatten().count() as u64);
        for key in ["accepted", "admitted", "served_ok", "served_error"] {
            w.key(key);
            w.num_u64(sum_server(key));
        }
        w.key("documents");
        w.num_u64(
            upstream
                .iter()
                .flatten()
                .filter_map(|v| v.get("corpus").and_then(|c| c.get("documents")))
                .filter_map(Value::as_u64)
                .sum(),
        );
        w.obj_end();
        w.obj_end();
        w.finish()
    }
}

/// Bind, serve and probe until shutdown: the moral twin of the umbrella
/// crate's `serve_corpus`. Spawns the background prober (first round
/// runs synchronously so doc counts are learned before the socket is
/// announced), runs the server until drained, then joins the prober.
pub fn serve_router(
    addr: &str,
    serve_config: extract_serve::ServeConfig,
    router_config: RouterConfig,
    on_ready: impl FnOnce(std::net::SocketAddr, ServerHandle),
) -> std::io::Result<()> {
    let server = extract_serve::Server::bind(addr, serve_config)?;
    let handle = server.handle();
    let mut app = RouterApp::new(router_config);
    app.attach_server(handle.clone());
    let app = Arc::new(app);
    app.probe_round();
    let prober = {
        let app = Arc::clone(&app);
        let handle = handle.clone();
        std::thread::spawn(move || {
            while !handle.is_shutting_down() {
                std::thread::sleep(app.config().probe_interval);
                app.probe_round();
            }
        })
    };
    on_ready(server.local_addr(), handle);
    server.run(|request| app.handle(request));
    if prober.join().is_err() {
        // A panicked prober means health state stopped updating some time
        // ago; surface that instead of exiting silently "clean".
        eprintln!("router: health prober thread panicked");
    }
    Ok(())
}
