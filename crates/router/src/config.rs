//! Router tuning knobs: deadlines, retry budgets, hedging, breaker
//! thresholds and page-size policy in one place.

use std::net::SocketAddr;
use std::time::Duration;

use extract_serve::ClientConfig;

/// When (and whether) to hedge a shard request with a second attempt.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Latency percentile (0–1) of the shard's recent requests after
    /// which the hedge fires — `0.9` hedges the slowest ~10%.
    pub percentile: f64,
    /// Floor on the hedge delay, so a cache-hot shard (microsecond
    /// latencies) doesn't trigger a hedge on every scheduler hiccup.
    pub min_delay: Duration,
    /// Ceiling on the hedge delay — and the delay used before the shard
    /// has [`HedgeConfig::min_samples`] observations.
    pub max_delay: Duration,
    /// Observations required before the percentile is trusted.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            percentile: 0.9,
            min_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            min_samples: 8,
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard daemons, in partition order — the order defines the
    /// global doc-id remapping (shard 0's documents come first).
    pub shards: Vec<SocketAddr>,
    /// Absolute deadline for one client request end to end: every
    /// scatter attempt, retry, backoff sleep and hedge races this one
    /// clock.
    pub request_deadline: Duration,
    /// Deadline for background `/healthz` probes and `/stats` fan-outs.
    pub probe_deadline: Duration,
    /// Connection-level knobs (connect timeout, body cap, dial backoff)
    /// for every shard connection.
    pub client: ClientConfig,
    /// Kept-alive connections retained per shard when idle.
    pub max_idle_per_shard: usize,
    /// Extra attempts per shard per request after the first failure.
    pub retry_budget: u32,
    /// First retry backoff; doubles per retry.
    pub retry_backoff_base: Duration,
    /// Retry backoff ceiling.
    pub retry_backoff_max: Duration,
    /// Hedged-request policy; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Consecutive shard failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks traffic before a half-open
    /// `/healthz` probe may close it again.
    pub breaker_cooldown: Duration,
    /// How often the background prober wakes.
    pub probe_interval: Duration,
    /// Page size when the request has no `k`.
    pub default_k: usize,
    /// Hard page-size cap; larger `k`s are clamped (visible in the
    /// response's `k` field). Keep `max_k + offset` within the shards'
    /// own `--max-k`, or deep windows degrade to partial results.
    pub max_k: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            request_deadline: Duration::from_secs(2),
            probe_deadline: Duration::from_millis(250),
            client: ClientConfig::default(),
            max_idle_per_shard: 8,
            retry_budget: 2,
            retry_backoff_base: Duration::from_millis(20),
            retry_backoff_max: Duration::from_millis(200),
            hedge: Some(HedgeConfig::default()),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(1_000),
            probe_interval: Duration::from_millis(200),
            default_k: 10,
            max_k: 100,
        }
    }
}
