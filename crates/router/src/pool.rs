//! A pool of keep-alive connections to one shard daemon.
//!
//! [`HttpClient`](extract_serve::HttpClient) is deliberately
//! single-threaded (one socket, one request at a time); the router
//! serves many concurrent requests, each scattering to every shard, so
//! each shard gets a pool: check a client out, run the exchange, put it
//! back if its connection survived. A client whose request failed is
//! *dropped*, not returned — its socket is in an unknown framing state
//! and the next checkout simply dials fresh (with the client's own
//! bounded, jittered backoff).

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Instant;

use extract_serve::{ClientConfig, ClientError, HttpClient, WireResponse};

/// See the serving tier's poisoning policy: the guarded `Vec` is valid
/// at every statement boundary, so recover instead of cascading.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bounded pool of [`HttpClient`]s for one shard address.
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    config: ClientConfig,
    max_idle: usize,
    conns: Mutex<Vec<HttpClient>>,
}

impl ClientPool {
    /// An empty pool for `addr`; connections are dialed on first use.
    pub fn new(addr: SocketAddr, config: ClientConfig, max_idle: usize) -> ClientPool {
        ClientPool { addr, config, max_idle: max_idle.max(1), conns: Mutex::new(Vec::new()) }
    }

    /// The shard address this pool dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Idle kept-alive clients right now.
    pub fn idle(&self) -> usize {
        lock_unpoisoned(&self.conns).len()
    }

    /// Drop every idle connection (the next request dials fresh).
    pub fn clear(&self) {
        lock_unpoisoned(&self.conns).clear();
    }

    /// Take a client out of the pool — or build a fresh one — *without*
    /// touching its socket. The `conns` guard lives exactly as long as
    /// the `Vec::pop`: the caller receives an owned handle and performs
    /// all I/O lock-free, so a slow shard can never convoy the other
    /// checkouts behind a socket operation (L6 enforces this shape).
    fn check_out(&self) -> HttpClient {
        let pooled = lock_unpoisoned(&self.conns).pop();
        pooled.unwrap_or_else(|| HttpClient::new(self.addr, self.config.clone()))
    }

    /// Return a client whose exchange succeeded. Re-locks `conns` only
    /// after all I/O is done; beyond `max_idle` the client is dropped
    /// (its socket closes) rather than pooled.
    fn check_in(&self, client: HttpClient) {
        let mut conns = lock_unpoisoned(&self.conns);
        if conns.len() < self.max_idle {
            conns.push(client);
        }
    }

    /// One request/response exchange against the shard under an absolute
    /// `deadline`, riding a pooled connection when one is idle. On
    /// success the connection returns to the pool (up to `max_idle`); on
    /// failure it is dropped. The exchange itself runs between
    /// [`check_out`](Self::check_out) and [`check_in`](Self::check_in),
    /// with no pool lock held.
    pub fn request(
        &self,
        method: &str,
        target: &str,
        deadline: Instant,
    ) -> Result<WireResponse, ClientError> {
        self.request_with(method, target, &[], deadline)
    }

    /// [`request`](Self::request) with extra raw header lines (no CRLF),
    /// e.g. `X-Trace-Id: …` so a scattered shard request carries its
    /// client request's trace ID.
    pub fn request_with(
        &self,
        method: &str,
        target: &str,
        extra_headers: &[&str],
        deadline: Instant,
    ) -> Result<WireResponse, ClientError> {
        let mut client = self.check_out();
        let result = client.request_with(method, target, extra_headers, deadline);
        if result.is_ok() {
            self.check_in(client);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::time::Duration;

    /// A keep-alive server answering every request with `body` until the
    /// listener drops.
    fn keepalive_server(body: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    loop {
                        let mut line = String::new();
                        let mut saw_any = false;
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) => return,
                                Ok(_) if line == "\r\n" || line == "\n" => break,
                                Ok(_) => saw_any = true,
                                Err(_) => return,
                            }
                        }
                        if !saw_any {
                            return;
                        }
                        let response = format!(
                            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                            body.len()
                        );
                        if stream.write_all(response.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    fn deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn pool_reuses_connections_and_bounds_idle() {
        let addr = keepalive_server("{}");
        let pool = ClientPool::new(addr, ClientConfig::default(), 2);
        assert_eq!(pool.idle(), 0);
        // Sequential requests ride one pooled connection.
        for _ in 0..5 {
            let response = pool.request("GET", "/x", deadline()).expect("response");
            assert_eq!(response.status, 200);
        }
        assert_eq!(pool.idle(), 1, "one kept-alive client serves a sequential load");
        // Concurrent checkouts grow the pool, but never past max_idle.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| pool.request("GET", "/y", deadline()).map(|r| r.status)))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("join").expect("response"), 200);
            }
        });
        assert!(pool.idle() <= 2, "idle pool respects max_idle, got {}", pool.idle());
        pool.clear();
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn failed_requests_do_not_return_connections_to_the_pool() {
        // Nothing listening: every request fails, the pool stays empty.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let config = ClientConfig {
            connect_attempts: 1,
            connect_timeout: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let pool = ClientPool::new(addr, config, 4);
        assert!(pool.request("GET", "/x", deadline()).is_err());
        assert_eq!(pool.idle(), 0, "a failed client must be dropped, not pooled");
    }
}
