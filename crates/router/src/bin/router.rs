//! `router` — the eXtract scatter-gather front tier.
//!
//! One router fronts N `serve` shard daemons, each holding a partition
//! of the corpus, and exposes the same `/search` / `/stats` /
//! `/healthz` / `/shutdown` surface as a single daemon over the union
//! corpus. See the README "Distributed serving" section.
//!
//! ```text
//! router --shards ADDR,ADDR[,...] [options]
//!
//! required:
//!   --shards LIST    comma-separated shard addresses in partition order
//!                    (the order defines the global doc-id remapping)
//!
//! options:
//!   --port P         TCP port (default 7979; 0 picks an ephemeral port)
//!   --workers N      worker threads (default: available parallelism)
//!   --queue-depth N  admission queue bound, excess shed with 503
//!                    (default 64)
//!   --per-client N   in-flight cap per peer IP, shed with 429
//!                    (default workers + queue depth)
//!   --deadline-ms N  absolute per-request deadline covering every
//!                    retry, backoff and hedge (default 2000)
//!   --retry-budget N extra attempts per shard per request (default 2)
//!   --no-hedge       disable hedged second requests
//!   --hedge-min-ms N / --hedge-max-ms N
//!                    clamp band for the hedge delay (default 20 / 500)
//!   --breaker-threshold N
//!                    consecutive failures that open a shard's breaker
//!                    (default 3)
//!   --breaker-cooldown-ms N
//!                    open-breaker cooldown before a half-open probe
//!                    (default 1000)
//!   --probe-interval-ms N
//!                    background prober period (default 200)
//!   --default-k N    page size when the request has no k (default 10)
//!   --max-k N        hard page-size cap (default 100)
//!   --trace-capacity N
//!                    flight-recorder depth: most recent request traces
//!                    kept for /debug/traces (min 1, default 128)
//!   --slow-ms N      slow-request threshold; requests at or over it log
//!                    one key=value stage-breakdown line (default 500)
//! ```
//!
//! The router prints exactly one ready line to stdout once it accepts
//! connections:
//!
//! ```text
//! extract-router listening on http://127.0.0.1:7979 (shards=2 workers=4 queue=64)
//! ```
//!
//! and exits 0 after a `POST /shutdown` finished draining.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use extract_router::{HedgeConfig, RouterConfig};
use extract_serve::ServeConfig;

struct Options {
    shards: Vec<SocketAddr>,
    port: u16,
    workers: usize,
    queue_depth: usize,
    per_client: Option<usize>,
    deadline_ms: u64,
    retry_budget: u32,
    hedge: bool,
    hedge_min_ms: u64,
    hedge_max_ms: u64,
    breaker_threshold: u32,
    breaker_cooldown_ms: u64,
    probe_interval_ms: u64,
    default_k: usize,
    max_k: usize,
    trace_capacity: usize,
    slow_ms: u64,
}

impl Default for Options {
    fn default() -> Options {
        let defaults = RouterConfig::default();
        let hedge = HedgeConfig::default();
        let serve = ServeConfig::default();
        Options {
            shards: Vec::new(),
            port: 7979,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_depth: 64,
            per_client: None,
            deadline_ms: defaults.request_deadline.as_millis() as u64,
            retry_budget: defaults.retry_budget,
            hedge: true,
            hedge_min_ms: hedge.min_delay.as_millis() as u64,
            hedge_max_ms: hedge.max_delay.as_millis() as u64,
            breaker_threshold: defaults.breaker_threshold,
            breaker_cooldown_ms: defaults.breaker_cooldown.as_millis() as u64,
            probe_interval_ms: defaults.probe_interval.as_millis() as u64,
            default_k: defaults.default_k,
            max_k: defaults.max_k,
            trace_capacity: serve.trace_capacity,
            slow_ms: serve.slow_request.as_millis() as u64,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: router --shards ADDR,ADDR[,...] [--port P] [--workers N] \
         [--queue-depth N] [--per-client N] [--deadline-ms N] [--retry-budget N] \
         [--no-hedge] [--hedge-min-ms N] [--hedge-max-ms N] [--breaker-threshold N] \
         [--breaker-cooldown-ms N] [--probe-interval-ms N] [--default-k N] [--max-k N] \
         [--trace-capacity N] [--slow-ms N]"
    );
    ExitCode::from(2)
}

fn parse_shards(raw: &str) -> Result<Vec<SocketAddr>, ExitCode> {
    let mut shards = Vec::new();
    for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part.to_socket_addrs().ok().and_then(|mut addrs| addrs.next()) {
            Some(addr) => shards.push(addr),
            None => {
                eprintln!("router: `{part}` is not a resolvable shard address");
                return Err(usage());
            }
        }
    }
    Ok(shards)
}

fn parse_options() -> Result<Options, ExitCode> {
    let mut options = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, ExitCode> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(usage)
        };
        match args.get(i).map(String::as_str).unwrap_or("") {
            "--shards" => options.shards = parse_shards(&value(&mut i)?)?,
            "--port" => {
                let raw = parse_num(&value(&mut i)?)?;
                options.port = u16::try_from(raw).map_err(|_| {
                    eprintln!("router: port {raw} is out of range (0-65535)");
                    usage()
                })?;
            }
            "--workers" => options.workers = parse_num(&value(&mut i)?)?,
            "--queue-depth" => options.queue_depth = parse_num(&value(&mut i)?)?,
            "--per-client" => options.per_client = Some(parse_num(&value(&mut i)?)?),
            "--deadline-ms" => options.deadline_ms = parse_num(&value(&mut i)?)? as u64,
            "--retry-budget" => {
                options.retry_budget = parse_num(&value(&mut i)?)?.min(u32::MAX as usize) as u32;
            }
            "--no-hedge" => options.hedge = false,
            "--hedge-min-ms" => options.hedge_min_ms = parse_num(&value(&mut i)?)? as u64,
            "--hedge-max-ms" => options.hedge_max_ms = parse_num(&value(&mut i)?)? as u64,
            "--breaker-threshold" => {
                options.breaker_threshold =
                    parse_num(&value(&mut i)?)?.min(u32::MAX as usize) as u32;
            }
            "--breaker-cooldown-ms" => {
                options.breaker_cooldown_ms = parse_num(&value(&mut i)?)? as u64;
            }
            "--probe-interval-ms" => {
                options.probe_interval_ms = parse_num(&value(&mut i)?)? as u64;
            }
            "--default-k" => options.default_k = parse_num(&value(&mut i)?)?,
            "--max-k" => options.max_k = parse_num(&value(&mut i)?)?,
            "--trace-capacity" => options.trace_capacity = parse_num(&value(&mut i)?)?,
            "--slow-ms" => options.slow_ms = parse_num(&value(&mut i)?)? as u64,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("router: unknown argument `{other}`");
                return Err(usage());
            }
        }
        i += 1;
    }
    if options.shards.is_empty() {
        eprintln!("router: at least one shard is required (--shards ADDR[,ADDR...])");
        return Err(usage());
    }
    Ok(options)
}

fn parse_num(raw: &str) -> Result<usize, ExitCode> {
    raw.parse().map_err(|_| {
        eprintln!("router: `{raw}` is not a non-negative integer");
        usage()
    })
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(code) => return code,
    };

    let serve_config = ServeConfig {
        workers: options.workers.max(1),
        queue_depth: options.queue_depth,
        per_client_inflight: options
            .per_client
            .unwrap_or(options.workers.max(1) + options.queue_depth),
        io_timeout: Duration::from_secs(10),
        trace_capacity: options.trace_capacity,
        slow_request: Duration::from_millis(options.slow_ms),
        ..Default::default()
    };
    let router_config = RouterConfig {
        shards: options.shards.clone(),
        request_deadline: Duration::from_millis(options.deadline_ms.max(1)),
        retry_budget: options.retry_budget,
        hedge: options.hedge.then(|| HedgeConfig {
            min_delay: Duration::from_millis(options.hedge_min_ms),
            max_delay: Duration::from_millis(options.hedge_max_ms.max(options.hedge_min_ms)),
            ..HedgeConfig::default()
        }),
        breaker_threshold: options.breaker_threshold,
        breaker_cooldown: Duration::from_millis(options.breaker_cooldown_ms.max(1)),
        probe_interval: Duration::from_millis(options.probe_interval_ms.max(1)),
        default_k: options.default_k,
        max_k: options.max_k,
        ..RouterConfig::default()
    };

    let addr = format!("127.0.0.1:{}", options.port);
    let shards = router_config.shards.len();
    let (workers, queue) = (serve_config.workers, serve_config.queue_depth);
    let served =
        extract_router::serve_router(&addr, serve_config, router_config, |addr, _handle| {
            println!(
                "extract-router listening on http://{addr} \
                 (shards={shards} workers={workers} queue={queue})"
            );
            // xlint: allow(L7, "startup banner flush; a broken stdout must not kill the router")
            let _ = std::io::stdout().flush();
        });
    if let Err(e) = served {
        eprintln!("router: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("router: drained, bye");
    ExitCode::SUCCESS
}
