//! Per-shard health: a consecutive-failure circuit breaker with
//! half-open probes. (Per-shard latency lives in the shard's
//! `extract_obs::Histogram`, which the hedging policy reads its
//! percentile from.)
//!
//! The breaker's job is to turn "this shard times out every request"
//! from a per-request discovery (each one burning its retry budget
//! against a dead socket) into shared state: after
//! [`threshold`](Breaker) consecutive failures the breaker *opens* and
//! the scatter path skips the shard outright. After a cooldown the
//! background prober moves it to *half-open* and risks one `/healthz`
//! probe; success closes the breaker, failure re-opens it for another
//! cooldown. Requests only ever flow to **closed** breakers — half-open
//! capacity is spent on probes, not user traffic.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The three breaker positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests skip this shard until the cooldown passes.
    Open,
    /// Cooldown passed: one probe decides between `Closed` and `Open`.
    HalfOpen,
}

impl BreakerState {
    /// The wire name (`/healthz`, `/stats`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A consecutive-failure circuit breaker (see the module docs).
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    breaker: Mutex<BreakerInner>,
}

/// See [`lock_unpoisoned`](extract_serve::server) — same recover-don't-
/// cascade policy: the guarded state is a tiny enum + counters, valid at
/// every statement boundary.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and re-probing after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            breaker: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// The current position.
    pub fn state(&self) -> BreakerState {
        lock_unpoisoned(&self.breaker).state
    }

    /// Whether user traffic may flow to this shard right now.
    pub fn allows_requests(&self) -> bool {
        self.state() == BreakerState::Closed
    }

    /// Record a successful exchange: failures reset, breaker closes
    /// (this is how a half-open probe heals the shard).
    pub fn on_success(&self) {
        let mut breaker = lock_unpoisoned(&self.breaker);
        breaker.state = BreakerState::Closed;
        breaker.consecutive_failures = 0;
        breaker.opened_at = None;
    }

    /// Record a failed exchange. Returns `true` when this failure is the
    /// one that *opened* the breaker (so the caller counts distinct
    /// opens, not every failure while open).
    pub fn on_failure(&self) -> bool {
        let mut breaker = lock_unpoisoned(&self.breaker);
        breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
        match breaker.state {
            BreakerState::Closed if breaker.consecutive_failures >= self.threshold => {
                breaker.state = BreakerState::Open;
                breaker.opened_at = Some(Instant::now());
                true
            }
            // A failed half-open probe re-opens for another full cooldown.
            BreakerState::HalfOpen => {
                breaker.state = BreakerState::Open;
                breaker.opened_at = Some(Instant::now());
                false
            }
            _ => false,
        }
    }

    /// Whether the prober should risk a probe now. Moves `Open` →
    /// `HalfOpen` when the cooldown has passed (so concurrent callers
    /// see the transition once); an already half-open breaker keeps
    /// asking for probes until one resolves it.
    pub fn probe_due(&self) -> bool {
        let mut breaker = lock_unpoisoned(&self.breaker);
        match breaker.state {
            BreakerState::Closed => false,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed =
                    breaker.opened_at.map(|at| at.elapsed()).unwrap_or(Duration::MAX);
                if elapsed >= self.cooldown {
                    breaker.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = Breaker::new(3, Duration::from_millis(50));
        assert!(b.allows_requests());
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert!(b.allows_requests(), "two failures stay under the threshold");
        assert!(b.on_failure(), "the third failure opens the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_requests());
        assert!(!b.on_failure(), "already open: not a fresh open");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = Breaker::new(2, Duration::from_millis(50));
        assert!(!b.on_failure());
        b.on_success();
        assert!(!b.on_failure(), "the streak restarted at zero");
        assert!(b.on_failure(), "two in a row now");
    }

    #[test]
    fn open_breaker_asks_for_a_probe_only_after_the_cooldown() {
        let b = Breaker::new(1, Duration::from_millis(40));
        assert!(b.on_failure());
        assert!(!b.probe_due(), "cooldown still running");
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.probe_due(), "cooldown passed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allows_requests(), "half-open serves probes, not traffic");
        // A successful probe closes it.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_requests());
    }

    #[test]
    fn failed_half_open_probe_restarts_the_cooldown() {
        let b = Breaker::new(1, Duration::from_millis(40));
        assert!(b.on_failure());
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.probe_due());
        assert!(!b.on_failure(), "re-open is not a fresh open");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.probe_due(), "a fresh cooldown is running");
    }
}
