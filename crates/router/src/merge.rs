//! Parsing shard `/search` pages and merging them into one global page.
//!
//! The merge must reproduce — exactly — what a single daemon over the
//! union corpus would have returned. Three rules make that hold:
//!
//! 1. **Doc-id remapping.** Each shard numbers its documents from zero.
//!    The router assigns shard `i` the id range starting at
//!    `doc_bases[i]` (prefix sums of shard corpus sizes in configured
//!    shard order), so a hit's global id is `base + local id` — the same
//!    id the document would carry in the concatenated corpus.
//! 2. **Ordering.** Hits sort by the session tier's documented rule:
//!    score descending, then global doc id ascending, then root node id
//!    ascending. Ties across shards are broken by the remapped ids, so
//!    the order is deterministic regardless of which shard answered
//!    first.
//! 3. **Windowing.** Each shard is over-fetched with `k' = k + offset`
//!    (and offset 0) so the global window `[offset, offset + k)` of the
//!    merged order is fully covered; the router then applies the offset
//!    once, globally.
//!
//! A shard that returns fewer than `min(k', total)` hits (its own
//! `--max-k` clamp, for instance) may be hiding rows that belong in the
//! global window — the merged page reports that as *truncated* and the
//! router surfaces `"partial": true`.

use std::cmp::Ordering;

use extract_serve::json::{self, JsonWriter, Value};

/// One hit from a shard's `/search` page, ids still shard-local.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHit {
    /// Document name (`corpus.name`).
    pub doc_name: String,
    /// Shard-local document id.
    pub doc_id: u64,
    /// Result root node id (document-local, no remapping needed).
    pub root: u64,
    /// Relevance score.
    pub score: f64,
    /// Rendered snippet XML.
    pub snippet: String,
}

/// One shard's parsed `/search` page.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPage {
    /// The shard's total match count for the query.
    pub total: u64,
    /// The hits, in the shard's (already correctly sorted) order.
    pub hits: Vec<ShardHit>,
}

/// Parse a shard `/search` body into a [`ShardPage`].
pub fn parse_page(body: &str) -> Result<ShardPage, String> {
    let doc = json::parse(body).map_err(|e| format!("shard page: {e}"))?;
    let total = doc
        .get("total")
        .and_then(Value::as_u64)
        .ok_or("shard page: missing numeric 'total'")?;
    let results = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("shard page: missing 'results' array")?;
    let mut hits = Vec::with_capacity(results.len());
    for result in results {
        hits.push(ShardHit {
            doc_name: result
                .get("doc")
                .and_then(Value::as_str)
                .ok_or("shard hit: missing 'doc'")?
                .to_string(),
            doc_id: result
                .get("doc_id")
                .and_then(Value::as_u64)
                .ok_or("shard hit: missing 'doc_id'")?,
            root: result
                .get("root")
                .and_then(Value::as_u64)
                .ok_or("shard hit: missing 'root'")?,
            score: result
                .get("score")
                .and_then(Value::as_f64)
                .ok_or("shard hit: missing 'score'")?,
            snippet: result
                .get("snippet")
                .and_then(Value::as_str)
                .ok_or("shard hit: missing 'snippet'")?
                .to_string(),
        });
    }
    Ok(ShardPage { total, hits })
}

/// The globally merged page.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedPage {
    /// Union total across the shards that answered.
    pub total: u64,
    /// The requested window of the merged order, ids remapped global.
    pub hits: Vec<ShardHit>,
    /// Whether some answering shard clamped its page below what the
    /// window needed (the merged window may be missing rows).
    pub truncated: bool,
}

/// The session tier's ordering rule over remapped hits: score
/// descending, doc id ascending, root ascending. NaN scores compare
/// equal (the daemon never emits them; `num_f64` renders them `null`
/// and the parser would reject the page anyway).
fn hit_order(a: &ShardHit, b: &ShardHit) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.doc_id.cmp(&b.doc_id))
        .then_with(|| a.root.cmp(&b.root))
}

/// Merge per-shard pages into the global `[offset, offset + k)` window.
///
/// `pages[i]` is `Some` when shard `i` answered; `doc_bases[i]` is the
/// shard's global id base; `requested_k` is the `k' = k + offset`
/// over-fetch each shard was asked for (used to detect truncation).
pub fn merge_pages(
    pages: &[Option<ShardPage>],
    doc_bases: &[u64],
    k: usize,
    offset: usize,
    requested_k: usize,
) -> MergedPage {
    let mut total: u64 = 0;
    let mut truncated = false;
    let mut merged: Vec<ShardHit> = Vec::new();
    for (index, page) in pages.iter().enumerate() {
        let Some(page) = page else { continue };
        total = total.saturating_add(page.total);
        let needed = (requested_k as u64).min(page.total);
        if (page.hits.len() as u64) < needed {
            truncated = true;
        }
        let base = doc_bases.get(index).copied().unwrap_or(0);
        merged.extend(page.hits.iter().map(|hit| ShardHit {
            doc_id: base.saturating_add(hit.doc_id),
            ..hit.clone()
        }));
    }
    merged.sort_by(hit_order);
    let hits: Vec<ShardHit> = merged.into_iter().skip(offset).take(k).collect();
    MergedPage { total, hits, truncated }
}

/// How many shards were asked and how many answered — rendered into the
/// response's `shards` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTally {
    /// Shards the scatter targeted (every configured shard).
    pub queried: usize,
    /// Shards that produced a usable page within the deadline.
    pub answered: usize,
}

/// Render the router `/search` body. The prefix through `results` is
/// byte-identical to a single daemon's body over the union corpus (same
/// writer, same field order); the router appends its `partial` flag and
/// the `shards` tally after it.
pub fn render_search(
    q: &str,
    k: usize,
    offset: usize,
    page: &MergedPage,
    partial: bool,
    shards: ShardTally,
) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("query");
    w.str(q);
    w.key("k");
    w.num_u64(k as u64);
    w.key("offset");
    w.num_u64(offset as u64);
    w.key("total");
    w.num_u64(page.total);
    w.key("count");
    w.num_u64(page.hits.len() as u64);
    w.key("results");
    w.arr_begin();
    for hit in page.hits.iter() {
        w.obj_begin();
        w.key("doc");
        w.str(&hit.doc_name);
        w.key("doc_id");
        w.num_u64(hit.doc_id);
        w.key("root");
        w.num_u64(hit.root);
        w.key("score");
        w.num_f64(hit.score);
        w.key("snippet");
        w.str(&hit.snippet);
        w.obj_end();
    }
    w.arr_end();
    w.key("partial");
    w.bool(partial);
    w.key("shards");
    w.obj_begin();
    w.key("queried");
    w.num_u64(shards.queried as u64);
    w.key("answered");
    w.num_u64(shards.answered as u64);
    w.obj_end();
    w.obj_end();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(doc_id: u64, root: u64, score: f64) -> ShardHit {
        ShardHit {
            doc_name: format!("doc-{doc_id}"),
            doc_id,
            root,
            score,
            snippet: "<r/>".to_string(),
        }
    }

    #[test]
    fn parse_page_roundtrips_a_daemon_body() {
        let body = "{\"query\":\"x\",\"k\":2,\"offset\":0,\"total\":3,\"count\":2,\
                    \"results\":[{\"doc\":\"a.xml\",\"doc_id\":0,\"root\":4,\
                    \"score\":1.5,\"snippet\":\"<a/>\"},{\"doc\":\"b.xml\",\
                    \"doc_id\":1,\"root\":7,\"score\":0.25,\"snippet\":\"<b/>\"}]}";
        let page = parse_page(body).expect("parses");
        assert_eq!(page.total, 3);
        assert_eq!(page.hits.len(), 2);
        let first = page.hits.first().expect("hit");
        assert_eq!((first.doc_id, first.root, first.score), (0, 4, 1.5));
        assert_eq!(first.doc_name, "a.xml");
        assert!(parse_page("{\"total\":1}").is_err(), "missing results must not parse");
        assert!(parse_page("not json").is_err());
    }

    #[test]
    fn merge_remaps_ids_sorts_and_windows() {
        let shard0 = ShardPage { total: 2, hits: vec![hit(0, 1, 0.9), hit(1, 2, 0.4)] };
        let shard1 = ShardPage { total: 2, hits: vec![hit(0, 3, 0.7), hit(1, 9, 0.4)] };
        let pages = vec![Some(shard0), Some(shard1)];
        let merged = merge_pages(&pages, &[0, 2], 10, 0, 10);
        assert_eq!(merged.total, 4);
        assert!(!merged.truncated);
        let order: Vec<(u64, f64)> = merged.hits.iter().map(|h| (h.doc_id, h.score)).collect();
        // Score desc; the 0.4 tie breaks by remapped global doc id (1 < 3).
        assert_eq!(order, vec![(0, 0.9), (2, 0.7), (1, 0.4), (3, 0.4)]);
        // Windowing applies globally after the merge.
        let window = merge_pages(&pages, &[0, 2], 2, 1, 10);
        let ids: Vec<u64> = window.hits.iter().map(|h| h.doc_id).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn merge_flags_truncated_shard_pages() {
        // The shard says total=5 but returned only 1 hit against a
        // requested k' of 3: rows the window needs may be missing.
        let short = ShardPage { total: 5, hits: vec![hit(0, 1, 0.9)] };
        let merged = merge_pages(&[Some(short)], &[0], 3, 0, 3);
        assert!(merged.truncated);
        // A shard with fewer matches than k' is complete, not truncated.
        let small = ShardPage { total: 1, hits: vec![hit(0, 1, 0.9)] };
        let merged = merge_pages(&[Some(small)], &[0], 3, 0, 3);
        assert!(!merged.truncated);
    }

    #[test]
    fn absent_pages_are_skipped_not_counted() {
        let page = ShardPage { total: 1, hits: vec![hit(0, 1, 0.5)] };
        let merged = merge_pages(&[None, Some(page)], &[0, 10], 5, 0, 5);
        assert_eq!(merged.total, 1);
        let ids: Vec<u64> = merged.hits.iter().map(|h| h.doc_id).collect();
        assert_eq!(ids, vec![10], "the answering shard's base still applies");
    }

    #[test]
    fn render_matches_daemon_shape_with_router_suffix() {
        let page = MergedPage { total: 1, hits: vec![hit(3, 4, 1.25)], truncated: false };
        let body =
            render_search("q", 5, 0, &page, false, ShardTally { queried: 2, answered: 2 });
        assert_eq!(
            body,
            "{\"query\":\"q\",\"k\":5,\"offset\":0,\"total\":1,\"count\":1,\
             \"results\":[{\"doc\":\"doc-3\",\"doc_id\":3,\"root\":4,\"score\":1.25,\
             \"snippet\":\"<r/>\"}],\"partial\":false,\
             \"shards\":{\"queried\":2,\"answered\":2}}"
        );
    }
}
