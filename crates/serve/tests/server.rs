//! Deterministic admission-control, fairness and shutdown tests.
//!
//! The handler blocks on a [`Gate`] the test controls, so "the worker is
//! busy" and "the queue holds exactly N connections" are *observed*
//! states (polled via [`ServerHandle::stats`]), not sleeps — the shed
//! counts asserted here are exact, matching the acceptance criterion
//! "with queue-depth Q and 2×Q concurrent requests, exactly the excess
//! is shed with 503".

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use extract_serve::prelude::*;
use extract_serve::testing::{fetch, DrainOnDrop, Gate, ReleaseOnDrop};

/// Block until `predicate(stats)` holds (10 s deadline).
fn await_stats(handle: &ServerHandle, what: &str, predicate: impl Fn(&ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if predicate(&handle.stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {:?}", handle.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    fetch(addr, "GET", path)
}

fn echo_handler(gate: &Gate) -> impl Fn(&Request) -> Response + Sync + '_ {
    move |req: &Request| {
        if req.path == "/block" {
            gate.wait_inside();
        }
        if req.path == "/missing" {
            return Response::error(404, "no such route");
        }
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("path");
        w.str(&req.path);
        w.key("q");
        w.str(req.param("q").unwrap_or(""));
        w.obj_end();
        Response::json(200, w.finish())
    }
}

#[test]
fn serves_parses_and_counts() {
    let config = ServeConfig { workers: 2, queue_depth: 8, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release(); // nothing blocks in this test
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        let (status, body) = get(addr, "/search?q=store+texas");
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"path":"/search","q":"store texas"}"#);

        let (status, body) = get(addr, "/missing");
        assert_eq!(status, 404);
        assert_eq!(body, r#"{"error":"no such route"}"#);

        // A malformed request is answered 400 by the server itself.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400 "), "{raw:?}");

        // One 200 (/search) and two errors (404 route, 400 parse).
        await_stats(&handle, "responses counted", |s| s.served_ok == 1 && s.served_error == 2);
        let stats = handle.stats();
        assert_eq!(stats.accepted, 3, "{stats:?}");
        assert_eq!(stats.admitted, 3, "{stats:?}");
        assert_eq!(stats.shed_total(), 0, "{stats:?}");
        await_stats(&handle, "drained", |s| s.inflight == 0 && s.queue_len == 0);

        handle.shutdown();
    });
    assert!(handle.is_shutting_down());
}

#[test]
fn queue_overflow_sheds_exactly_the_excess_with_503() {
    const QUEUE_DEPTH: usize = 3;
    const EXCESS: usize = 4;
    let config = ServeConfig {
        workers: 1,
        queue_depth: QUEUE_DEPTH,
        per_client_inflight: 1024, // fairness out of the way: loopback is one IP
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        // Occupy the only worker first (otherwise one of the "queued"
        // requests could race past the still-unclaimed first connection
        // and overflow the queue prematurely)…
        let mut blocked = vec![scope.spawn(move || get(addr, "/block"))];
        gate.await_entered(1);
        // …then fill the queue to exactly QUEUE_DEPTH.
        blocked.extend((0..QUEUE_DEPTH).map(|_| scope.spawn(move || get(addr, "/block"))));
        await_stats(&handle, "full queue", |s| s.queue_len == QUEUE_DEPTH as u64);

        // Every further request is the excess: shed, immediately, as 503.
        for i in 0..EXCESS {
            let start = Instant::now();
            let (status, body) = get(addr, "/block");
            assert_eq!(status, 503, "excess request {i}");
            assert_eq!(body, r#"{"error":"server over capacity"}"#);
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "shedding must not wait for a worker"
            );
        }
        let stats = handle.stats();
        assert_eq!(stats.shed_queue_full, EXCESS as u64, "exactly the excess: {stats:?}");
        assert_eq!(stats.admitted, 1 + QUEUE_DEPTH as u64, "{stats:?}");

        // Release: every admitted request completes with 200.
        gate.release();
        for client in blocked {
            assert_eq!(client.join().unwrap().0, 200, "admitted request must be served");
        }
        await_stats(&handle, "admitted all served", |s| s.served_ok == 1 + QUEUE_DEPTH as u64);
        handle.shutdown();
    });
    let stats = handle.stats();
    assert_eq!(stats.served_ok, 1 + QUEUE_DEPTH as u64, "{stats:?}");
    assert_eq!(stats.shed_queue_full, EXCESS as u64, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "no connection may be dropped: {stats:?}");
}

#[test]
fn per_client_cap_sheds_with_429() {
    let config = ServeConfig {
        workers: 4,
        queue_depth: 16,
        per_client_inflight: 1,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        // One in-flight request from this IP…
        let first = scope.spawn(move || get(addr, "/block"));
        gate.await_entered(1);

        // …so the second is over the per-client cap.
        let (status, body) = get(addr, "/anything");
        assert_eq!(status, 429);
        assert_eq!(body, r#"{"error":"per-client in-flight limit reached"}"#);
        assert_eq!(handle.stats().shed_per_client, 1);

        gate.release();
        assert_eq!(first.join().unwrap().0, 200);

        // With the first request answered, the same client is admitted again.
        await_stats(&handle, "inflight drained", |s| s.inflight == 0);
        assert_eq!(get(addr, "/again").0, 200);
        handle.shutdown();
    });
}

#[test]
fn queue_full_503_carries_retry_after_on_the_wire() {
    use extract_serve::testing::KeepAliveClient;
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        per_client_inflight: 1024,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        // Occupy the worker first, then fill the 1-deep queue.
        let mut blocked = vec![scope.spawn(move || get(addr, "/block"))];
        gate.await_entered(1);
        blocked.push(scope.spawn(move || get(addr, "/block")));
        await_stats(&handle, "full queue", |s| s.queue_len == 1);

        // The excess refusal must tell a well-behaved client (the
        // router's backoff included) when to come back.
        let mut client = KeepAliveClient::connect(addr);
        let refusal = client.request("GET", "/block");
        assert_eq!(refusal.status, 503);
        assert_eq!(refusal.retry_after, Some(1), "503 shed must carry Retry-After");

        gate.release();
        for b in blocked {
            assert_eq!(b.join().unwrap().0, 200);
        }
        handle.shutdown();
    });
}

#[test]
fn per_client_429_carries_retry_after_on_the_wire() {
    use extract_serve::testing::KeepAliveClient;
    let config = ServeConfig {
        workers: 4,
        queue_depth: 16,
        per_client_inflight: 1,
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        let first = scope.spawn(move || get(addr, "/block"));
        gate.await_entered(1);

        let mut client = KeepAliveClient::connect(addr);
        let refusal = client.request("GET", "/anything");
        assert_eq!(refusal.status, 429);
        assert_eq!(refusal.retry_after, Some(1), "429 cap must carry Retry-After");

        gate.release();
        assert_eq!(first.join().unwrap().0, 200);
        handle.shutdown();
    });
}

#[test]
fn per_client_cap_counts_ipv4_mapped_ipv6_peers() {
    // On a dual-stack listener a client that dials the IPv4 address
    // shows up as `::ffff:127.0.0.1`. The per-client key must collapse
    // that to `127.0.0.1` so the mapped form pays the same budget —
    // before the fix the map keyed the raw `IpAddr::V6` and a mapped
    // peer had a fresh cap.
    let config = ServeConfig {
        workers: 4,
        queue_depth: 16,
        per_client_inflight: 1,
        ..Default::default()
    };
    let Ok(server) = Server::bind("[::]:0", config) else {
        eprintln!("skipping: IPv6 unavailable in this environment");
        return;
    };
    let port = server.local_addr().port();
    let v4: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let v6: SocketAddr = format!("[::1]:{port}").parse().unwrap();
    // Availability probes happen *before* the server runs (they sit in
    // the listener backlog and are reaped as empty connections once it
    // starts); a probe against the live server would hold a per-client
    // slot until its corpse drains and skew the cap assertions below.
    if TcpStream::connect_timeout(&v4, Duration::from_millis(500)).is_err() {
        eprintln!("skipping: dual-stack v4 dialing unavailable in this environment");
        return;
    }
    let v6_ok = TcpStream::connect_timeout(&v6, Duration::from_millis(500)).is_ok();
    let probes = 1 + u64::from(v6_ok);
    let handle = server.handle();
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));
        await_stats(&handle, "probe corpses reaped", |s| {
            s.accepted == probes && s.inflight == 0
        });

        // One in-flight request dialed over IPv4 (arrives mapped)…
        let first = scope.spawn(move || get(v4, "/block"));
        gate.await_entered(1);

        // …so a second IPv4-dialed request is over the canonical cap.
        let (status, body) = get(v4, "/anything");
        assert_eq!(status, 429, "mapped peer must pay the 127.0.0.1 budget");
        assert_eq!(body, r#"{"error":"per-client in-flight limit reached"}"#);
        let stats = handle.stats();
        assert_eq!(stats.shed_per_client, 1, "{stats:?}");

        // A *real* IPv6 peer (`::1`) is a different client and admitted.
        if v6_ok {
            assert_eq!(get(v6, "/v6-ok").0, 200, "::1 is not the same client as 127.0.0.1");
        }

        gate.release();
        assert_eq!(first.join().unwrap().0, 200);
        handle.shutdown();
    });
}

#[test]
fn shutdown_drains_inflight_and_queued_work() {
    let config = ServeConfig { workers: 1, queue_depth: 4, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        // One request in service, one waiting in the queue.
        let in_service = scope.spawn(move || get(addr, "/block"));
        gate.await_entered(1);
        let queued = scope.spawn(move || get(addr, "/queued?q=x"));
        await_stats(&handle, "one queued", |s| s.queue_len == 1);

        // Shutdown must not abandon either of them.
        handle.shutdown();
        gate.release();
        assert_eq!(in_service.join().unwrap().0, 200);
        let (status, body) = queued.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"path":"/queued","q":"x"}"#);
    });
    // `run` returned (the scope joined it), and the counters survived.
    let stats = handle.stats();
    assert_eq!(stats.served_ok, 2, "{stats:?}");
    assert_eq!(stats.inflight, 0, "{stats:?}");

    // After shutdown nobody answers; connecting may succeed (listener
    // backlog) but no response ever comes.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        stream.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        let _ = stream.write_all(b"GET / HTTP/1.1\r\n\r\n");
        let mut buf = [0u8; 64];
        assert!(!matches!(stream.read(&mut buf), Ok(n) if n > 0), "daemon kept serving");
    }
}

#[test]
fn zero_queue_depth_is_clamped_not_total_shed() {
    // A 0-depth queue would shed 100% of traffic even against idle
    // workers (hand-off always goes through the queue); bind clamps it.
    let config = ServeConfig { workers: 1, queue_depth: 0, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(|_req| Response::json(200, "{}".into())));
        assert_eq!(get(addr, "/x").0, 200, "queue_depth 0 must not shed everything");
        handle.shutdown();
    });
}

#[test]
fn shutdown_is_idempotent_and_prompt() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let handle = server.handle();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(|_req| Response::json(200, "{}".into())));
        handle.shutdown();
        handle.shutdown();
    });
    assert!(start.elapsed() < Duration::from_secs(5), "idle shutdown must be prompt");
}
