//! Deterministic keep-alive tests: connection reuse, pipelining,
//! `Connection: close` mid-stream, idle eviction, reuse caps, the
//! stalled-client `408`, and overload shedding that stays exact when
//! connections are reused.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use extract_serve::prelude::*;
use extract_serve::testing::{fetch, DrainOnDrop, Gate, KeepAliveClient, ReleaseOnDrop};

/// Block until `predicate(stats)` holds (10 s deadline).
fn await_stats(handle: &ServerHandle, what: &str, predicate: impl Fn(&ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if predicate(&handle.stats()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {:?}", handle.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn echo_handler(gate: &Gate) -> impl Fn(&Request) -> Response + Sync + '_ {
    move |req: &Request| {
        if req.path == "/block" {
            gate.wait_inside();
        }
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("path");
        w.str(&req.path);
        w.key("q");
        w.str(req.param("q").unwrap_or(""));
        w.obj_end();
        Response::json(200, w.finish())
    }
}

/// One socket, many sequential requests: every answer byte-identical to
/// a fresh-connection answer, and the counters prove the reuse.
fn sequential_reuse_roundtrip(poller: PollerKind) {
    let config = ServeConfig { workers: 2, queue_depth: 8, poller, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        let targets: Vec<String> =
            (0..5).map(|i| format!("/search?q=page+{i}&k={}", i + 1)).collect();

        let mut client = KeepAliveClient::connect(addr);
        let mut reused_bodies = Vec::new();
        for target in &targets {
            let response = client.request("GET", target);
            assert_eq!(response.status, 200, "{target}");
            assert!(response.keep_alive, "server must offer keep-alive: {target}");
            reused_bodies.push(response.body);
        }
        await_stats(&handle, "reuse counted", |s| s.served_ok == 5);
        let stats = handle.stats();
        assert_eq!(stats.accepted, 1, "one socket for all requests: {stats:?}");
        assert_eq!(stats.admitted, 5, "every request re-enters admission: {stats:?}");
        assert_eq!(stats.reused_requests, 4, "{stats:?}");
        assert_eq!(stats.shed_total(), 0, "{stats:?}");

        // Fresh-connection answers must be byte-identical.
        for (target, reused) in targets.iter().zip(&reused_bodies) {
            let (status, fresh) = fetch(addr, "GET", target);
            assert_eq!(status, 200);
            assert_eq!(&fresh, reused, "keep-alive answer must match fresh answer: {target}");
        }
        handle.shutdown();
    });
}

#[test]
fn sequential_requests_reuse_one_connection() {
    sequential_reuse_roundtrip(PollerKind::Auto);
}

#[test]
fn sequential_requests_reuse_one_connection_scan_poller() {
    // The portable fallback must behave identically to epoll.
    sequential_reuse_roundtrip(PollerKind::Scan);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        // All three requests land in one write before any response is
        // read; the answers must come back in request order.
        let mut client = KeepAliveClient::connect(addr);
        client
            .stream()
            .write_all(
                b"GET /a?q=1 HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /b?q=2 HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /c?q=3 HTTP/1.1\r\nHost: t\r\n\r\n",
            )
            .unwrap();
        for (path, q) in [("/a", "1"), ("/b", "2"), ("/c", "3")] {
            let response = client.read_response();
            assert_eq!(response.status, 200);
            assert_eq!(response.body, format!(r#"{{"path":"{path}","q":"{q}"}}"#));
        }
        await_stats(&handle, "pipeline served", |s| s.served_ok == 3);
        let stats = handle.stats();
        assert_eq!(stats.accepted, 1, "{stats:?}");
        assert_eq!(stats.reused_requests, 2, "{stats:?}");
        handle.shutdown();
    });
}

#[test]
fn connection_close_is_honored_mid_stream() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        let mut client = KeepAliveClient::connect(addr);
        let first = client.request("GET", "/one");
        assert_eq!(first.status, 200);
        assert!(first.keep_alive, "first response keeps the connection");

        client.send("GET", "/two", &["Connection: close"]);
        let second = client.read_response();
        assert_eq!(second.status, 200);
        assert!(!second.keep_alive, "close request must be answered with close");
        assert!(client.at_eof(), "server must hang up after Connection: close");
        handle.shutdown();
    });
}

#[test]
fn keep_alive_can_be_disabled_server_side() {
    let config = ServeConfig { keep_alive: false, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));
        let mut client = KeepAliveClient::connect(addr);
        let response = client.request("GET", "/x");
        assert_eq!(response.status, 200);
        assert!(!response.keep_alive, "keep-alive off: every response closes");
        assert!(client.at_eof());
        handle.shutdown();
    });
}

#[test]
fn idle_connections_are_evicted_after_the_deadline() {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        let mut client = KeepAliveClient::connect(addr);
        let response = client.request("GET", "/x");
        assert!(response.keep_alive);
        await_stats(&handle, "connection parked", |s| s.parked == 1);

        // Stay silent past the idle deadline: the readiness loop must
        // close the connection (observed as EOF on the client side).
        assert!(client.at_eof(), "idle connection must be evicted");
        let stats = handle.stats();
        assert_eq!(stats.idle_closed, 1, "{stats:?}");
        assert_eq!(stats.parked, 0, "{stats:?}");
        assert_eq!(stats.io_errors, 0, "eviction is not an i/o error: {stats:?}");
        handle.shutdown();
    });
}

#[test]
fn max_requests_per_connection_caps_reuse() {
    let config = ServeConfig { max_requests_per_connection: 2, ..Default::default() };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));
        let mut client = KeepAliveClient::connect(addr);
        let first = client.request("GET", "/1");
        assert!(first.keep_alive, "request 1 of 2 keeps the connection");
        let second = client.request("GET", "/2");
        assert!(!second.keep_alive, "the cap closes the connection on its last request");
        assert!(client.at_eof());
        handle.shutdown();
    });
}

#[test]
fn stalled_partial_request_is_answered_408_not_held_forever() {
    let config = ServeConfig {
        io_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        // A partial request line, then silence.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /par").unwrap();
        let start = Instant::now();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 408 "), "stall must be answered 408: {raw:?}");
        assert!(raw.contains("Connection: close\r\n"), "{raw:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "408 must arrive at the read deadline, not someday"
        );

        // The drain accounting survives: the stalled request is a
        // served error + a request timeout, and nothing stays in flight.
        await_stats(&handle, "stall drained", |s| {
            s.request_timeouts == 1 && s.served_error == 1 && s.inflight == 0
        });
        assert_eq!(handle.stats().io_errors, 0, "{:?}", handle.stats());

        // A connection that goes silent *before* its first byte is an
        // idle close, not a 408 and not an i/o error.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(idle.read(&mut buf).unwrap(), 0, "idle conn closes without a response");
        await_stats(&handle, "idle close counted", |s| s.idle_closed == 1 && s.inflight == 0);
        handle.shutdown();
    });
}

#[test]
fn drip_fed_request_cannot_outlive_the_read_deadline() {
    // Slowloris guard: one byte per interval keeps every *per-read*
    // timeout happy forever; the deadline must be absolute per request.
    let config = ServeConfig {
        io_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    gate.release();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(echo_handler(&gate)));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let drip = scope.spawn(move || {
            // Feed bytes well inside the 300 ms per-read window, for far
            // longer than the request deadline.
            for byte in b"GET /sloooooooooooooooooooooooooooooow".iter() {
                if writer.write_all(&[*byte]).is_err() {
                    break; // server closed on us — exactly the point
                }
                std::thread::sleep(Duration::from_millis(75));
            }
        });
        let start = Instant::now();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let elapsed = start.elapsed();
        assert!(raw.starts_with("HTTP/1.1 408 "), "drip-fed stall must 408: {raw:?}");
        assert!(
            elapsed < Duration::from_secs(2),
            "the deadline is absolute, not per byte: {elapsed:?}"
        );
        drip.join().unwrap();
        await_stats(&handle, "drip drained", |s| s.request_timeouts == 1 && s.inflight == 0);
        handle.shutdown();
    });
}

#[test]
fn overload_shed_stays_exact_with_reused_connections() {
    const QUEUE_DEPTH: usize = 3;
    const EXCESS: usize = 4;
    let config = ServeConfig {
        workers: 1,
        queue_depth: QUEUE_DEPTH,
        per_client_inflight: 1024, // loopback is one IP; fairness tested separately
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let gate = Gate::default();
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        let _open = ReleaseOnDrop(&gate);
        scope.spawn(|| server.run(echo_handler(&gate)));

        // A kept-alive connection serves a request and goes idle…
        let mut veteran = KeepAliveClient::connect(addr);
        assert!(veteran.request("GET", "/warm").keep_alive);

        // …then its *next* request (via the readiness loop) occupies the
        // only worker.
        let blocked_veteran = scope.spawn(move || {
            let response = veteran.request("GET", "/block");
            (response, veteran)
        });
        gate.await_entered(1);

        // Fill the queue with kept-alive clients' first requests.
        let queued: Vec<_> = (0..QUEUE_DEPTH)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = KeepAliveClient::connect(addr);
                    let response = client.request("GET", "/block");
                    (response, client)
                })
            })
            .collect();
        await_stats(&handle, "full queue", |s| s.queue_len == QUEUE_DEPTH as u64);

        // Every further request is the excess: shed, immediately, 503 —
        // reuse must not loosen the bound.
        for i in 0..EXCESS {
            let start = Instant::now();
            let (status, body) = fetch(addr, "GET", "/block");
            assert_eq!(status, 503, "excess request {i}");
            assert_eq!(body, r#"{"error":"server over capacity"}"#);
            assert!(start.elapsed() < Duration::from_secs(2), "shedding must not wait");
        }
        let stats = handle.stats();
        assert_eq!(stats.shed_queue_full, EXCESS as u64, "exactly the excess: {stats:?}");
        assert_eq!(stats.admitted, 2 + QUEUE_DEPTH as u64, "warm + block + queue: {stats:?}");

        // Release: every admitted request completes, and the veteran's
        // connection is still reusable after the storm.
        gate.release();
        let (response, mut veteran) = blocked_veteran.join().unwrap();
        assert_eq!(response.status, 200);
        assert!(response.keep_alive, "the veteran survives the overload");
        for client in queued {
            let (response, _conn) = client.join().unwrap();
            assert_eq!(response.status, 200, "admitted request must be served");
        }
        // Only once the queue has drained is there room again — a reused
        // connection re-enters admission per request, so asking earlier
        // would (correctly) be shed like any fresh arrival.
        await_stats(&handle, "storm drained", |s| {
            s.served_ok == 2 + QUEUE_DEPTH as u64 && s.queue_len == 0
        });
        let after = veteran.request("GET", "/after");
        assert_eq!(
            after.status,
            200,
            "reuse after overload: {after:?} stats={:?}",
            handle.stats()
        );
        handle.shutdown();
    });
}
