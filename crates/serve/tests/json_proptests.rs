//! Property tests: every string — printable, control-char-laden, or
//! multi-byte — round-trips through the hand-rolled JSON writer without
//! ever producing invalid JSON. The `.{0,N}` strategy of the vendored
//! proptest shim deliberately mixes raw control characters and wide
//! UTF-8 (exactly what XML snippet text can contain), so this pins the
//! escaping rules of `extract_serve::json` against its own validating
//! parser.

use extract_serve::json::{self, JsonWriter, Value};
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_strings_roundtrip_as_values(s in ".{0,120}") {
        let mut w = JsonWriter::new();
        w.str(&s);
        let doc = w.finish();
        let parsed = json::parse(&doc)
            .unwrap_or_else(|e| panic!("writer produced invalid JSON {doc:?}: {e}"));
        prop_assert_eq!(parsed, Value::Str(s));
    }

    #[test]
    fn arbitrary_strings_roundtrip_as_keys(key in ".{0,60}", value in ".{0,60}") {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key(&key);
        w.str(&value);
        w.obj_end();
        let doc = w.finish();
        let parsed = json::parse(&doc)
            .unwrap_or_else(|e| panic!("writer produced invalid JSON {doc:?}: {e}"));
        prop_assert_eq!(parsed.get(&key).and_then(Value::as_str), Some(value.as_str()));
    }

    #[test]
    fn mixed_documents_stay_valid(
        strings in proptest::collection::vec(".{0,40}", 0..8),
        int in 0u64..1_000_000,
        float_milli in -1_000_000i64..1_000_000,
        flag in proptest::arbitrary::any::<bool>(),
    ) {
        let mut w = JsonWriter::new();
        w.obj_begin();
        w.key("int");
        w.num_u64(int);
        w.key("float");
        w.num_f64(float_milli as f64 / 1000.0);
        w.key("flag");
        w.bool(flag);
        w.key("none");
        w.null();
        w.key("strings");
        w.arr_begin();
        for s in &strings {
            w.str(s);
        }
        w.arr_end();
        w.obj_end();
        let doc = w.finish();
        let parsed = json::parse(&doc)
            .unwrap_or_else(|e| panic!("writer produced invalid JSON {doc:?}: {e}"));
        prop_assert_eq!(parsed.get("int").and_then(Value::as_u64), Some(int));
        prop_assert_eq!(
            parsed.get("float").and_then(Value::as_f64),
            Some(float_milli as f64 / 1000.0)
        );
        let got: Vec<&str> = parsed
            .get("strings")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        let want: Vec<&str> = strings.iter().map(String::as_str).collect();
        prop_assert_eq!(got, want);
    }
}
