//! The fault-injection layer observed from the wire: rules parsed from
//! `--fault`-style specs make a healthy server stall, fail and reset
//! exactly on cue — the mechanism the router's failure tests stand on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use extract_serve::prelude::*;
use extract_serve::testing::{fetch, DrainOnDrop};

fn ok_handler(_req: &Request) -> Response {
    Response::json(200, r#"{"ok":true}"#.to_string())
}

fn run_with_plan(
    specs: &[&str],
    body: impl FnOnce(std::net::SocketAddr, &ServerHandle),
) {
    let plan = FaultPlan::from_specs(specs).expect("valid specs");
    let config = ServeConfig {
        workers: 2,
        queue_depth: 8,
        fault: Some(Arc::new(plan)),
        ..Default::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    std::thread::scope(|scope| {
        let _drain = DrainOnDrop(handle.clone());
        scope.spawn(|| server.run(ok_handler));
        body(addr, &handle);
        handle.shutdown();
    });
}

#[test]
fn status_fault_fires_for_its_window_then_clears() {
    run_with_plan(&["status:/search:code=500:count=2"], |addr, _| {
        let (status, body) = fetch(addr, "GET", "/search?q=x");
        assert_eq!(status, 500, "first /search is injected");
        assert_eq!(body, r#"{"error":"injected fault"}"#);
        assert_eq!(fetch(addr, "GET", "/search?q=x").0, 500, "second too");
        assert_eq!(fetch(addr, "GET", "/search?q=x").0, 200, "window spent");
        assert_eq!(fetch(addr, "GET", "/stats").0, 200, "other routes untouched");
    });
}

#[test]
fn stall_fault_delays_exactly_the_targeted_request() {
    run_with_plan(&["stall:/slow:ms=150:count=1"], |addr, _| {
        let start = Instant::now();
        assert_eq!(fetch(addr, "GET", "/slow").0, 200);
        assert!(
            start.elapsed() >= Duration::from_millis(150),
            "first request must be stalled, answered in {:?}",
            start.elapsed()
        );
        let start = Instant::now();
        assert_eq!(fetch(addr, "GET", "/slow").0, 200);
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "second request must be prompt, answered in {:?}",
            start.elapsed()
        );
    });
}

#[test]
fn reset_fault_kills_the_connection_without_a_response() {
    run_with_plan(&["reset:/die:count=1"], |addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(b"GET /die HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send");
        // Either a clean EOF (zero bytes) or ECONNRESET — never a
        // response. An Err means the reset landed before/while reading,
        // which is also a hard hangup.
        let mut raw = Vec::new();
        if let Ok(n) = stream.read_to_end(&mut raw) {
            assert_eq!(n, 0, "no response bytes may arrive: {raw:?}");
        }
        // The server itself survives; the next request is served.
        assert_eq!(fetch(addr, "GET", "/die").0, 200, "rule spent, server alive");
    });
}
