//! Minimal HTTP/1.1 request parsing and response writing over blocking
//! streams.
//!
//! The daemon speaks exactly the slice of HTTP a snippet service needs:
//! `GET`/`POST` request lines with percent-encoded query strings, headers
//! ignored apart from `Content-Length` and `Connection`, and **persistent
//! connections**: an HTTP/1.1 request keeps its connection alive unless
//! the client (or the server's own caps — see
//! [`ServeConfig`](crate::server::ServeConfig)) say `Connection: close`;
//! an HTTP/1.0 request must opt in with `Connection: keep-alive`. All
//! limits are explicit — request-line length, header count/size, body
//! size — and violations map to the proper `4xx` instead of a hang or a
//! panic.
//!
//! Because the parser's framing state is reused across requests on a
//! kept-alive connection, framing is strict: a request with duplicate or
//! non-numeric `Content-Length` headers is rejected with `400`, and
//! `Transfer-Encoding` (which this server does not implement) is rejected
//! with `501` — ambiguous framing is exactly how request smuggling slips
//! a second request past the parser.

use std::io::{self, BufRead, Read, Write};

use extract_obs::TraceId;

/// Longest accepted request line, in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most accepted headers.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest accepted (and discarded) request body, in bytes.
pub const MAX_BODY: usize = 64 * 1024;

/// A parsed request: method, decoded path, decoded query parameters, and
/// the connection-persistence the client asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased by the client per RFC (`GET`, …).
    pub method: String,
    /// The percent-decoded path (`/search`).
    pub path: String,
    /// Query parameters in request order, percent-decoded, `+` as space.
    pub query: Vec<(String, String)>,
    /// Whether the request line was `HTTP/1.1` (or newer `1.x`).
    pub http11: bool,
    /// Whether the client wants the connection kept alive after the
    /// response: the `Connection` header when present, else the version
    /// default (alive for 1.1, close for 1.0).
    pub keep_alive: bool,
    /// The `X-Trace-Id` header, when present and well-formed (1–16 hex
    /// digits, non-zero — see [`extract_obs::trace`]). A malformed
    /// value is treated as absent; the server mints a replacement.
    pub trace_id: Option<TraceId>,
    /// The request body, `Content-Length` bytes verbatim (empty when the
    /// header is absent). Capped at [`MAX_BODY`]; mutation endpoints
    /// (`POST /ingest`) read XML documents from here.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of query parameter `name`.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// How a request failed to parse, with the status code to answer with.
#[derive(Debug)]
pub enum HttpError {
    /// The client closed without sending anything (not an error worth a
    /// response — e.g. the shutdown wake-up connection, or a kept-alive
    /// client that finished and hung up).
    ClosedEarly,
    /// The read deadline expired before the client sent the *first byte*
    /// of a request — an idle connection, closed without a response.
    IdleTimeout,
    /// The read deadline expired **mid-request** (a partial request line
    /// or header and then silence) → `408`, connection close. Without
    /// this a stalled client would pin a worker for the full timeout and
    /// then be dropped without an answer.
    Stalled,
    /// Malformed request line / headers / encoding → `400`.
    Malformed(&'static str),
    /// A limit was exceeded → `431` (headers) or `413` (body).
    TooLarge(&'static str, u16),
    /// A feature this server deliberately does not speak
    /// (`Transfer-Encoding`) → `501`.
    Unsupported(&'static str),
    /// The underlying socket failed (reset, broken pipe).
    Io(io::Error),
}

impl HttpError {
    /// The status code this error maps to, if a response is worth writing.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::ClosedEarly | HttpError::IdleTimeout | HttpError::Io(_) => None,
            HttpError::Stalled => Some(408),
            HttpError::Malformed(_) => Some(400),
            HttpError::TooLarge(_, code) => Some(*code),
            HttpError::Unsupported(_) => Some(501),
        }
    }

    /// Human-readable reason for the error body.
    pub fn reason(&self) -> &str {
        match self {
            HttpError::ClosedEarly => "connection closed",
            HttpError::IdleTimeout => "idle connection",
            HttpError::Stalled => "request incomplete before the read deadline",
            HttpError::Malformed(m)
            | HttpError::TooLarge(m, _)
            | HttpError::Unsupported(m) => m,
            HttpError::Io(_) => "i/o error",
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Whether an i/o error is a blocking-socket read deadline expiring
/// (Linux reports `WouldBlock` for `SO_RCVTIMEO`, other platforms
/// `TimedOut`). Shared with the server's grace-probe classification so
/// the two can never diverge.
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one line terminated by `\n` (tolerating a trailing `\r`), capped
/// at `cap` bytes. `idle_ok` marks the one read position (the start of a
/// request) where silence means *idle* rather than *stalled mid-request*.
fn read_line<R: BufRead>(
    r: &mut R,
    cap: usize,
    what: &'static str,
    idle_ok: bool,
) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = 0u8;
        match r.read(std::slice::from_mut(&mut byte)) {
            Err(e) if is_timeout(&e) => {
                if idle_ok && buf.is_empty() {
                    return Err(HttpError::IdleTimeout);
                }
                return Err(HttpError::Stalled);
            }
            Err(e) => return Err(HttpError::Io(e)),
            Ok(0) => {
                if idle_ok && buf.is_empty() {
                    return Err(HttpError::ClosedEarly);
                }
                return Err(HttpError::Malformed("truncated line"));
            }
            Ok(_) => {
                if byte == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 line"));
                }
                if buf.len() >= cap {
                    return Err(HttpError::TooLarge(what, 431));
                }
                buf.push(byte);
            }
        }
    }
}

/// Parse one request from `stream`: request line, headers (all discarded
/// except `Content-Length`, `Connection` and the trace header), then the
/// body — retained verbatim (the size cap was already enforced against
/// the declared `Content-Length`, so a hostile client cannot balloon the
/// allocation past [`MAX_BODY`]).
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Request, HttpError> {
    let line = read_line(stream, MAX_REQUEST_LINE, "request line too long", true)?;
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("malformed request line"));
    }
    let minor = version
        .strip_prefix("HTTP/1.")
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_digit()))
        .ok_or(HttpError::Malformed("malformed request line"))?;
    let http11 = minor != "0";
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("malformed method"));
    }

    // Framing guard: exactly zero or one Content-Length, digits only.
    // `usize::from_str` would happily accept `+5`; a smuggler's second
    // interpretation of the framing starts exactly there.
    let mut content_length: Option<usize> = None;
    let mut keep_alive: Option<bool> = None;
    let mut trace_id: Option<TraceId> = None;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(HttpError::TooLarge("too many headers", 431));
        }
        let header = read_line(stream, MAX_HEADER_LINE, "header line too long", false)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let value = value.trim();
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Malformed("malformed Content-Length"));
            }
            let parsed =
                value.parse().map_err(|_| HttpError::Malformed("malformed Content-Length"))?;
            if content_length.replace(parsed).is_some() {
                return Err(HttpError::Malformed("duplicate Content-Length"));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Never guess at framing this parser does not implement: a
            // TE/CL disagreement is the classic smuggling vector.
            return Err(HttpError::Unsupported("Transfer-Encoding not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = Some(false);
                } else if token.eq_ignore_ascii_case("keep-alive") && keep_alive.is_none() {
                    keep_alive = Some(true);
                }
            }
        } else if name.eq_ignore_ascii_case(extract_obs::TRACE_HEADER) {
            // First well-formed value wins; malformed values stay None
            // so the server mints a fresh ID instead of propagating
            // attacker-shaped strings.
            if trace_id.is_none() {
                trace_id = TraceId::parse(value);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("request body too large", 413));
    }
    let mut body = Vec::with_capacity(content_length.min(MAX_BODY));
    match stream.take(content_length as u64).read_to_end(&mut body) {
        Ok(n) if n == content_length => {}
        Ok(_) => return Err(HttpError::Malformed("truncated body")),
        Err(e) if is_timeout(&e) => return Err(HttpError::Stalled),
        Err(e) => return Err(HttpError::Io(e)),
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path =
        percent_decode(path_raw, false).ok_or(HttpError::Malformed("malformed path encoding"))?;
    let mut query = Vec::new();
    if let Some(raw) = query_raw {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k, true)
                .ok_or(HttpError::Malformed("malformed query encoding"))?;
            let v = percent_decode(v, true)
                .ok_or(HttpError::Malformed("malformed query encoding"))?;
            query.push((k, v));
        }
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        http11,
        keep_alive: keep_alive.unwrap_or(http11),
        trace_id,
        body,
    })
}

/// Percent-decode `s`; in query strings (`plus_is_space`) `+` means a
/// space. Returns `None` on truncated/invalid `%` escapes or non-UTF-8.
pub fn percent_decode(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
                let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Percent-encode `s` for use inside a query-string value: unreserved
/// characters (RFC 3986 §2.3) pass through, everything else — including
/// `+`, `&`, `=` and spaces — becomes `%XX`, so the result survives
/// [`percent_decode`] byte-identically on any server. The router uses
/// this to forward user queries to shard daemons.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                let nibble = |n: u8| {
                    char::from_digit(u32::from(n), 16).unwrap_or('0').to_ascii_uppercase()
                };
                out.push('%');
                out.push(nibble(b >> 4));
                out.push(nibble(b & 0xF));
            }
        }
    }
    out
}

/// A response ready to write: status, content type, body, and an
/// optional `Retry-After` hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// When set, a `Retry-After: <seconds>` header is written — every
    /// refusal the server expects the client to retry (`503` shed, `429`
    /// per-client cap) carries one, so well-behaved clients back off for
    /// a told amount instead of hot-looping.
    pub retry_after: Option<u32>,
    /// When set, an `X-Trace-Id: <id>` header is written. The server
    /// sets it only when the *request* carried a trace ID — traced
    /// callers (the router) get the echo; untraced clients see
    /// byte-identical responses with or without instrumentation.
    pub trace_id: Option<TraceId>,
    /// When set, an `X-Corpus-Epoch: <n>` header is written. Live
    /// daemons stamp every answer with the corpus epoch it was computed
    /// against, so the router can detect a mutated shard from the
    /// response itself instead of waiting for the next probe round.
    pub corpus_epoch: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            trace_id: None,
            corpus_epoch: None,
        }
    }

    /// A JSON error response with an `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let mut w = crate::json::JsonWriter::new();
        w.obj_begin();
        w.key("error");
        w.str(message);
        w.obj_end();
        Response::json(status, w.finish())
    }

    /// Attach a `Retry-After: <seconds>` header to this response.
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Stamp this response with the corpus epoch it was computed against
    /// (written as `X-Corpus-Epoch`).
    pub fn with_corpus_epoch(mut self, epoch: u64) -> Response {
        self.corpus_epoch = Some(epoch);
        self
    }
}

/// The reason phrase for the status codes the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write `response` with `Content-Length` and the connection-persistence
/// decision: `Connection: keep-alive` when the server will read another
/// request from this socket, `Connection: close` when it won't. The
/// header is always explicit so clients never have to apply version
/// defaults.
///
/// Head and body go out in **one** write: split across two small
/// segments, Nagle's algorithm holds the second until the first is
/// ACKed, and on a kept-alive connection the client's delayed ACK turns
/// that into a ~10 ms stall per response (a fresh-connection close
/// flushes the tail, which is why the bug hides without keep-alive).
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let retry_after = match response.retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    let trace = match response.trace_id {
        Some(id) => format!("{}: {id}\r\n", extract_obs::TRACE_HEADER),
        None => String::new(),
    };
    let epoch = match response.corpus_epoch {
        Some(n) => format!("X-Corpus-Epoch: {n}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}{}Connection: {}\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        retry_after,
        trace,
        epoch,
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut wire = Vec::with_capacity(head.len() + response.body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(&response.body);
    stream.write_all(&wire)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_and_query() {
        let r = parse("GET /search?q=store+texas&k=5&offset=0 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/search");
        assert_eq!(r.param("q"), Some("store texas"));
        assert_eq!(r.param("k"), Some("5"));
        assert_eq!(r.param("offset"), Some("0"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_header() {
        // HTTP/1.1 defaults to keep-alive…
        let r = parse("GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.http11 && r.keep_alive);
        // …unless the client says close (any casing, list syntax too).
        for header in ["Connection: close", "connection: Close", "Connection: foo, CLOSE"] {
            let r = parse(&format!("GET /x HTTP/1.1\r\n{header}\r\n\r\n")).unwrap();
            assert!(!r.keep_alive, "{header}");
        }
        // `close` wins over `keep-alive` however the list orders them.
        let r = parse("GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET /x HTTP/1.1\r\nConnection: close, keep-alive\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        // HTTP/1.0 defaults to close and must opt in.
        let r = parse("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.http11 && !r.keep_alive);
        let r = parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn percent_decoding_covers_utf8_and_plus() {
        let r = parse("GET /s?q=caf%C3%A9%20%2B+bar&x=%7B%22%7D HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("q"), Some("café + bar"));
        assert_eq!(r.param("x"), Some("{\"}"));
        // `+` in the *path* is literal.
        let r = parse("GET /a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/a+b");
    }

    #[test]
    fn body_is_consumed_and_retained() {
        let raw = "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut reader = BufReader::new(raw.as_bytes());
        let r = read_request(&mut reader).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello", "body is retained verbatim");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "body was consumed off the stream");
        // No Content-Length → empty body.
        let r = parse("GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.body.is_empty());
    }

    #[test]
    fn malformed_requests_map_to_400() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SMTP/1.0\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.\r\n\r\n",
            "GET /x HTTP/1.one\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /%zz HTTP/1.1\r\n\r\n",
            "GET /s?q=%f0%28 HTTP/1.1\r\n\r\n", // invalid UTF-8 after decode
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} → {err:?}");
            assert!(!err.reason().is_empty());
        }
    }

    #[test]
    fn ambiguous_framing_is_rejected() {
        // Duplicate Content-Length — even when the copies agree — is
        // ambiguous framing, not a negotiation.
        for raw in [
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi!",
            // Values `usize::from_str` accepts but HTTP forbids.
            "POST /x HTTP/1.1\r\nContent-Length: +2\r\n\r\nhi",
            "POST /x HTTP/1.1\r\nContent-Length: 2 2\r\n\r\nhi",
            "POST /x HTTP/1.1\r\nContent-Length: 2,2\r\n\r\nhi",
            "POST /x HTTP/1.1\r\nContent-Length:\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} → {err:?}");
        }
        // Transfer-Encoding is not implemented → 501, never guessed at.
        for raw in [
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 2\r\n\r\nhi",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(501), "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn limits_map_to_4xx() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 10));
        assert_eq!(parse(&long_line).unwrap_err().status(), Some(431));
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            (0..MAX_HEADERS + 1).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(parse(&many_headers).unwrap_err().status(), Some(431));
        let big_body = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&big_body).unwrap_err().status(), Some(413));
    }

    #[test]
    fn empty_connection_is_closed_early() {
        let err = parse("").unwrap_err();
        assert!(matches!(err, HttpError::ClosedEarly));
        assert_eq!(err.status(), None);
    }

    #[test]
    fn percent_encode_round_trips_through_the_parser() {
        for s in ["store texas", "a+b&c=d", "café", "100%", "~tilde-ok_", "q?#[]"] {
            let encoded = percent_encode(s);
            assert!(
                encoded.bytes().all(|b| b.is_ascii_alphanumeric()
                    || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')),
                "{s} → {encoded} leaked a reserved byte"
            );
            assert_eq!(percent_decode(&encoded, true).as_deref(), Some(s), "{s}");
            // And through a full request line, the way the router sends it.
            let r = parse(&format!("GET /search?q={encoded} HTTP/1.1\r\n\r\n")).unwrap();
            assert_eq!(r.param("q"), Some(s));
        }
    }

    #[test]
    fn trace_id_header_is_parsed_when_well_formed() {
        let r = parse("GET /x HTTP/1.1\r\nX-Trace-Id: 00c0ffee\r\n\r\n").unwrap();
        assert_eq!(r.trace_id.map(TraceId::as_u64), Some(0x00c0_ffee));
        // Case-insensitive header name, whitespace-tolerant value.
        let r = parse("GET /x HTTP/1.1\r\nx-trace-id:  AB12  \r\n\r\n").unwrap();
        assert_eq!(r.trace_id.map(TraceId::as_u64), Some(0xab12));
        // Malformed values are treated as absent, not an error.
        for bad in ["", "0", "not-hex", "123456789012345678"] {
            let r = parse(&format!("GET /x HTTP/1.1\r\nX-Trace-Id: {bad}\r\n\r\n")).unwrap();
            assert_eq!(r.trace_id, None, "{bad:?}");
        }
        let r = parse("GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.trace_id, None);
    }

    #[test]
    fn trace_id_header_is_echoed_only_when_set() {
        let id = TraceId::parse("deadbeef").unwrap();
        let mut traced = Response::json(200, "{}".into());
        traced.trace_id = Some(id);
        let mut out = Vec::new();
        write_response(&mut out, &traced, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Trace-Id: 00000000deadbeef\r\n"), "{text}");
        // Responses never carry the header unless explicitly set.
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("X-Trace-Id"));
    }

    #[test]
    fn corpus_epoch_header_is_emitted_when_set() {
        let mut out = Vec::new();
        let stamped = Response::json(200, "{}".into()).with_corpus_epoch(7);
        write_response(&mut out, &stamped, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nX-Corpus-Epoch: 7\r\n"), "{text}");
        // Absent by default — static daemons stay byte-identical.
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("X-Corpus-Epoch"));
    }

    #[test]
    fn retry_after_header_is_emitted_when_set() {
        let mut out = Vec::new();
        let refusal = Response::error(503, "over capacity").with_retry_after(2);
        write_response(&mut out, &refusal, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nRetry-After: 2\r\n"), "{text}");
        // Absent by default.
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), false).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"), "spurious header");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".to_string()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".to_string()), true).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("Connection: keep-alive\r\n"));
        let err = Response::error(503, "over capacity");
        assert_eq!(err.status, 503);
        assert_eq!(String::from_utf8(err.body).unwrap(), r#"{"error":"over capacity"}"#);
    }
}
