//! Deterministic fault injection — the test harness's lever for making a
//! healthy daemon misbehave *on cue*.
//!
//! The router's whole value is its failure behavior, and failure
//! behavior that is only exercised by "kill -9 and hope the timing works
//! out" stays unproven. A [`FaultPlan`] is a list of rules compiled from
//! `--fault` specs; the server consults it after parsing each request
//! (so the route is known) and before running the handler. Rules fire by
//! *request count per rule*, which makes integration tests exactly
//! reproducible: "stall the 3rd `/search` by 200 ms", "reset the first
//! two connections", "exit after 50 requests".
//!
//! Spec grammar (one rule per `--fault` flag):
//!
//! ```text
//! <action>:<path>[:key=value]*
//!
//! actions   stall   sleep ms= milliseconds, then serve normally
//!           reset   close the connection abruptly, no response
//!           status  answer code= (default 500) with an error body
//!           exit    terminate the process with code= (default 1)
//! path      exact decoded path, or * for every route
//! keys      ms=N     stall duration        (stall only)
//!           code=N   status / exit code    (status, exit)
//!           after=N  skip the first N matching requests   (default 0)
//!           count=N  fire at most N times, 0 = unlimited  (default 0)
//! ```
//!
//! Examples: `stall:/search:ms=200:after=0:count=1`,
//! `status:/search:code=500:count=2`, `reset:*`, `exit:*:after=50`.
//!
//! A plan is inert unless installed in
//! [`ServeConfig::fault`](crate::server::ServeConfig) — production
//! configs simply never set it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an armed rule does to a matching request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long before handling the request normally.
    Stall(Duration),
    /// Close the connection abruptly without writing a response.
    Reset,
    /// Answer with this status code (error body) instead of the handler.
    Status(u16),
    /// Terminate the whole process with this exit code.
    Exit(i32),
}

/// One parsed `--fault` rule with its firing window and hit counter.
#[derive(Debug)]
pub struct FaultRule {
    action: FaultAction,
    /// Exact decoded request path, or `*` for every route.
    path: String,
    /// Matching requests skipped before the rule starts firing.
    after: u64,
    /// Most firings (`0` = unlimited).
    count: u64,
    /// Matching requests seen so far (including skipped ones).
    hits: AtomicU64,
}

impl FaultRule {
    /// Parse one spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultRule, String> {
        let mut parts = spec.split(':');
        let action_name = parts.next().unwrap_or_default();
        let path = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("fault spec {spec:?}: missing path (use * for all)"))?
            .to_string();
        let mut ms = None;
        let mut code = None;
        let mut after = 0u64;
        let mut count = 0u64;
        for kv in parts {
            let Some((key, value)) = kv.split_once('=') else {
                return Err(format!("fault spec {spec:?}: expected key=value, got {kv:?}"));
            };
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("fault spec {spec:?}: {key}={value:?} is not a number"))?;
            match key {
                "ms" => ms = Some(parsed),
                "code" => code = Some(parsed),
                "after" => after = parsed,
                "count" => count = parsed,
                other => {
                    return Err(format!("fault spec {spec:?}: unknown key {other:?}"));
                }
            }
        }
        let action = match action_name {
            "stall" => {
                let ms =
                    ms.ok_or_else(|| format!("fault spec {spec:?}: stall needs ms=N"))?;
                FaultAction::Stall(Duration::from_millis(ms))
            }
            "reset" => FaultAction::Reset,
            "status" => {
                let code = code.unwrap_or(500);
                let code = u16::try_from(code)
                    .ok()
                    .filter(|c| (100..=599).contains(c))
                    .ok_or_else(|| format!("fault spec {spec:?}: bad status code {code}"))?;
                FaultAction::Status(code)
            }
            "exit" => {
                let code = code.unwrap_or(1);
                let code = i32::try_from(code)
                    .map_err(|_| format!("fault spec {spec:?}: bad exit code {code}"))?;
                FaultAction::Exit(code)
            }
            other => {
                return Err(format!(
                    "fault spec {spec:?}: unknown action {other:?} \
                     (stall | reset | status | exit)"
                ));
            }
        };
        Ok(FaultRule { action, path, after, count, hits: AtomicU64::new(0) })
    }

    /// Whether this rule applies to `path` at all.
    fn matches(&self, path: &str) -> bool {
        self.path == "*" || self.path == path
    }

    /// Count one matching request and decide whether the rule fires.
    fn fire(&self) -> Option<FaultAction> {
        let n = self.hits.fetch_add(1, Ordering::SeqCst);
        let armed = n >= self.after && (self.count == 0 || n < self.after + self.count);
        armed.then_some(self.action)
    }
}

/// A compiled set of fault rules, consulted once per parsed request.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Compile a plan from `--fault` specs; an empty list is a valid
    /// (inert) plan.
    pub fn from_specs<S: AsRef<str>>(specs: &[S]) -> Result<FaultPlan, String> {
        let rules = specs
            .iter()
            .map(|s| FaultRule::parse(s.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { rules })
    }

    /// Whether the plan holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Consult the plan for one request on `path`. Every matching rule's
    /// hit counter advances (so rule windows are independent of each
    /// other); the first rule whose window covers this hit supplies the
    /// action.
    pub fn decide(&self, path: &str) -> Option<FaultAction> {
        let mut fired = None;
        for rule in &self.rules {
            if rule.matches(path) {
                let action = rule.fire();
                if fired.is_none() {
                    fired = action;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_to_the_documented_actions() {
        let plan = FaultPlan::from_specs(&[
            "stall:/search:ms=200:after=0:count=1",
            "reset:*",
            "status:/stats:code=503",
            "exit:/die:code=7:after=3",
        ])
        .expect("valid specs");
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].action, FaultAction::Stall(Duration::from_millis(200)));
        assert_eq!(plan.rules[0].count, 1);
        assert_eq!(plan.rules[1].action, FaultAction::Reset);
        assert_eq!(plan.rules[1].path, "*");
        assert_eq!(plan.rules[2].action, FaultAction::Status(503));
        assert_eq!(plan.rules[3].action, FaultAction::Exit(7));
        assert_eq!(plan.rules[3].after, 3);
    }

    #[test]
    fn malformed_specs_are_rejected_with_a_reason() {
        for bad in [
            "stall:/x",            // stall without ms
            "stall",               // no path
            "status:/x:code=9999", // not a status code
            "warp:/x",             // unknown action
            "reset:/x:ms",         // key without value
            "reset:/x:ms=fast",    // non-numeric value
            "reset:/x:speed=1",    // unknown key
        ] {
            assert!(FaultRule::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn after_and_count_define_an_exact_firing_window() {
        let plan =
            FaultPlan::from_specs(&["status:/search:code=500:after=2:count=2"]).expect("spec");
        let fires: Vec<bool> =
            (0..6).map(|_| plan.decide("/search").is_some()).collect();
        assert_eq!(fires, [false, false, true, true, false, false]);
        // Non-matching paths never advance the counter.
        assert_eq!(plan.decide("/stats"), None);
    }

    #[test]
    fn count_zero_fires_forever_and_star_matches_every_route() {
        let plan = FaultPlan::from_specs(&["status:*:code=500"]).expect("spec");
        for path in ["/a", "/b", "/c", "/a"] {
            assert_eq!(plan.decide(path), Some(FaultAction::Status(500)));
        }
    }

    #[test]
    fn first_covering_rule_wins_but_all_matching_counters_advance() {
        let plan = FaultPlan::from_specs(&[
            "status:/x:code=501:count=1",
            "status:/x:code=502:count=2",
        ])
        .expect("spec");
        // Hit 0: both rules cover it; the first wins.
        assert_eq!(plan.decide("/x"), Some(FaultAction::Status(501)));
        // Hit 1: rule 1 is spent (count=1), rule 2 still covers it.
        assert_eq!(plan.decide("/x"), Some(FaultAction::Status(502)));
        // Hit 2: both spent.
        assert_eq!(plan.decide("/x"), None);
    }
}
