//! HTTP-facing rendering of the observability state — shared by the
//! shard daemon's and the router's `/debug/traces` and `/metrics`
//! routes so the two tiers speak the same wire format.

use extract_obs::{expo, PromWriter, RequestObs, Stage};

use crate::http::Response;
use crate::json::JsonWriter;
use crate::server::ServerHandle;

/// The flight recorder as JSON: `{"capacity": N, "traces": [...]}` with
/// one object per trace (oldest first) carrying the zero-padded hex
/// trace ID, recorder sequence number, route, status, end-to-end time
/// and per-stage nanoseconds (stages that did not run are omitted).
pub fn traces_json(obs: &RequestObs) -> String {
    let mut w = JsonWriter::new();
    w.obj_begin();
    w.key("capacity");
    w.num_u64(obs.trace_capacity() as u64);
    w.key("traces");
    w.arr_begin();
    for trace in obs.traces() {
        w.obj_begin();
        w.key("trace");
        w.str(&trace.id.to_string());
        w.key("seq");
        w.num_u64(trace.seq);
        w.key("route");
        w.str(trace.route);
        w.key("status");
        w.num_u64(u64::from(trace.status));
        w.key("total_ns");
        w.num_u64(trace.total_ns);
        w.key("stages");
        w.obj_begin();
        for stage in Stage::ALL {
            let ns = trace.stage(stage);
            if ns > 0 {
                w.key(stage.name());
                w.num_u64(ns);
            }
        }
        w.obj_end();
        w.obj_end();
    }
    w.arr_end();
    w.obj_end();
    w.finish()
}

/// A `200` response with the Prometheus exposition content type.
pub fn metrics_response(w: PromWriter) -> Response {
    Response {
        status: 200,
        content_type: expo::CONTENT_TYPE,
        body: w.finish().into_bytes(),
        retry_after: None,
        trace_id: None,
        corpus_epoch: None,
    }
}

/// Emit the server-level counter/gauge families from
/// [`ServerHandle::stats`] under the `extract_server_` prefix.
pub fn write_server_metrics(w: &mut PromWriter, handle: &ServerHandle) {
    let s = handle.stats();
    for (name, help, value) in [
        ("accepted", "Connections the acceptor saw.", s.accepted),
        ("admitted", "Requests admitted to the queue.", s.admitted),
        ("shed_queue_full", "Requests shed with 503 (queue full).", s.shed_queue_full),
        ("shed_per_client", "Requests shed with 429 (per-client cap).", s.shed_per_client),
        ("served_ok", "Requests answered 2xx.", s.served_ok),
        ("served_error", "Requests answered 4xx/5xx.", s.served_error),
        ("reused_requests", "Requests served on reused connections.", s.reused_requests),
        ("request_timeouts", "Mid-request stalls answered 408.", s.request_timeouts),
        ("idle_closed", "Connections closed for idling.", s.idle_closed),
        ("io_errors", "Connections that died mid-read or mid-write.", s.io_errors),
    ] {
        let metric = format!("extract_server_{name}_total");
        w.help(&metric, help);
        w.type_(&metric, "counter");
        w.sample_u64(&metric, &[], value);
    }
    for (name, help, value) in [
        ("queue_len", "Requests waiting in the queue right now.", s.queue_len),
        ("inflight", "Admitted-but-unanswered requests right now.", s.inflight),
        ("parked", "Kept-alive connections parked right now.", s.parked),
    ] {
        let metric = format!("extract_server_{name}");
        w.help(&metric, help);
        w.type_(&metric, "gauge");
        w.sample_u64(&metric, &[], value);
    }
    handle.obs().write_metrics(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract_obs::{TraceId, TraceRecord, STAGES};
    use std::time::Duration;

    #[test]
    fn traces_render_as_valid_json_with_hex_ids_and_stages() {
        let obs = RequestObs::new(8, Duration::from_secs(3600));
        let mut stage_ns = [0u64; STAGES];
        stage_ns[Stage::Search.index()] = 1234;
        obs.observe(TraceRecord {
            id: TraceId::parse("abc").expect("valid"),
            seq: 0,
            route: "/search",
            status: 200,
            stage_ns,
            total_ns: 2000,
        });
        let body = traces_json(&obs);
        let v = crate::json::parse(&body).expect("valid JSON");
        assert_eq!(v.get("capacity").and_then(crate::json::Value::as_u64), Some(8));
        let traces = v.get("traces").and_then(crate::json::Value::as_arr).expect("array");
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(
            t.get("trace").and_then(crate::json::Value::as_str),
            Some("0000000000000abc")
        );
        let stages = t.get("stages").expect("stages object");
        assert_eq!(
            stages.get("search").and_then(crate::json::Value::as_u64),
            Some(1234)
        );
        assert!(stages.get("parse").is_none(), "zero stages omitted");
    }

    #[test]
    fn request_metrics_expose_stage_histograms_and_quantiles() {
        let obs = RequestObs::new(8, Duration::from_secs(3600));
        let mut stage_ns = [0u64; STAGES];
        stage_ns[Stage::Snippet.index()] = 900;
        obs.observe(TraceRecord {
            id: TraceId::mint(),
            seq: 0,
            route: "/search",
            status: 200,
            stage_ns,
            total_ns: 1000,
        });
        let mut w = PromWriter::new();
        obs.write_metrics(&mut w);
        let body = w.finish();
        assert!(
            body.contains("extract_request_stage_duration_seconds_count{stage=\"snippet\"} 1"),
            "{body}"
        );
        assert!(
            body.contains(
                "extract_request_stage_quantile_seconds{stage=\"snippet\",quantile=\"0.99\"}"
            ),
            "{body}"
        );
        assert!(body.contains("extract_request_duration_seconds_count 1"), "{body}");
    }
}
